//! Property tests for the deterministic pool: order preservation,
//! thread-count invariance, seed-derivation stability and panic
//! containment under arbitrary task counts.

use nfv_parallel::{derive_seed, par_map_indexed, TaskPanic};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    /// Results come back in input order and carry the matching index, for
    /// arbitrary task counts and thread counts.
    #[test]
    fn preserves_order_for_arbitrary_sizes(
        tasks in 0usize..200,
        threads in 1usize..16,
    ) {
        let items: Vec<usize> = (0..tasks).collect();
        let got = par_map_indexed(threads, items, |index, item| {
            assert_eq!(index, item, "index must match input position");
            item * 2
        }).unwrap();
        prop_assert_eq!(got.len(), tasks);
        for (i, value) in got.into_iter().enumerate() {
            prop_assert_eq!(value, i * 2);
        }
    }

    /// Output is bit-identical across thread counts even when every task
    /// draws from its own derived-seed RNG — the determinism contract the
    /// experiment runners rely on.
    #[test]
    fn thread_count_does_not_change_seeded_results(
        tasks in 1usize..80,
        base_seed in 0u64..1_000_000,
    ) {
        let run = |threads: usize| -> Vec<f64> {
            par_map_indexed(threads, (0..tasks).collect(), |index, _| {
                let mut rng = StdRng::seed_from_u64(derive_seed(base_seed, index as u64));
                // A mildly stateful computation, so any cross-task RNG
                // sharing would corrupt the stream.
                (0..8).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>()
            })
            .unwrap()
        };
        let serial = run(1);
        for threads in [2usize, 3, 8] {
            prop_assert_eq!(&run(threads), &serial);
        }
    }

    /// A panicking task neither deadlocks the pool nor scrambles the
    /// other results: the call returns, the reported index is the lowest
    /// panicking one, and the error is identical at every thread count.
    #[test]
    fn panics_are_contained_and_deterministic(
        tasks in 1usize..60,
        panic_stride in 2usize..10,
        threads in 1usize..12,
    ) {
        let fails = |i: usize| i % panic_stride == panic_stride - 1;
        let items: Vec<usize> = (0..tasks).collect();
        let outcome = par_map_indexed(threads, items.clone(), |i, item| {
            assert!(!fails(i), "task {i} failed");
            item
        });
        let expected_index = (0..tasks).find(|&i| fails(i));
        match expected_index {
            Some(index) => {
                let err = outcome.unwrap_err();
                prop_assert_eq!(err.index, index);
                prop_assert!(err.message.contains(&format!("task {index} failed")));
                // Same failure no matter how many workers raced.
                let again = par_map_indexed(1, items, |i, item| {
                    assert!(!fails(i), "task {i} failed");
                    item
                }).unwrap_err();
                prop_assert_eq!(again, err);
            }
            None => {
                prop_assert_eq!(outcome.unwrap(), (0..tasks).collect::<Vec<usize>>());
            }
        }
    }

    /// `derive_seed` is injective in practice over small index windows and
    /// never reproduces the additive scheme's `(b, i+1) == (b+1, i)`
    /// collision.
    #[test]
    fn derived_seeds_do_not_collide(base in 0u64..1_000_000, span in 1u64..64) {
        let mut seeds: Vec<u64> = (0..span)
            .flat_map(|i| [derive_seed(base, i), derive_seed(base + 1, i)])
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        prop_assert_eq!(seeds.len() as u64, span * 2);
        prop_assert_ne!(derive_seed(base, 1), derive_seed(base + 1, 0));
    }
}

/// Outside proptest (needs a concrete error value): the `TaskPanic`
/// surface formats usefully.
#[test]
fn task_panic_displays_index_and_message() {
    let err = par_map_indexed(3, vec![0u8, 1, 2], |i, x| {
        assert!(i != 1, "kaput");
        x
    })
    .unwrap_err();
    assert_eq!(
        err,
        TaskPanic {
            index: 1,
            message: "kaput".to_owned()
        }
    );
    assert_eq!(err.to_string(), "task 1 panicked: kaput");
}
