//! Cross-shard handoff conservation: whatever the fleet shape, whatever
//! the rebalance cadence, admission accounting balances across all
//! shards at every epoch boundary.

use nfv_fleet::{run, FleetSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random fleet shapes — tenant/shard counts, epoch lengths, channel
    /// bounds, rebalance cadences, seeds — all hold the conservation law
    /// `admitted + retry_admitted == active + departed + shed` summed
    /// across all shards (parked tenant included) at every epoch
    /// boundary, and the handoff layer's own retire/transit/install
    /// checks never trip.
    #[test]
    fn cross_shard_conservation_holds_for_any_fleet_shape(word in 0u64..u64::MAX) {
        let tenants = 1 + (word & 0x7) as usize;            // 1..=8
        let shards = 1 + ((word >> 3) & 0x3) as usize;      // 1..=4
        let epoch = [5.0, 8.0, 13.0][((word >> 5) % 3) as usize];
        let channel_capacity = 1 + ((word >> 8) & 0xF) as usize; // 1..=16
        let rebalance_every = (word >> 12) & 0x3; // 0..=3 (0 = off)
        let seed = word >> 16;
        let spec = FleetSpec {
            tenants,
            shards,
            epoch,
            channel_capacity,
            rebalance_every,
            seed,
            horizon: 35.0,
            ..FleetSpec::smoke()
        };
        // `run` itself errors with `ConservationViolated` if any handoff
        // phase sees unbalanced counters, so `Ok` is already a verdict.
        let outcome = run(&spec).unwrap();
        for record in &outcome.epoch_records {
            prop_assert!(
                record.conserved(),
                "epoch {} of spec {:?}: {} + {} != {} + {} + {}",
                record.epoch,
                (tenants, shards, epoch, channel_capacity, rebalance_every, seed),
                record.admitted,
                record.retry_admitted,
                record.active,
                record.departed,
                record.shed,
            );
        }
        let report = &outcome.report;
        prop_assert_eq!(
            report.admitted + report.retry_admitted,
            report.active + report.departed + report.shed
        );
        // Every event generated is processed exactly once, wherever the
        // tenant ended up living.
        prop_assert_eq!(report.events, report.shard_events.iter().sum::<u64>());
        // Migrations carry exactly the state the records claim.
        for migration in &outcome.migrations {
            prop_assert!(migration.from != migration.to);
            prop_assert_eq!(migration.installed_epoch, migration.retired_epoch + 2);
            prop_assert!((migration.latency - epoch).abs() < 1e-12);
        }
    }

    /// The merged journal and every report are independent of the drain
    /// phase's thread count.
    #[test]
    fn fleet_outcome_is_thread_count_invariant(seed in 0u64..64) {
        let base = FleetSpec {
            seed,
            ..FleetSpec::smoke()
        };
        let one = run(&FleetSpec { threads: 1, ..base }).unwrap();
        let eight = run(&FleetSpec { threads: 8, ..base }).unwrap();
        prop_assert_eq!(&one.report, &eight.report);
        prop_assert_eq!(&one.epoch_records, &eight.epoch_records);
        prop_assert_eq!(&one.migrations, &eight.migrations);
        prop_assert_eq!(&one.tenant_reports, &eight.tenant_reports);
        prop_assert_eq!(one.artifacts.journal_jsonl(), eight.artifacts.journal_jsonl());
    }
}
