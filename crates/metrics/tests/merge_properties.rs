//! Merge laws required for cross-worker telemetry aggregation: histogram
//! merge is associative and commutative (exact counter addition), and a
//! merged summary equals — exactly for counts/samples/extrema, within
//! floating-point tolerance for moments — the single-pass summary of the
//! combined stream.

use nfv_metrics::{Histogram, OnlineStats, SampleSet, Summary};
use proptest::prelude::*;

fn histogram_of(samples: &[f64]) -> Histogram {
    let mut h = Histogram::new(-1000.0, 1000.0, 16).expect("valid range");
    h.extend(samples.iter().copied());
    h
}

fn bins_of(h: &Histogram) -> Vec<u64> {
    (0..h.bins())
        .map(|i| h.bin_count(i))
        .chain([h.underflow(), h.overflow()])
        .collect()
}

proptest! {
    #[test]
    fn histogram_merge_is_commutative(
        xs in prop::collection::vec(-1500.0..1500.0f64, 0..60),
        ys in prop::collection::vec(-1500.0..1500.0f64, 0..60),
    ) {
        let (a, b) = (histogram_of(&xs), histogram_of(&ys));
        let mut ab = a.clone();
        prop_assert!(ab.merge(&b));
        let mut ba = b.clone();
        prop_assert!(ba.merge(&a));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_merge_is_associative(
        xs in prop::collection::vec(-1500.0..1500.0f64, 0..40),
        ys in prop::collection::vec(-1500.0..1500.0f64, 0..40),
        zs in prop::collection::vec(-1500.0..1500.0f64, 0..40),
    ) {
        let (a, b, c) = (histogram_of(&xs), histogram_of(&ys), histogram_of(&zs));
        // (a + b) + c
        let mut left = a.clone();
        prop_assert!(left.merge(&b));
        prop_assert!(left.merge(&c));
        // a + (b + c)
        let mut bc = b.clone();
        prop_assert!(bc.merge(&c));
        let mut right = a.clone();
        prop_assert!(right.merge(&bc));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn histogram_merge_equals_single_pass(
        xs in prop::collection::vec(-1500.0..1500.0f64, 0..60),
        split in 0usize..60,
    ) {
        let split = split.min(xs.len());
        let mut merged = histogram_of(&xs[..split]);
        prop_assert!(merged.merge(&histogram_of(&xs[split..])));
        let single = histogram_of(&xs);
        prop_assert_eq!(bins_of(&merged), bins_of(&single));
        prop_assert_eq!(merged.count(), single.count());
    }

    #[test]
    fn summary_merge_equals_single_pass(
        xs in prop::collection::vec(-1e6..1e6f64, 0..80),
        split in 0usize..80,
    ) {
        let split = split.min(xs.len());
        let single: Summary = xs.iter().copied().collect();
        let mut merged: Summary = xs[..split].iter().copied().collect();
        let right: Summary = xs[split..].iter().copied().collect();
        merged.merge(&right);
        // Counts, retained samples (order included), and extrema are exact.
        prop_assert_eq!(merged.count(), single.count());
        prop_assert_eq!(merged.samples().as_slice(), single.samples().as_slice());
        prop_assert_eq!(merged.min(), single.min());
        prop_assert_eq!(merged.max(), single.max());
        // Moments combine via parallel Welford: equal up to rounding.
        prop_assert!((merged.mean() - single.mean()).abs() <= 1e-6 * single.mean().abs().max(1.0));
        prop_assert!(
            (merged.std_dev() - single.std_dev()).abs() <= 1e-5 * single.std_dev().abs().max(1.0)
        );
    }

    #[test]
    fn summary_merge_quantiles_match_single_pass(
        xs in prop::collection::vec(-1e3..1e3f64, 1..60),
        split in 0usize..60,
        q in 0.0..=1.0f64,
    ) {
        let split = split.min(xs.len());
        let mut single: Summary = xs.iter().copied().collect();
        let mut merged: Summary = xs[..split].iter().copied().collect();
        let right: Summary = xs[split..].iter().copied().collect();
        merged.merge(&right);
        // Quantiles sort the retained samples, so append order cannot leak.
        prop_assert_eq!(merged.percentile(q), single.percentile(q));
    }

    #[test]
    fn online_stats_merge_is_commutative_in_count_and_extrema(
        xs in prop::collection::vec(-1e6..1e6f64, 0..50),
        ys in prop::collection::vec(-1e6..1e6f64, 0..50),
    ) {
        let (a, b): (OnlineStats, OnlineStats) =
            (xs.iter().copied().collect(), ys.iter().copied().collect());
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.min(), ba.min());
        prop_assert_eq!(ab.max(), ba.max());
        prop_assert!((ab.mean() - ba.mean()).abs() <= 1e-6 * ab.mean().abs().max(1.0));
    }
}

#[test]
fn histogram_merge_refuses_mismatched_shapes() {
    let mut a = Histogram::new(0.0, 1.0, 4).unwrap();
    let before = a.clone();
    assert!(!a.merge(&Histogram::new(0.0, 2.0, 4).unwrap()), "range");
    assert!(!a.merge(&Histogram::new(0.0, 1.0, 8).unwrap()), "bins");
    assert_eq!(a, before, "refused merges leave the target untouched");
    assert!(a.merge(&Histogram::new(0.0, 1.0, 4).unwrap()));
}

#[test]
fn sample_set_merge_preserves_insertion_order() {
    let mut left: SampleSet = [3.0, 1.0].into_iter().collect();
    let right: SampleSet = [2.0].into_iter().collect();
    left.merge(&right);
    assert_eq!(left.as_slice(), &[3.0, 1.0, 2.0]);
    // Quantile caches are invalidated by the merge.
    assert_eq!(left.median(), 2.0);
}
