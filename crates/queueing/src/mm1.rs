//! The M/M/1 station.

use std::fmt;

use nfv_model::{ServiceRate, Utilization};
use serde::{Deserialize, Serialize};

use crate::QueueingError;

/// A stable M/M/1 queue: Poisson arrivals at equivalent total rate `Λ`,
/// exponential service at rate `μ`, one server, FCFS, infinite buffer.
///
/// By Jackson's theorem each service instance of a VNF behaves as an
/// independent M/M/1 station once merged flows are treated as Poisson
/// (Kleinrock approximation), which is exactly how the paper models service
/// instances (§III.B). Construction enforces strict stability `Λ < μ`, so
/// all steady-state quantities below are finite *for values built through
/// [`Mm1Queue::new`]*.
///
/// The formulas are nevertheless **total**: the struct derives
/// `Deserialize`, so a persisted artifact (or a future format backend) can
/// materialize a queue without passing through `new`. Rather than silently
/// returning negative garbage from `ρ/(1 − ρ)` and `1/(μ − Λ)` at `ρ ≥ 1`,
/// every statistic is guarded: the means, waiting time and quantiles report
/// the documented limit [`f64::INFINITY`] (an overloaded queue grows
/// without bound) and [`prob_packets`](Self::prob_packets) reports `0.0`
/// (no steady-state distribution exists, so every finite state has
/// vanishing long-run probability).
///
/// # Examples
///
/// ```
/// use nfv_model::ServiceRate;
/// use nfv_queueing::Mm1Queue;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = Mm1Queue::new(80.0, ServiceRate::new(100.0)?)?;
/// assert!((q.utilization().value() - 0.8).abs() < 1e-12);
/// assert!((q.mean_packets_in_system() - 4.0).abs() < 1e-9); // ρ/(1−ρ)
/// assert!((q.mean_response_time() - 0.05).abs() < 1e-9); // 1/(μ−Λ)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mm1Queue {
    arrival: f64,
    service: ServiceRate,
}

impl Mm1Queue {
    /// Creates a stable M/M/1 station with equivalent total arrival rate
    /// `arrival` (pps) and service rate `service`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] unless `0 ≤ arrival < μ` (an idle
    /// station with `Λ = 0` is permitted).
    pub fn new(arrival: f64, service: ServiceRate) -> Result<Self, QueueingError> {
        if arrival.is_finite() && arrival >= 0.0 && arrival < service.value() {
            Ok(Self { arrival, service })
        } else {
            Err(QueueingError::Unstable {
                arrival,
                service: service.value(),
            })
        }
    }

    /// Equivalent total arrival rate `Λ` (pps).
    #[must_use]
    pub const fn arrival_rate(&self) -> f64 {
        self.arrival
    }

    /// Service rate `μ`.
    #[must_use]
    pub const fn service_rate(&self) -> ServiceRate {
        self.service
    }

    /// Server utilization `ρ = Λ/μ` (Eq. (9)); strictly below 1.
    #[must_use]
    pub fn utilization(&self) -> Utilization {
        Utilization::from_ratio(self.arrival / self.service.value())
    }

    /// Whether the station is overloaded (`ρ ≥ 1`). Impossible for values
    /// built through [`Mm1Queue::new`]; reachable only via deserialization.
    fn is_overloaded(&self) -> bool {
        self.arrival >= self.service.value()
    }

    /// Steady-state probability of exactly `n` packets in the system,
    /// `π(n) = (1 − ρ) ρⁿ` (Eq. (8)). Returns `0.0` when `ρ ≥ 1`: an
    /// overloaded queue has no steady state, so every finite occupancy has
    /// vanishing long-run probability.
    #[must_use]
    pub fn prob_packets(&self, n: u32) -> f64 {
        if self.is_overloaded() {
            return 0.0;
        }
        let rho = self.arrival / self.service.value();
        (1.0 - rho) * rho.powi(n as i32)
    }

    /// Mean number of packets in the system, `E[N] = ρ/(1 − ρ)` (Eq. (10)).
    /// Returns [`f64::INFINITY`] when `ρ ≥ 1` (the queue grows without
    /// bound).
    #[must_use]
    pub fn mean_packets_in_system(&self) -> f64 {
        if self.is_overloaded() {
            return f64::INFINITY;
        }
        let rho = self.arrival / self.service.value();
        rho / (1.0 - rho)
    }

    /// Mean per-visit response time (queueing + service),
    /// `E[T] = 1/(μ − Λ)` seconds. Returns [`f64::INFINITY`] when `ρ ≥ 1`.
    #[must_use]
    pub fn mean_response_time(&self) -> f64 {
        if self.is_overloaded() {
            return f64::INFINITY;
        }
        1.0 / (self.service.value() - self.arrival)
    }

    /// Mean waiting time in the buffer before service begins,
    /// `E[W_q] = ρ/(μ − Λ)` seconds. Returns [`f64::INFINITY`] when
    /// `ρ ≥ 1`.
    #[must_use]
    pub fn mean_waiting_time(&self) -> f64 {
        if self.is_overloaded() {
            return f64::INFINITY;
        }
        let rho = self.arrival / self.service.value();
        rho / (self.service.value() - self.arrival)
    }

    /// The `p`-quantile of the response-time distribution. For a stable
    /// M/M/1 the sojourn time is exponential with rate `μ − Λ`, so the
    /// quantile is `−ln(1 − p)/(μ − Λ)`. Returns [`f64::INFINITY`] when
    /// `ρ ≥ 1` (except at `p = 0`, where the quantile is 0 for any queue).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1)`.
    #[must_use]
    pub fn response_time_quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&p),
            "quantile probability must lie in [0, 1)"
        );
        if p == 0.0 {
            return 0.0;
        }
        if self.is_overloaded() {
            return f64::INFINITY;
        }
        -(1.0 - p).ln() / (self.service.value() - self.arrival)
    }
}

impl fmt::Display for Mm1Queue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "M/M/1 (Λ={} pps, μ={}, ρ={})",
            self.arrival,
            self.service,
            self.utilization()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mu(v: f64) -> ServiceRate {
        ServiceRate::new(v).unwrap()
    }

    #[test]
    fn rejects_unstable_and_invalid_loads() {
        assert!(Mm1Queue::new(100.0, mu(100.0)).is_err());
        assert!(Mm1Queue::new(101.0, mu(100.0)).is_err());
        assert!(Mm1Queue::new(-1.0, mu(100.0)).is_err());
        assert!(Mm1Queue::new(f64::NAN, mu(100.0)).is_err());
        assert!(Mm1Queue::new(0.0, mu(100.0)).is_ok());
    }

    #[test]
    fn idle_station_has_pure_service_latency() {
        let q = Mm1Queue::new(0.0, mu(50.0)).unwrap();
        assert_eq!(q.utilization(), Utilization::ZERO);
        assert_eq!(q.mean_packets_in_system(), 0.0);
        assert!((q.mean_response_time() - 0.02).abs() < 1e-12);
        assert_eq!(q.mean_waiting_time(), 0.0);
        assert_eq!(q.prob_packets(0), 1.0);
    }

    #[test]
    fn textbook_values_at_rho_half() {
        let q = Mm1Queue::new(50.0, mu(100.0)).unwrap();
        assert!((q.mean_packets_in_system() - 1.0).abs() < 1e-12);
        assert!((q.mean_response_time() - 0.02).abs() < 1e-12);
        assert!((q.mean_waiting_time() - 0.01).abs() < 1e-12);
        assert!((q.prob_packets(0) - 0.5).abs() < 1e-12);
        assert!((q.prob_packets(1) - 0.25).abs() < 1e-12);
    }

    /// Overloaded queues cannot be built through `new`, but `Deserialize`
    /// (a field-level derive) can materialize one. The statistics must then
    /// report their documented limits instead of negative garbage from
    /// `ρ/(1 − ρ)` / `1/(μ − Λ)`.
    #[test]
    fn rho_at_one_reports_infinite_latency_not_garbage() {
        // ρ = 1 exactly: bypass `new` the way deserialization would.
        let q = Mm1Queue {
            arrival: 100.0,
            service: mu(100.0),
        };
        assert_eq!(q.mean_packets_in_system(), f64::INFINITY);
        assert_eq!(q.mean_response_time(), f64::INFINITY);
        assert_eq!(q.mean_waiting_time(), f64::INFINITY);
        assert_eq!(q.response_time_quantile(0.5), f64::INFINITY);
        assert_eq!(q.response_time_quantile(0.0), 0.0);
        assert_eq!(q.prob_packets(0), 0.0);
        assert_eq!(q.prob_packets(7), 0.0);
    }

    #[test]
    fn rho_above_one_reports_infinite_latency_not_garbage() {
        // ρ > 1: without the guards these would all be *negative*.
        let q = Mm1Queue {
            arrival: 150.0,
            service: mu(100.0),
        };
        assert_eq!(q.mean_packets_in_system(), f64::INFINITY);
        assert_eq!(q.mean_response_time(), f64::INFINITY);
        assert_eq!(q.mean_waiting_time(), f64::INFINITY);
        assert_eq!(q.response_time_quantile(0.99), f64::INFINITY);
        assert_eq!(q.prob_packets(3), 0.0);
        // Utilization still reports the overload honestly.
        assert!(q.utilization().is_oversubscribed());
    }

    #[test]
    fn littles_law_holds() {
        // E[N] = Λ · E[T].
        let q = Mm1Queue::new(73.0, mu(91.0)).unwrap();
        assert!((q.mean_packets_in_system() - 73.0 * q.mean_response_time()).abs() < 1e-9);
    }

    #[test]
    fn median_quantile_matches_exponential() {
        let q = Mm1Queue::new(0.0, mu(1.0)).unwrap();
        assert!((q.response_time_quantile(0.5) - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(q.response_time_quantile(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile probability")]
    fn quantile_rejects_one() {
        let q = Mm1Queue::new(0.0, mu(1.0)).unwrap();
        let _ = q.response_time_quantile(1.0);
    }

    proptest! {
        #[test]
        fn pi_sums_to_one_and_latency_grows_with_load(
            lam in 0.0..99.0f64,
            extra in 0.1..50.0f64,
        ) {
            let service = mu(100.0 + extra);
            let q = Mm1Queue::new(lam, service).unwrap();
            // π is a geometric distribution; partial sums approach 1.
            let partial: f64 = (0..200).map(|n| q.prob_packets(n)).sum();
            prop_assert!(partial <= 1.0 + 1e-9);
            prop_assert!(partial > 0.9 || q.utilization().value() > 0.95);
            // Monotonicity: heavier load means longer response.
            let lighter = Mm1Queue::new(lam * 0.5, service).unwrap();
            prop_assert!(lighter.mean_response_time() <= q.mean_response_time() + 1e-12);
        }

        #[test]
        fn waiting_plus_service_equals_response(lam in 0.0..90.0f64) {
            let q = Mm1Queue::new(lam, mu(100.0)).unwrap();
            let expected = q.mean_waiting_time() + 0.01;
            prop_assert!((q.mean_response_time() - expected).abs() < 1e-9);
        }

        #[test]
        fn quantiles_are_monotone(lam in 0.0..90.0f64, p1 in 0.0..0.98f64) {
            let q = Mm1Queue::new(lam, mu(100.0)).unwrap();
            let p2 = p1 + 0.01;
            prop_assert!(q.response_time_quantile(p1) <= q.response_time_quantile(p2));
        }
    }
}
