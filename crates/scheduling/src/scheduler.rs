//! The [`Scheduler`] trait.

use nfv_model::ArrivalRate;

use crate::{Schedule, SchedulingError};

/// A request-scheduling algorithm for one VNF: distributes `n` requests
/// (given by their arrival rates `λ_r`) over `m` service instances.
///
/// Implementations are deterministic functions of their input — the paper's
/// schedulers have no internal randomness — which keeps experiment sweeps
/// reproducible without threading RNGs through this phase.
///
/// `Send + Sync` is a supertrait so boxed schedulers can be shared across
/// the deterministic worker pool (`nfv-parallel`) that runs experiment
/// trials in parallel.
pub trait Scheduler: Send + Sync {
    /// A short stable name for reports ("rckk", "cga", …).
    fn name(&self) -> &'static str;

    /// Schedules the requests `0..rates.len()` onto instances
    /// `0..instances`.
    ///
    /// # Errors
    ///
    /// * [`SchedulingError::NoRequests`] if `rates` is empty,
    /// * [`SchedulingError::NoInstances`] if `instances` is zero.
    fn schedule(
        &self,
        rates: &[ArrivalRate],
        instances: usize,
    ) -> Result<Schedule, SchedulingError>;
}

/// Validates the common preconditions shared by every scheduler.
pub(crate) fn check_inputs(rates: &[ArrivalRate], instances: usize) -> Result<(), SchedulingError> {
    if rates.is_empty() {
        return Err(SchedulingError::NoRequests);
    }
    if instances == 0 {
        return Err(SchedulingError::NoInstances);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_checks() {
        let rate = ArrivalRate::new(1.0).unwrap();
        assert_eq!(check_inputs(&[], 1), Err(SchedulingError::NoRequests));
        assert_eq!(check_inputs(&[rate], 0), Err(SchedulingError::NoInstances));
        assert_eq!(check_inputs(&[rate], 1), Ok(()));
    }
}
