//! Error type for the control plane.

use std::error::Error;
use std::fmt;

use nfv_model::{RequestId, VnfId};
use nfv_scheduling::SchedulingError;

/// Error returned by controller construction and ledger mutation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ControllerError {
    /// The coordinates name a VNF the scenario does not deploy.
    UnknownVnf {
        /// The missing VNF.
        vnf: VnfId,
    },
    /// The coordinates name an instance index outside `0..M_f`.
    NoSuchInstance {
        /// The VNF addressed.
        vnf: VnfId,
        /// The out-of-range instance index.
        instance: usize,
    },
    /// The request is already assigned to an instance of this VNF.
    DuplicateAssignment {
        /// The VNF addressed.
        vnf: VnfId,
        /// The already-assigned request.
        request: RequestId,
    },
    /// The re-optimization scheduler failed (surfaced, never expected for
    /// non-empty live request sets).
    Scheduling(SchedulingError),
    /// An instance retirement targeted an instance that still holds
    /// requests; drain it first.
    InstanceOccupied {
        /// The VNF addressed.
        vnf: VnfId,
        /// The still-occupied instance index.
        instance: usize,
    },
    /// An instance retirement would leave the VNF with zero instances.
    LastInstance {
        /// The VNF addressed.
        vnf: VnfId,
    },
    /// A cluster handed to the controller is inconsistent with the
    /// scenario (wrong VNF set, invalid placement, …).
    ClusterMismatch {
        /// Description of the inconsistency.
        reason: &'static str,
    },
}

impl fmt::Display for ControllerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownVnf { vnf } => write!(f, "unknown {vnf}"),
            Self::NoSuchInstance { vnf, instance } => {
                write!(f, "{vnf} has no instance #{instance}")
            }
            Self::DuplicateAssignment { vnf, request } => {
                write!(f, "{request} is already assigned on {vnf}")
            }
            Self::Scheduling(err) => write!(f, "re-optimization failed: {err}"),
            Self::InstanceOccupied { vnf, instance } => {
                write!(f, "{vnf} instance #{instance} still holds requests")
            }
            Self::LastInstance { vnf } => {
                write!(f, "{vnf} cannot retire its last instance")
            }
            Self::ClusterMismatch { reason } => write!(f, "cluster mismatch: {reason}"),
        }
    }
}

impl Error for ControllerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Scheduling(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SchedulingError> for ControllerError {
    fn from(err: SchedulingError) -> Self {
        Self::Scheduling(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = ControllerError::NoSuchInstance {
            vnf: VnfId::new(3),
            instance: 7,
        };
        assert!(err.to_string().contains("vnf3"));
        assert!(err.to_string().contains("#7"));
        let err = ControllerError::DuplicateAssignment {
            vnf: VnfId::new(1),
            request: RequestId::new(2),
        };
        assert!(err.to_string().contains("req2"));
    }

    #[test]
    fn scheduling_errors_convert_and_chain() {
        let err: ControllerError = SchedulingError::NoInstances.into();
        assert!(matches!(err, ControllerError::Scheduling(_)));
        assert!(Error::source(&err).is_some());
    }
}
