//! An online NFV control plane: churn-driven dispatch, admission control,
//! and bounded re-optimization.
//!
//! The offline pipeline (`nfv-placement` + `nfv-scheduling`) answers "given
//! this request set, what is the best placement and schedule?". This crate
//! answers the operational question that follows: how to *keep* a good
//! assignment while requests arrive and depart and instances fail, without
//! ever overloading an instance and without re-shuffling the whole data
//! plane on every event.
//!
//! The moving parts:
//!
//! - [`ControllerState`] — a load ledger tracking, per VNF instance, the
//!   Kleinrock-merged loss-inflated arrival rate (Eq. (7) of the paper)
//!   with incremental `add_request` / `remove_request` updates that restore
//!   sums bit-for-bit.
//! - [`Controller`] — the event loop. Arrivals are dispatched to the
//!   least-loaded *up* instance of each chain hop, refused (with a typed
//!   [`RejectReason`]) if any hop would be driven to `ρ ≥ 1`; a
//!   configurable [`ShedPolicy`] can instead evict a larger request to
//!   make room. Instance outages trigger failover; periodic
//!   [`ReoptimizeTick`](nfv_workload::churn::ChurnEvent::ReoptimizeTick)
//!   events re-run the paper's RCKK scheduler on the live request set and
//!   apply a migration plan bounded by [`ReoptConfig`] (hysteresis on the
//!   predicted latency gain, per-tick migration budget). When the
//!   controller knows the physical cluster
//!   ([`Controller::with_cluster`]), a [`ReplaceConfig`] additionally
//!   enables a *re-placement* phase on each tick: per-VNF instance-count
//!   targets are derived from the live rates by a ρ-headroom rule, and a
//!   bounded incremental BFDSU pass may add, retire, or relocate at most
//!   `K` instances per tick, gated by a migration-cost hysteresis on the
//!   balanced predicted latency.
//! - Node-level failure domains — a
//!   [`NodeDown`](nfv_workload::churn::ChurnEvent::NodeDown) takes down
//!   every instance of every VNF the node hosts at once (the ledger tracks
//!   per-instance outage *depth* plus a whole-VNF `host_down` flag, so
//!   overlapping outages recover correctly). An [`EmergencyConfig`]
//!   triggers immediate out-of-tick re-placement over the surviving nodes;
//!   a [`RetryConfig`] re-offers shed and rejected arrivals with
//!   deterministic exponential backoff + jitter; and while any node is
//!   dark a brownout admission mode tightens the acceptance threshold.
//! - Background refinement — a [`RefinerConfig`] runs a bounded anytime
//!   metaheuristic search (`nfv-search`, GA or PSO) over the VNF→node
//!   mapping on *quiet* ticks (no node dark, no outage since the last
//!   tick), warm-started from the live assignment; a searched plan is
//!   adopted through the same hysteresis discipline (minimum objective
//!   gain, bounded relocation budget) and journaled as a
//!   refiner-phase `ReoptCommit`/`ReoptRejected`.
//! - [`ControllerReport`] — counters and derived statistics snapshotted in
//!   virtual time for observability.
//!
//! Everything is deterministic: the controller is driven purely by the
//! trace's virtual clock and never consults wall-clock time or ambient
//! randomness, so two same-seed runs produce identical reports.
//!
//! Observability: every event method has a `*_traced` variant threading
//! an `nfv_telemetry::Telemetry` session through the loop
//! ([`Controller::handle_traced`], [`Controller::run_trace_traced`]).
//! Telemetry is a strict observer — the traced variants with
//! `Telemetry::disabled()` are exactly the plain ones, and enabled
//! telemetry never changes a decision, draws randomness, or advances
//! virtual time, so results are bit-identical with telemetry on or off
//! (pinned by the thread-invariance tests in `nfv-core`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod active;
mod config;
mod controller;
mod error;
mod ledger;
mod report;
mod retry;
mod snapshot;
mod wheel;

pub use config::{
    ControllerConfig, EmergencyConfig, RefinerConfig, RejectReason, ReoptConfig, ReplaceConfig,
    RetryConfig, ShedPolicy,
};
pub use controller::{Controller, EventOutcome};
pub use error::ControllerError;
pub use ledger::ControllerState;
pub use report::ControllerReport;
pub use retry::RetryRefusal;
pub use snapshot::{ControllerSnapshot, SnapshotError, SNAPSHOT_VERSION};
