//! The joint objective (Eq. (16)).

use std::fmt;

use nfv_queueing::InstanceLoad;
use serde::{Deserialize, Serialize};

use crate::{CoreError, JointSolution};

/// The evaluated joint objective of Eq. (16): for every request the sum of
/// the mean response times `W(f,k)` of its assigned instances, plus the
/// communication latency `(Σ_v η_v^r − 1) · L` for crossing between the
/// nodes its chain touches.
///
/// The response part uses the per-delivery `W(f,k)` of Eq. (11)/(12),
/// which already accounts for loss-feedback retransmissions; the link part
/// uses the topology's per-hop delay `L` exactly as the paper's constant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointObjective {
    response: Vec<f64>,
    link: Vec<f64>,
}

impl JointObjective {
    pub(crate) fn evaluate(solution: &JointSolution) -> Result<Self, CoreError> {
        let loads = solution.instance_loads();
        // Precompute W(f,k) for every instance.
        let w: Vec<Vec<f64>> = loads
            .iter()
            .map(|per_vnf| {
                per_vnf
                    .iter()
                    .map(InstanceLoad::mean_delivery_response_time)
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<_, _>>()?;

        let link_delay = solution.topology().link_delay().seconds();
        let mut response = Vec::with_capacity(solution.scenario().requests().len());
        let mut link = Vec::with_capacity(response.capacity());
        for request in solution.scenario().requests() {
            let mut resp = 0.0;
            for vnf in request.chain() {
                let k = solution.instance_serving(request.id(), *vnf).ok_or(
                    CoreError::Inconsistent {
                        reason: "request not scheduled on its VNF",
                    },
                )?;
                resp += w[vnf.as_usize()][k];
            }
            let nodes = solution.nodes_traversed(request.id()).len();
            response.push(resp);
            link.push(nodes.saturating_sub(1) as f64 * link_delay);
        }
        Ok(Self { response, link })
    }

    /// Number of requests evaluated.
    #[must_use]
    pub fn requests(&self) -> usize {
        self.response.len()
    }

    /// Per-request response-time part (`Σ_f Σ_k z U W(f,k)`), seconds.
    #[must_use]
    pub fn response_latencies(&self) -> &[f64] {
        &self.response
    }

    /// Per-request link part (`(Σ_v η_v^r − 1) · L`), seconds.
    #[must_use]
    pub fn link_latencies(&self) -> &[f64] {
        &self.link
    }

    /// Total latency of one request (response + link), seconds.
    ///
    /// # Panics
    ///
    /// Panics if `request` is out of range.
    #[must_use]
    pub fn total_latency_of(&self, request: usize) -> f64 {
        self.response[request] + self.link[request]
    }

    /// The objective value: total latency summed over all requests
    /// (Eq. (16)), seconds.
    #[must_use]
    pub fn total_latency(&self) -> f64 {
        self.response.iter().sum::<f64>() + self.link.iter().sum::<f64>()
    }

    /// Average total latency per request, seconds.
    #[must_use]
    pub fn average_total_latency(&self) -> f64 {
        if self.response.is_empty() {
            0.0
        } else {
            self.total_latency() / self.response.len() as f64
        }
    }

    /// Average response part per request, seconds.
    #[must_use]
    pub fn average_response_latency(&self) -> f64 {
        if self.response.is_empty() {
            0.0
        } else {
            self.response.iter().sum::<f64>() / self.response.len() as f64
        }
    }

    /// Average link part per request, seconds.
    #[must_use]
    pub fn average_link_latency(&self) -> f64 {
        if self.link.is_empty() {
            0.0
        } else {
            self.link.iter().sum::<f64>() / self.link.len() as f64
        }
    }
}

impl fmt::Display for JointObjective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "objective: avg latency {:.6}s (response {:.6}s + link {:.6}s) over {} requests",
            self.average_total_latency(),
            self.average_response_latency(),
            self.average_link_latency(),
            self.requests()
        )
    }
}
