//! The active-request slot table.
//!
//! A dense replacement for the `BTreeMap<RequestId, Request>` the
//! controller's hot path used to walk: requests live in a free-listed slot
//! arena and a `u32` id→slot table makes every lookup a single array
//! index. The controller never iterates the active set in id order, so no
//! ordered structure is needed.

use nfv_model::{Request, RequestId};

/// Sentinel in the id→slot table for an id with no live request.
const NO_SLOT: u32 = u32::MAX;

/// The set of currently active requests, keyed by request id.
#[derive(Debug, Clone, Default)]
pub(crate) struct ActiveSet {
    /// Raw request-id index → slot (`NO_SLOT` when absent). Grows to the
    /// largest id ever seen; ids are dense in every workload generator.
    index: Vec<u32>,
    /// Slot arena; `None` slots are on the free list.
    slots: Vec<Option<Request>>,
    /// Indices of vacant slots, reused LIFO.
    free: Vec<u32>,
    len: usize,
}

impl ActiveSet {
    /// Number of live requests.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Whether `id` is live.
    pub(crate) fn contains_key(&self, id: RequestId) -> bool {
        self.slot(id).is_some()
    }

    /// The live request with this id, if any.
    pub(crate) fn get(&self, id: RequestId) -> Option<&Request> {
        self.slot(id).and_then(|s| self.slots[s].as_ref())
    }

    /// Inserts a request under its own id. The controller checks for
    /// duplicates before admission, so the id must be vacant.
    pub(crate) fn insert(&mut self, request: Request) {
        let id = request.id().as_usize();
        if id >= self.index.len() {
            self.index.resize(id + 1, NO_SLOT);
        }
        debug_assert_eq!(self.index[id], NO_SLOT, "duplicate active id");
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(request);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("slot arena fits in u32");
                self.slots.push(Some(request));
                slot
            }
        };
        self.index[id] = slot;
        self.len += 1;
    }

    /// Removes and returns the request with this id, if live.
    pub(crate) fn remove(&mut self, id: RequestId) -> Option<Request> {
        let slot = self.slot(id)?;
        let request = self.slots[slot].take()?;
        self.index[id.as_usize()] = NO_SLOT;
        self.free
            .push(u32::try_from(slot).expect("slot fits in u32"));
        self.len -= 1;
        Some(request)
    }

    fn slot(&self, id: RequestId) -> Option<usize> {
        match self.index.get(id.as_usize()).copied() {
            Some(slot) if slot != NO_SLOT => Some(slot as usize),
            _ => None,
        }
    }

    fn iter(&self) -> impl Iterator<Item = &Request> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// The live requests in ascending id order — the canonical checkpoint
    /// shape. Rebuilding a set by [`insert`](Self::insert)ing these is
    /// logically equal to the original (slot layout is not part of the
    /// set's logical state; every read goes through the id table).
    pub(crate) fn export(&self) -> Vec<Request> {
        let mut requests: Vec<Request> = self.iter().cloned().collect();
        requests.sort_unstable_by_key(Request::id);
        requests
    }
}

/// Logical equality: the same id→request mapping, regardless of how the
/// slots and free list happen to be laid out after different mutation
/// histories.
impl PartialEq for ActiveSet {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().all(|r| other.get(r.id()) == Some(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_model::{ArrivalRate, DeliveryProbability, ServiceChain, VnfId};

    fn request(id: u32) -> Request {
        Request::new(
            RequestId::new(id),
            ServiceChain::new(vec![VnfId::new(0)]).unwrap(),
            ArrivalRate::new(1.0 + f64::from(id)).unwrap(),
            DeliveryProbability::PERFECT,
        )
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut set = ActiveSet::default();
        assert_eq!(set.len(), 0);
        set.insert(request(5));
        set.insert(request(2));
        assert_eq!(set.len(), 2);
        assert!(set.contains_key(RequestId::new(5)));
        assert!(!set.contains_key(RequestId::new(3)));
        assert_eq!(set.get(RequestId::new(2)), Some(&request(2)));
        assert_eq!(set.remove(RequestId::new(5)), Some(request(5)));
        assert_eq!(set.remove(RequestId::new(5)), None);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn export_is_id_sorted_and_rebuilds_logically_equal() {
        let mut set = ActiveSet::default();
        for id in [7, 1, 9, 3] {
            set.insert(request(id));
        }
        set.remove(RequestId::new(9));
        let exported = set.export();
        let ids: Vec<u32> = exported.iter().map(|r| r.id().index()).collect();
        assert_eq!(ids, vec![1, 3, 7]);
        let mut rebuilt = ActiveSet::default();
        for request in exported {
            rebuilt.insert(request);
        }
        assert_eq!(rebuilt, set);
    }

    #[test]
    fn slots_are_reused_and_equality_is_logical() {
        let mut set_a = ActiveSet::default();
        for id in 0..8 {
            set_a.insert(request(id));
        }
        for id in [1, 3, 5] {
            set_a.remove(RequestId::new(id));
        }
        // Freed slots are recycled before the arena grows.
        let slots_before = set_a.slots.len();
        set_a.insert(request(9));
        set_a.insert(request(10));
        assert_eq!(set_a.slots.len(), slots_before);

        // A set with the same contents but a different mutation history
        // (hence different slot layout) compares equal.
        let mut set_b = ActiveSet::default();
        for id in [10, 9, 7, 6, 4, 2, 0] {
            set_b.insert(request(id));
        }
        assert_eq!(set_a, set_b);
        set_b.remove(RequestId::new(0));
        assert_ne!(set_a, set_b);
    }
}
