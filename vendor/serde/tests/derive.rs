//! The derive macros emit `impl ::serde::...` paths, which only resolve
//! from a crate that depends on serde — hence an integration test rather
//! than a unit test inside the library.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct Point {
    x: f64,
    #[serde(skip)]
    y: f64,
}

#[derive(Serialize, Deserialize)]
enum Shape {
    Dot,
    Circle { radius: f64 },
    Segment(Point, Point),
}

fn assert_serde<T: Serialize + DeserializeOwned>() {}

#[test]
fn derive_emits_marker_impls() {
    assert_serde::<Point>();
    assert_serde::<Shape>();
    assert_serde::<Vec<Point>>();
    assert_serde::<Option<Shape>>();
}
