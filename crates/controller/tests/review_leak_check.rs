//! Review-only repro: a request whose departure fires while it sits in
//! the retry queue gets re-admitted afterwards and never leaves.

use nfv_controller::{Controller, ControllerConfig, EventOutcome};
use nfv_model::{Capacity, ComputeNode, NodeId};
use nfv_placement::{Bfdsu, Placement, PlacementProblem, Placer};
use nfv_workload::churn::{ChurnEvent, TimedEvent};
use nfv_workload::{Scenario, ScenarioBuilder, ServiceRatePolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario() -> Scenario {
    ScenarioBuilder::new()
        .vnfs(3)
        .requests(6)
        .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
            target_utilization: 0.5,
        })
        .seed(91)
        .build()
        .unwrap()
}

fn cluster(s: &Scenario, n: usize) -> (Vec<ComputeNode>, Placement) {
    let total: f64 = s.vnfs().iter().map(|v| v.total_demand().value()).sum();
    let nodes: Vec<ComputeNode> = (0..n)
        .map(|i| ComputeNode::new(NodeId::new(i as u32), Capacity::new(total * 2.0).unwrap()))
        .collect();
    let problem = PlacementProblem::new(nodes.clone(), s.vnfs().to_vec()).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let placement = Bfdsu::new()
        .place(&problem, &mut rng)
        .unwrap()
        .into_placement();
    (nodes, placement)
}

#[test]
fn departed_while_queued_request_is_resurrected_forever() {
    let s = scenario();
    let (nodes, placement) = cluster(&s, 1);
    let mut controller =
        Controller::with_cluster(&s, nodes, &placement, ControllerConfig::resilient()).unwrap();

    for request in s.requests() {
        let outcome =
            controller.handle(&TimedEvent::new(0.0, ChurnEvent::Arrival(request.clone())));
        assert!(matches!(outcome, EventOutcome::Admitted { .. }));
    }
    let population = s.requests().len() as u64;

    // Node dies at t=5: everything is shed into the retry queue.
    let node = NodeId::new(0);
    controller.handle(&TimedEvent::new(5.0, ChurnEvent::NodeDown { node }));
    assert_eq!(controller.active_requests(), 0);

    // Every request departs at t=5.5 — while queued for retry. The trace
    // says these requests are gone from the system for good.
    for request in s.requests() {
        let out = controller.handle(&TimedEvent::new(5.5, ChurnEvent::Departure(request.id())));
        assert_eq!(out, EventOutcome::StaleDeparture);
    }

    // Node returns at t=6; the retry queue then re-admits requests whose
    // lifetimes already ended.
    controller.handle(&TimedEvent::new(6.0, ChurnEvent::NodeUp { node }));
    controller.finish(500.0);

    let report = controller.report();
    println!(
        "retry_admitted={} active={} departed={} (population={})",
        report.retry_admitted, report.active, report.departed, population
    );
    // The buggy behavior: departed requests come back and stay active
    // forever (no further departure event exists for them).
    assert_eq!(report.departed, 0);
    assert_eq!(report.active, population, "resurrected past departure");
}
