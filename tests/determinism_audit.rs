//! Determinism audit: no library code may consult wall-clock time or
//! ambient randomness.
//!
//! Every result in this workspace — paper figures, controller reports,
//! property tests — is keyed by explicit seeds and virtual clocks, so two
//! runs with the same inputs must be bit-identical. Wall-clock reads and
//! OS entropy are the two ways that breaks silently. This test walks all
//! library source (`crates/*/src` and the facade's `src/`) and fails on
//! any use of `std::time::Instant::now`, `SystemTime`, or `thread_rng`.
//!
//! Deliberately out of scope: `tests/`, `benches/` and `src/bin/` CLI
//! entry points (timing *around* a deterministic computation is fine —
//! `tests/scale.rs`, the criterion harness and `figures bench` do exactly
//! that) and the vendored shims under `vendor/`.
//!
//! Two library files are allowlisted. `crates/telemetry/src/span.rs` is
//! the telemetry layer's timing-span module: its wall-clock reads are
//! strictly observational — span durations feed `PhaseProfile` summaries
//! and never flow back into any decision, which the thread-invariance
//! tests pin by asserting bit-identical results with telemetry on and
//! off. `crates/core/src/experiments/replay.rs` is the replay throughput
//! measurement: the wall time *is* the reported figure
//! (`streamed_seconds` / `batched_seconds`), while every deterministic
//! field of the same report (events, admitted, rejected) is pinned
//! seed-exact by tests that never read the timing. Keeping the clock
//! behind these audited seams is the point of this allowlist: anything
//! else that wants the time must go through a `SpanToken` or a
//! measurement report, not read the clock itself.

use std::fs;
use std::path::{Path, PathBuf};

const FORBIDDEN: &[&str] = &["Instant::now", "SystemTime", "thread_rng"];

/// Library files allowed to read the wall clock, with the reason pinned
/// next to the path. Additions here need the same justification: the
/// value must be observational only (never feed back into results).
const ALLOWLISTED: &[&str] = &[
    // Telemetry timing spans: durations are reported, never consulted.
    "crates/telemetry/src/span.rs",
    // Replay throughput measurement: the wall time is the figure being
    // reported; the replay's results are seed-deterministic regardless.
    "crates/core/src/experiments/replay.rs",
];

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = fs::read_dir(dir).unwrap_or_else(|e| panic!("read {}: {e}", dir.display()));
    for entry in entries {
        let path = entry.expect("directory entry").path();
        if path.is_dir() {
            // CLI entry points may time around deterministic computations
            // (`figures bench`); everything they call is still audited.
            if path.file_name().is_some_and(|name| name == "bin") {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn library_code_never_reads_wall_clock_or_os_entropy() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut sources = Vec::new();
    rust_sources(&root.join("src"), &mut sources);
    let crates = root.join("crates");
    for entry in fs::read_dir(&crates).expect("crates/ exists") {
        let src = entry.expect("directory entry").path().join("src");
        if src.is_dir() {
            rust_sources(&src, &mut sources);
        }
    }
    assert!(
        sources.len() > 10,
        "audit must actually find the workspace sources"
    );

    let mut violations = Vec::new();
    let mut allowlist_hits = vec![false; ALLOWLISTED.len()];
    for path in &sources {
        let relative = path.strip_prefix(&root).unwrap_or(path);
        let allowlisted = ALLOWLISTED
            .iter()
            .position(|allowed| Path::new(allowed) == relative);
        let text = fs::read_to_string(path).expect("source file is readable");
        for (number, line) in text.lines().enumerate() {
            for pattern in FORBIDDEN {
                if line.contains(pattern) {
                    match allowlisted {
                        Some(index) => allowlist_hits[index] = true,
                        None => violations.push(format!(
                            "{}:{}: {}",
                            relative.display(),
                            number + 1,
                            line.trim()
                        )),
                    }
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "wall-clock or entropy use in library code:\n{}",
        violations.join("\n")
    );
    // A stale allowlist is a hole in the audit: every entry must still
    // contain the pattern it exists to excuse.
    for (allowed, hit) in ALLOWLISTED.iter().zip(allowlist_hits) {
        assert!(
            hit,
            "{allowed} is allowlisted but no longer reads the clock; remove the entry"
        );
    }
}
