//! Validation: closed-form Jackson analytics vs the discrete-event
//! simulator.
//!
//! The queueing model of §III.B is only as credible as its agreement with
//! the system it abstracts. This module builds matched pairs — an analytic
//! configuration evaluated by `nfv-queueing` and the identical stochastic
//! system executed by `nfv-sim` — and reports relative errors. The
//! `figures validate` command and the integration tests keep the two
//! implementations honest against each other.

use nfv_model::{ArrivalRate, DeliveryProbability, ServiceRate};
use nfv_parallel::{derive_seed, par_map};
use nfv_queueing::InstanceLoad;
use nfv_scheduling::{Rckk, Scheduler};
use nfv_sim::{SimConfig, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::CoreError;

/// One analytic-vs-simulated comparison row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationRow {
    /// Human-readable description of the configuration.
    pub label: String,
    /// Mean end-to-end latency predicted by the Jackson model, seconds.
    pub analytic: f64,
    /// Mean end-to-end latency measured by the simulator, seconds.
    pub simulated: f64,
}

impl ValidationRow {
    /// Relative error `|sim − analytic| / analytic`.
    #[must_use]
    pub fn relative_error(&self) -> f64 {
        if self.analytic == 0.0 {
            0.0
        } else {
            (self.simulated - self.analytic).abs() / self.analytic
        }
    }
}

/// Deliveries simulated per validation row, split evenly over
/// [`REPLICATIONS`] independent replications. High-utilization stations mix
/// slowly (autocorrelated sojourns), so the suite errs toward more samples
/// and a generous warmup.
const DELIVERIES: u64 = 200_000;
const WARMUP: u64 = 30_000;

/// Independent simulator replications per validation row. Each replication
/// runs `DELIVERIES / REPLICATIONS` deliveries after its own warmup on the
/// deterministic worker pool, and the row reports the mean of the
/// replication means (equal sample counts, so this is an unbiased
/// estimator of the steady-state mean).
const REPLICATIONS: u64 = 4;

/// Runs `REPLICATIONS` independent copies of `config` with seeds derived
/// from `(seed, replication index)` and returns the mean of the
/// per-replication mean latencies, folded in replication order so the
/// result is bit-identical at any thread count.
fn simulate_mean_latency(config: &SimConfig, seed: u64) -> Result<f64, CoreError> {
    let replica = config.with_window(DELIVERIES / REPLICATIONS, WARMUP);
    let means = par_map((0..REPLICATIONS).collect(), |_, r| {
        Simulator::new(replica.clone())
            .run(&mut StdRng::seed_from_u64(derive_seed(seed, r)))
            .mean_latency()
    })
    .map_err(CoreError::from)?;
    Ok(means.iter().sum::<f64>() / means.len() as f64)
}

/// Validates a single M/M/1 instance with loss feedback: analytic
/// `W = (1/P)/(μ − λ/P)` vs simulation.
///
/// # Errors
///
/// Returns [`CoreError::Queueing`] if the configuration is unstable.
pub fn validate_single_station(
    lambda: f64,
    mu: f64,
    p: f64,
    seed: u64,
) -> Result<ValidationRow, CoreError> {
    let mut load = InstanceLoad::new(
        ServiceRate::new(mu).map_err(|_| CoreError::Inconsistent { reason: "bad mu" })?,
    );
    load.add_request(
        ArrivalRate::new(lambda).map_err(|_| CoreError::Inconsistent {
            reason: "bad lambda",
        })?,
        DeliveryProbability::new(p).map_err(|_| CoreError::Inconsistent {
            reason: "bad delivery",
        })?,
    );
    let analytic = load.mean_delivery_response_time()?;

    let config = SimConfig::builder()
        .station(mu)
        .map_err(|_| CoreError::Inconsistent { reason: "bad mu" })?
        .request(lambda, p, vec![0])
        .map_err(|_| CoreError::Inconsistent {
            reason: "bad request",
        })?
        .target_deliveries(DELIVERIES)
        .warmup_deliveries(WARMUP)
        .build()
        .map_err(|_| CoreError::Inconsistent {
            reason: "bad sim config",
        })?;
    Ok(ValidationRow {
        label: format!("M/M/1 λ={lambda} μ={mu} P={p}"),
        analytic,
        simulated: simulate_mean_latency(&config, seed)?,
    })
}

/// Validates a full scheduling point: `n` random requests scheduled by
/// RCKK onto `m` instances, compared on the packet-average latency
/// `Σ_k E[N_k] / Σ_r λ_r` (global Little's law) against the simulator
/// executing the identical assignment.
///
/// # Errors
///
/// Returns [`CoreError`] if the point is invalid or unstable.
pub fn validate_scheduled_instances(
    requests: usize,
    instances: usize,
    p: f64,
    seed: u64,
) -> Result<ValidationRow, CoreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rates: Vec<ArrivalRate> = (0..requests)
        .map(|_| ArrivalRate::new(rng.gen_range(1.0..=100.0)).expect("positive range"))
        .collect();
    let schedule = Rckk::new().schedule(&rates, instances)?;
    // μ such that the most loaded instance sits at 90% utilization.
    let mu_value = schedule.makespan() / p / 0.9;
    let mu = ServiceRate::new(mu_value).map_err(|_| CoreError::Inconsistent {
        reason: "degenerate service rate",
    })?;
    let delivery = DeliveryProbability::new(p).map_err(|_| CoreError::Inconsistent {
        reason: "bad delivery",
    })?;

    // Analytic packet-average latency over delivered packets.
    let loads = schedule.instance_loads(mu, delivery);
    let mut expected_packets = 0.0;
    for load in &loads {
        expected_packets += load.queue()?.mean_packets_in_system();
    }
    let total_external: f64 = rates.iter().map(|r| r.value()).sum();
    let analytic = expected_packets / total_external;

    // The identical system, simulated.
    let mut builder = SimConfig::builder()
        .stations(mu_value, instances)
        .map_err(|_| CoreError::Inconsistent { reason: "bad mu" })?;
    for (r, rate) in rates.iter().enumerate() {
        builder = builder
            .request(rate.value(), p, vec![schedule.instance_of(r)])
            .map_err(|_| CoreError::Inconsistent {
                reason: "bad request",
            })?;
    }
    let config = builder
        .target_deliveries(DELIVERIES)
        .warmup_deliveries(WARMUP)
        .build()
        .map_err(|_| CoreError::Inconsistent {
            reason: "bad sim config",
        })?;
    Ok(ValidationRow {
        label: format!("{requests} requests on {instances} instances, P={p}"),
        analytic,
        simulated: simulate_mean_latency(&config, seed ^ 0xBEEF)?,
    })
}

/// Validates a tandem chain (each request visits several stations in
/// series) with loss feedback.
///
/// # Errors
///
/// Returns [`CoreError`] if the configuration is unstable.
pub fn validate_chain(
    lambda: f64,
    mus: &[f64],
    p: f64,
    seed: u64,
) -> Result<ValidationRow, CoreError> {
    // Analytic: E[T] = (1/P) Σ 1/(μ_i − λ/P).
    let effective = lambda / p;
    let mut analytic = 0.0;
    for &mu in mus {
        if effective >= mu {
            return Err(CoreError::Queueing(nfv_queueing::QueueingError::Unstable {
                arrival: effective,
                service: mu,
            }));
        }
        analytic += 1.0 / (mu - effective);
    }
    analytic /= p;

    let mut builder = SimConfig::builder();
    for &mu in mus {
        builder = builder
            .station(mu)
            .map_err(|_| CoreError::Inconsistent { reason: "bad mu" })?;
    }
    let config = builder
        .request(lambda, p, (0..mus.len()).collect())
        .map_err(|_| CoreError::Inconsistent {
            reason: "bad request",
        })?
        .target_deliveries(DELIVERIES)
        .warmup_deliveries(WARMUP)
        .build()
        .map_err(|_| CoreError::Inconsistent {
            reason: "bad sim config",
        })?;
    Ok(ValidationRow {
        label: format!("chain of {} stations, λ={lambda}, P={p}", mus.len()),
        analytic,
        simulated: simulate_mean_latency(&config, seed)?,
    })
}

/// Validates a complete joint solution end-to-end: a scenario is placed
/// and scheduled by the default pipeline (BFDSU + RCKK), every service
/// instance becomes a simulator station, every request's chain becomes a
/// station path with its own delivery probability — and the simulator's
/// packet-average latency is compared against the analytic prediction
/// `Σ_r λ_r · E[T_r] / Σ_r λ_r` with
/// `E[T_r] = (1/P_r) · Σ_hops 1/(μ − Λ)`.
///
/// This is the strongest cross-check in the suite: it exercises workload
/// generation, placement, scheduling, the Kleinrock merge of heterogeneous
/// per-request loss rates, and the simulator in one shot.
///
/// # Errors
///
/// Returns [`CoreError`] if the pipeline fails or an instance is unstable.
pub fn validate_joint_solution(
    vnfs: usize,
    requests: usize,
    seed: u64,
) -> Result<ValidationRow, CoreError> {
    use nfv_queueing::ChainResponse;
    use nfv_topology::builders;
    use nfv_workload::{InstancePolicy, ScenarioBuilder, ServiceRatePolicy};

    let scenario = ScenarioBuilder::new()
        .vnfs(vnfs)
        .requests(requests)
        .instance_policy(InstancePolicy::PerUsers {
            requests_per_instance: 8,
        })
        .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
            target_utilization: 0.8,
        })
        .seed(seed)
        .build()?;
    let per_host = scenario.total_demand().value() / 4.0;
    let max_vnf = scenario
        .vnfs()
        .iter()
        .map(|v| v.total_demand().value())
        .fold(0.0f64, f64::max);
    let topology = builders::star()
        .hosts(8)
        .uniform_capacity(per_host.max(1.1 * max_vnf))
        .build()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let solution = crate::JointOptimizer::new().optimize(&scenario, &topology, &mut rng)?;
    let loads = solution.instance_loads();

    // Analytic packet-average end-to-end latency over delivered packets.
    let mut weighted = 0.0;
    let mut total_rate = 0.0;
    for request in scenario.requests() {
        let stations: Vec<&nfv_queueing::InstanceLoad> = request
            .chain()
            .iter()
            .map(|vnf| {
                let k = solution
                    .instance_serving(request.id(), vnf)
                    .expect("scheduled on every chain VNF");
                &loads[vnf.as_usize()][k]
            })
            .collect();
        let response = ChainResponse::compute(stations, request.delivery())?;
        weighted += request.arrival_rate().value() * response.total();
        total_rate += request.arrival_rate().value();
    }
    let analytic = weighted / total_rate;

    // The identical system in the simulator: one station per (VNF,
    // instance), indexed consecutively.
    let mut station_index = Vec::with_capacity(scenario.vnfs().len());
    let mut builder = SimConfig::builder();
    let mut next = 0usize;
    for vnf in scenario.vnfs() {
        station_index.push(next);
        for _ in 0..vnf.instances() {
            builder = builder
                .station(vnf.service_rate().value())
                .map_err(|_| CoreError::Inconsistent { reason: "bad mu" })?;
            next += 1;
        }
    }
    for request in scenario.requests() {
        let path: Vec<usize> = request
            .chain()
            .iter()
            .map(|vnf| {
                station_index[vnf.as_usize()]
                    + solution
                        .instance_serving(request.id(), vnf)
                        .expect("scheduled on every chain VNF")
            })
            .collect();
        builder = builder
            .request(
                request.arrival_rate().value(),
                request.delivery().value(),
                path,
            )
            .map_err(|_| CoreError::Inconsistent {
                reason: "bad request",
            })?;
    }
    let config = builder
        .target_deliveries(DELIVERIES)
        .warmup_deliveries(WARMUP)
        .build()
        .map_err(|_| CoreError::Inconsistent {
            reason: "bad sim config",
        })?;
    Ok(ValidationRow {
        label: format!("joint pipeline: {vnfs} VNFs, {requests} requests"),
        analytic,
        simulated: simulate_mean_latency(&config, seed ^ 0xFACE)?,
    })
}

/// Runs the standard validation suite: single stations across loads, a
/// lossy station, chains, and scheduled instance groups.
///
/// # Errors
///
/// Propagates instability errors, which indicate a bug in the suite's
/// parameters.
pub fn standard_suite(seed: u64) -> Result<Vec<ValidationRow>, CoreError> {
    Ok(vec![
        validate_single_station(30.0, 100.0, 1.0, seed)?,
        validate_single_station(70.0, 100.0, 1.0, seed.wrapping_add(1))?,
        validate_single_station(90.0, 100.0, 1.0, seed.wrapping_add(2))?,
        validate_single_station(50.0, 100.0, 0.9, seed.wrapping_add(3))?,
        validate_chain(40.0, &[100.0, 80.0, 120.0], 1.0, seed.wrapping_add(4))?,
        validate_chain(40.0, &[100.0, 80.0, 120.0], 0.95, seed.wrapping_add(5))?,
        validate_scheduled_instances(50, 5, 0.98, seed.wrapping_add(6))?,
        validate_scheduled_instances(100, 8, 1.0, seed.wrapping_add(7))?,
        validate_joint_solution(8, 80, seed.wrapping_add(8))?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_station_agrees_within_five_percent() {
        let row = validate_single_station(50.0, 100.0, 1.0, 42).unwrap();
        assert!(
            row.relative_error() < 0.05,
            "error {}",
            row.relative_error()
        );
    }

    #[test]
    fn lossy_station_agrees() {
        let row = validate_single_station(40.0, 100.0, 0.85, 43).unwrap();
        assert!(
            row.relative_error() < 0.06,
            "error {}",
            row.relative_error()
        );
    }

    #[test]
    fn chain_agrees() {
        let row = validate_chain(30.0, &[100.0, 60.0], 1.0, 44).unwrap();
        assert!(
            row.relative_error() < 0.05,
            "error {}",
            row.relative_error()
        );
    }

    #[test]
    fn scheduled_instances_agree() {
        let row = validate_scheduled_instances(40, 4, 0.98, 45).unwrap();
        assert!(
            row.relative_error() < 0.08,
            "error {}",
            row.relative_error()
        );
    }

    #[test]
    fn joint_solution_agrees_with_simulation() {
        let row = validate_joint_solution(6, 60, 47).unwrap();
        assert!(
            row.relative_error() < 0.08,
            "error {}",
            row.relative_error()
        );
    }

    #[test]
    fn unstable_chain_is_rejected() {
        assert!(matches!(
            validate_chain(90.0, &[100.0, 80.0], 0.8, 46),
            Err(CoreError::Queueing(_))
        ));
    }
}
