//! Criterion benchmarks for the online control plane: full churn-trace
//! replays per policy, and the single-event hot path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nfv_controller::{Controller, ControllerConfig};
use nfv_core::experiments::churn::{setup, ChurnPoint};

fn bench_controller(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller");
    let (scenario, trace) = setup(&ChurnPoint::base(), 42).expect("valid fixture");
    let policies = [
        ("online-only", ControllerConfig::online_only()),
        ("periodic-reopt", ControllerConfig::periodic_reopt()),
        ("offline-oracle", ControllerConfig::offline_oracle()),
    ];
    for (name, config) in policies {
        group.bench_with_input(BenchmarkId::new("replay", name), &config, |b, config| {
            b.iter(|| {
                let mut controller = Controller::new(&scenario, *config);
                black_box(controller.run_trace(&trace))
            });
        });
    }
    // The per-event hot path in isolation: dispatch of the base
    // population, no churn events at all.
    let quiet = setup(
        &ChurnPoint {
            arrival_rate: 0.0,
            outage_rate: 0.0,
            ..ChurnPoint::base()
        },
        42,
    )
    .expect("valid fixture");
    group.bench_function("dispatch-base-population", |b| {
        b.iter(|| {
            let mut controller = Controller::new(&quiet.0, ControllerConfig::online_only());
            black_box(controller.run_trace(&quiet.1))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_controller);
criterion_main!(benches);
