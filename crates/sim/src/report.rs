//! Simulation results.

use std::fmt;

use nfv_metrics::Summary;
use serde::{Deserialize, Serialize};

/// The measured outcome of a simulation run.
///
/// Latencies are end-to-end per *delivered* packet, measured from the
/// packet's first entry into the system to its successful delivery — so
/// retransmission rounds are included, matching the analytic
/// `W = (1/P)·Σ 1/(μ_i − Λ_i)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    pub(crate) overall_latency: Summary,
    pub(crate) per_request_latency: Vec<Summary>,
    pub(crate) station_utilization: Vec<f64>,
    pub(crate) station_arrival_rate: Vec<f64>,
    pub(crate) station_mean_packets: Vec<f64>,
    pub(crate) station_dropped: Vec<u64>,
    pub(crate) delivered: u64,
    pub(crate) retransmissions: u64,
    pub(crate) events_processed: u64,
    pub(crate) sim_time: f64,
    pub(crate) truncated: bool,
}

impl SimReport {
    /// Mean end-to-end latency over all measured deliveries, seconds.
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        self.overall_latency.mean()
    }

    /// The `q`-quantile of measured end-to-end latency.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn latency_percentile(&mut self, q: f64) -> f64 {
        self.overall_latency.percentile(q)
    }

    /// The full latency summary (moments + retained samples).
    #[must_use]
    pub fn latency_summary(&self) -> &Summary {
        &self.overall_latency
    }

    /// Batch-means ~95% confidence interval `(mean, half_width)` for the
    /// mean latency. Consecutive sojourn times from the same queue are
    /// strongly autocorrelated, so this is the statistically honest CI
    /// (the iid normal approximation underestimates the width).
    #[must_use]
    pub fn latency_ci(&self, batches: usize) -> Option<(f64, f64)> {
        self.overall_latency.batch_means_ci(batches)
    }

    /// Per-request latency summaries, indexed by request.
    #[must_use]
    pub fn per_request_latency(&self) -> &[Summary] {
        &self.per_request_latency
    }

    /// Empirical utilization of each station: busy time / simulated time.
    #[must_use]
    pub fn station_utilization(&self) -> &[f64] {
        &self.station_utilization
    }

    /// Empirical total arrival rate (visits per second) at each station —
    /// converges to the analytic `Λ = Σ λ_r / P_r` under loss feedback.
    #[must_use]
    pub fn station_arrival_rate(&self) -> &[f64] {
        &self.station_arrival_rate
    }

    /// Time-averaged number of packets in each station's system (queue +
    /// server) over the whole run — converges to `ρ/(1 − ρ)` for a stable
    /// unbounded station (Eq. (10)).
    #[must_use]
    pub fn station_mean_packets(&self) -> &[f64] {
        &self.station_mean_packets
    }

    /// Packets dropped at each station due to a full finite buffer
    /// (congestion loss); all zeros for unbounded stations.
    #[must_use]
    pub fn station_dropped(&self) -> &[u64] {
        &self.station_dropped
    }

    /// Total congestion drops over all stations.
    #[must_use]
    pub fn congestion_drops(&self) -> u64 {
        self.station_dropped.iter().sum()
    }

    /// Measured deliveries (after warmup).
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of end-to-end retransmissions triggered by loss.
    #[must_use]
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Total events processed.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Simulated time horizon reached, seconds.
    #[must_use]
    pub fn sim_time(&self) -> f64 {
        self.sim_time
    }

    /// Whether the run hit its event cap before reaching the delivery
    /// target — a strong hint that the configuration is unstable (some
    /// station has `ρ ≥ 1`).
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.truncated
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sim: {} deliveries in {:.3}s, mean latency {:.6}s, {} retransmissions{}",
            self.delivered,
            self.sim_time,
            self.mean_latency(),
            self.retransmissions,
            if self.truncated { " (TRUNCATED)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_flags_truncation() {
        let report = SimReport {
            overall_latency: Summary::new(),
            per_request_latency: vec![],
            station_utilization: vec![],
            station_arrival_rate: vec![],
            station_mean_packets: vec![],
            station_dropped: vec![],
            delivered: 0,
            retransmissions: 0,
            events_processed: 10,
            sim_time: 1.0,
            truncated: true,
        };
        assert!(report.to_string().contains("TRUNCATED"));
        assert!(report.truncated());
    }
}
