//! Deterministic anytime metaheuristic placement search.
//!
//! The paper's BFDSU/FFD/NAH heuristics are one-shot constructions: they
//! emit a single placement and stop. This crate adds an *anytime*
//! population-based searcher over the same problem — give it more
//! generations and the best-so-far placement only improves — with two
//! interchangeable engines behind one [`SearchConfig`]:
//!
//! * [`Engine::Ga`] — a genetic algorithm: tournament selection, uniform
//!   capacity-repairing crossover and per-gene mutation over the dense
//!   VNF→node genome (`genome[f]` = node hosting VNF `f`, the paper's
//!   `x_v^f` table in dense form);
//! * [`Engine::Pso`] — discrete particle swarm optimization: the
//!   per-particle velocity is a triple of per-gene reassignment
//!   probabilities (toward the swarm's global best, toward the particle's
//!   personal best, or to a uniformly random node), the discrete analogue
//!   of the classic social/cognitive/inertia update.
//!
//! Both engines minimize the same balanced packing-and-latency objective
//! ([`objective`]): the number of nodes in service (Eq. (14)) plus a
//! utilization-balance term (1 − Eq. (13)) and the chain link-latency
//! term of Eq. (16) (inter-node transitions along each service chain).
//! Node count dominates the scalarization, so on chain-free instances the
//! searcher optimizes exactly what the exact branch-and-bound oracle
//! ([`nfv_placement::exact`]) minimizes.
//!
//! # Determinism
//!
//! Every generation is embarrassingly parallel: offspring `i` of
//! generation `g` draws all its randomness from a private
//! `StdRng::seed_from_u64(derive_seed(seed, (g·pop + i)))`, and the
//! population is evaluated with [`nfv_parallel::par_map`] which returns
//! results in input order. Selection pressure, crossover, mutation,
//! repair and the best-so-far fold therefore never observe thread
//! scheduling, and results are bit-identical at any thread count
//! (pinned by `crates/core/tests/thread_invariance.rs`).
//!
//! # Examples
//!
//! ```
//! use nfv_model::{Capacity, ComputeNode, Demand, NodeId, ServiceRate, Vnf, VnfId, VnfKind};
//! use nfv_placement::PlacementProblem;
//! use nfv_search::{search, SearchConfig};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nodes = (0..4)
//!     .map(|i| ComputeNode::new(NodeId::new(i), Capacity::new(100.0).unwrap()))
//!     .collect();
//! let vnfs = (0..6)
//!     .map(|i| {
//!         Vnf::builder(VnfId::new(i), VnfKind::Custom(i as u16))
//!             .demand_per_instance(Demand::new(30.0).unwrap())
//!             .service_rate(ServiceRate::new(100.0).unwrap())
//!             .build()
//!             .unwrap()
//!     })
//!     .collect();
//! let problem = PlacementProblem::new(nodes, vnfs)?;
//! let outcome = search(&problem, &SearchConfig::ga(42), 10)?;
//! assert_eq!(outcome.best_placement(&problem)?.nodes_in_service(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod fitness;
mod run;

pub use config::{Engine, SearchConfig};
pub use fitness::{objective, FitnessWeights};
pub use run::{search, SearchOutcome, SearchRun};
