//! Link delay model.

use std::fmt;
use std::iter::Sum;
use std::ops::Add;

use serde::{Deserialize, Serialize};

/// One-hop communication latency `L` between adjacent vertices: the sum of
/// average propagation delay and transmission delay on a link (paper,
/// Eq. (16)).
///
/// Stored in seconds. Delays are finite and non-negative; the default is
/// zero, which degenerates Eq. (16) to the pure response-latency objective.
///
/// # Examples
///
/// ```
/// use nfv_topology::LinkDelay;
/// let l = LinkDelay::from_micros(50.0);
/// assert!((l.seconds() - 5.0e-5).abs() < 1e-18);
/// let two_hops = l + l;
/// assert!((two_hops.micros() - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct LinkDelay(f64);

impl LinkDelay {
    /// Zero delay.
    pub const ZERO: LinkDelay = LinkDelay(0.0);

    /// Creates a delay of `seconds` seconds, clamping negatives/NaN to zero.
    #[must_use]
    pub fn from_seconds(seconds: f64) -> Self {
        if seconds.is_finite() && seconds > 0.0 {
            Self(seconds)
        } else {
            Self(0.0)
        }
    }

    /// Creates a delay of `micros` microseconds.
    #[must_use]
    pub fn from_micros(micros: f64) -> Self {
        Self::from_seconds(micros * 1e-6)
    }

    /// Creates a delay of `millis` milliseconds.
    #[must_use]
    pub fn from_millis(millis: f64) -> Self {
        Self::from_seconds(millis * 1e-3)
    }

    /// The delay in seconds.
    #[must_use]
    pub const fn seconds(self) -> f64 {
        self.0
    }

    /// The delay in microseconds.
    #[must_use]
    pub fn micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The delay accumulated over `hops` consecutive links.
    #[must_use]
    pub fn over_hops(self, hops: usize) -> Self {
        // hops is small (network diameter); the cast cannot lose precision.
        Self(self.0 * hops as f64)
    }
}

impl Add for LinkDelay {
    type Output = LinkDelay;

    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sum for LinkDelay {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for LinkDelay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}us", self.micros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let l = LinkDelay::from_millis(1.5);
        assert!((l.seconds() - 0.0015).abs() < 1e-15);
        assert!((l.micros() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn negatives_and_nan_clamp_to_zero() {
        assert_eq!(LinkDelay::from_seconds(-1.0), LinkDelay::ZERO);
        assert_eq!(LinkDelay::from_seconds(f64::NAN), LinkDelay::ZERO);
        assert_eq!(LinkDelay::from_seconds(f64::INFINITY), LinkDelay::ZERO);
    }

    #[test]
    fn over_hops_scales_linearly() {
        let l = LinkDelay::from_micros(10.0);
        assert_eq!(l.over_hops(0), LinkDelay::ZERO);
        assert!((l.over_hops(3).micros() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn sums_accumulate() {
        let total: LinkDelay = (0..4).map(|_| LinkDelay::from_micros(5.0)).sum();
        assert!((total.micros() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn display_in_micros() {
        assert_eq!(LinkDelay::from_micros(50.0).to_string(), "50.0us");
    }
}
