//! Loss sensitivity: what does a lossy network do to a shared VNF?
//!
//! A single load balancer VNF with five service instances serves fifty
//! tenants. This example sweeps the packet loss rate, schedules the
//! tenants with RCKK and CGA, and reports three things side by side:
//!
//! * the analytic average response time `W` (Eq. (15)),
//! * the job rejection rate once admission control kicks in,
//! * a discrete-event simulation of the same system, confirming the
//!   closed-form numbers.
//!
//! ```text
//! cargo run --release --example loss_sensitivity
//! ```

use nfv::metrics::Table;
use nfv::model::{ArrivalRate, DeliveryProbability, ServiceRate};
use nfv::scheduling::{Cga, Rckk, Scheduler};
use nfv::sim::{SimConfig, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const INSTANCES: usize = 5;
const REQUESTS: usize = 50;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(3);
    let rates: Vec<ArrivalRate> = (0..REQUESTS)
        .map(|_| ArrivalRate::new(rng.gen_range(1.0..=100.0)))
        .collect::<Result<_, _>>()?;
    let total: f64 = rates.iter().map(|r| r.value()).sum();

    // Fixed capacity: a perfectly balanced, lossless schedule would run
    // each instance at 90%.
    let mu = ServiceRate::new(total / INSTANCES as f64 / 0.9)?;
    println!(
        "{REQUESTS} tenants, {INSTANCES} instances at μ = {:.1} pps each (balanced 90% lossless)\n",
        mu.value()
    );

    let schedulers: Vec<Box<dyn Scheduler>> = vec![Box::new(Rckk::new()), Box::new(Cga::new())];
    let mut table = Table::new(vec![
        "loss%",
        "scheduler",
        "analytic W(s)",
        "simulated(s)",
        "rejection%",
    ]);

    for loss in [0.0, 1.0, 2.0, 4.0, 8.0] {
        let p = DeliveryProbability::from_loss_rate(loss / 100.0)?;
        for scheduler in &schedulers {
            let schedule = scheduler.schedule(&rates, INSTANCES)?;
            let (report, loads) = schedule.rejection_report(mu, p);

            // Analytic W over the admitted traffic.
            let mut w_sum = 0.0;
            for load in &loads {
                w_sum += load.mean_delivery_response_time()?;
            }
            let analytic = w_sum / INSTANCES as f64;

            // Simulate the admitted requests on their assigned instances.
            let mut builder = SimConfig::builder().stations(mu.value(), INSTANCES)?;
            let mut ctrl = nfv::queueing::admission::AdmissionController::new(mu, INSTANCES);
            for (r, rate) in rates.iter().enumerate() {
                if ctrl.offer(schedule.instance_of(r), *rate, p) {
                    builder =
                        builder.request(rate.value(), p.value(), vec![schedule.instance_of(r)])?;
                }
            }
            let sim_config = builder
                .target_deliveries(40_000)
                .warmup_deliveries(4_000)
                .build()?;
            let sim = Simulator::new(sim_config).run(&mut StdRng::seed_from_u64(8));

            table.row(vec![
                format!("{loss:.0}"),
                scheduler.name().to_owned(),
                format!("{analytic:.5}"),
                format!("{:.5}", sim.mean_latency()),
                format!("{:.1}", report.rejection_rate() * 100.0),
            ]);
        }
    }
    print!("{table}");
    println!(
        "\nnote: analytic W averages per-instance response times (Eq. 15); the simulation\n\
         reports the packet-weighted mean, so heavily loaded instances weigh more there"
    );
    Ok(())
}
