//! CKK: budget-limited Complete Karmarkar–Karp search.

use nfv_model::ArrivalRate;

use crate::partition::Partition;
use crate::scheduler::check_inputs;
use crate::{Schedule, Scheduler, SchedulingError};

/// The Complete Karmarkar–Karp algorithm for multi-way partitioning (Korf,
/// IJCAI'09), in an anytime budget-limited form.
///
/// Like [`crate::Rckk`], CKK repeatedly combines the two partitions with
/// the largest leading values — but instead of committing to one pairing it
/// branches over *all* distinct position pairings of the two partitions
/// (up to `m!`), keeping the best complete schedule by makespan. The first
/// leaf explored uses the reverse pairing, so with a budget of 1 CKK
/// reduces exactly to RCKK; larger budgets approach the optimal partition.
///
/// This is the "existing approximation algorithm … that does not scale
/// well as the number of instances increases" the paper replaces with
/// RCKK: each branching step multiplies the frontier by up to `m!`
/// pairings. It earns its keep here as the small-instance oracle for
/// tests and ablations.
///
/// # Examples
///
/// ```
/// use nfv_model::ArrivalRate;
/// use nfv_scheduling::{Ckk, Scheduler};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rates: Vec<ArrivalRate> =
///     [3.0, 3.0, 2.0, 2.0, 2.0].iter().map(|&v| ArrivalRate::new(v)).collect::<Result<_, _>>()?;
/// let schedule = Ckk::new().with_leaf_budget(10_000).schedule(&rates, 2)?;
/// assert_eq!(schedule.makespan(), 6.0); // optimal {3,3} vs {2,2,2}
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ckk {
    leaf_budget: u64,
}

impl Ckk {
    /// Creates CKK with a budget of one leaf (equivalent to RCKK).
    #[must_use]
    pub fn new() -> Self {
        Self { leaf_budget: 1 }
    }

    /// Allows the search to visit up to `leaves` complete schedules.
    #[must_use]
    pub fn with_leaf_budget(mut self, leaves: u64) -> Self {
        self.leaf_budget = leaves.max(1);
        self
    }
}

impl Default for Ckk {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Ckk {
    fn name(&self) -> &'static str {
        "ckk"
    }

    fn schedule(
        &self,
        rates: &[ArrivalRate],
        instances: usize,
    ) -> Result<Schedule, SchedulingError> {
        check_inputs(rates, instances)?;
        let partitions: Vec<Partition> = rates
            .iter()
            .enumerate()
            .map(|(r, rate)| Partition::singleton(rate.value(), r, instances))
            .collect();
        let mut search = Search {
            rates,
            instances,
            best: None,
            best_makespan: f64::INFINITY,
            leaves_left: self.leaf_budget,
        };
        search.descend(partitions);
        let assignment = search.best.expect("budget >= 1 visits at least one leaf");
        Schedule::new(rates.to_vec(), assignment, instances)
    }
}

struct Search<'a> {
    rates: &'a [ArrivalRate],
    instances: usize,
    best: Option<Vec<usize>>,
    best_makespan: f64,
    leaves_left: u64,
}

impl Search<'_> {
    fn descend(&mut self, mut partitions: Vec<Partition>) {
        if self.leaves_left == 0 {
            return;
        }
        if partitions.len() == 1 {
            let assignment = partitions
                .pop()
                .expect("one left")
                .into_assignment(self.rates.len());
            let mut sums = vec![0.0; self.instances];
            for (r, &k) in assignment.iter().enumerate() {
                sums[k] += self.rates[r].value();
            }
            let makespan = sums.into_iter().fold(0.0, f64::max);
            if makespan < self.best_makespan {
                self.best_makespan = makespan;
                self.best = Some(assignment);
            }
            self.leaves_left -= 1;
            return;
        }
        // Take the two partitions with the largest leading values.
        partitions.sort_by(|a, b| {
            b.first()
                .partial_cmp(&a.first())
                .expect("values are finite")
        });
        let a = partitions.remove(0);
        let b = partitions.remove(0);

        // Branch over distinct pairings; reverse first so leaf #1 == RCKK.
        let mut pairings = all_pairings(self.instances);
        let reverse: Vec<usize> = (0..self.instances).rev().collect();
        pairings.sort_by_key(|p| *p != reverse);
        let mut seen: Vec<Vec<u64>> = Vec::new();
        for pairing in pairings {
            let combined = a.combine_with_pairing(&b, &pairing);
            // Deduplicate value-identical children.
            let key: Vec<u64> = (0..self.instances)
                .map(|i| combined_value_bits(&combined, i))
                .collect();
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            let mut next = partitions.clone();
            next.push(combined);
            self.descend(next);
            if self.leaves_left == 0 {
                return;
            }
        }
    }
}

fn combined_value_bits(p: &Partition, i: usize) -> u64 {
    // Partition keeps values sorted; compare by bit pattern for dedup.
    p.value_at(i).to_bits()
}

/// All permutations of `0..m` (Heap's algorithm).
fn all_pairings(m: usize) -> Vec<Vec<usize>> {
    let mut result = Vec::new();
    let mut items: Vec<usize> = (0..m).collect();
    heap_permute(&mut items, m, &mut result);
    result
}

fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k == 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rckk;

    fn rates(values: &[f64]) -> Vec<ArrivalRate> {
        values
            .iter()
            .map(|&v| ArrivalRate::new(v).unwrap())
            .collect()
    }

    #[test]
    fn budget_one_equals_rckk() {
        let input = rates(&[9.0, 8.0, 7.0, 6.0, 5.0, 4.0]);
        for m in 2..=4 {
            let ckk = Ckk::new().schedule(&input, m).unwrap();
            let rckk = Rckk::new().schedule(&input, m).unwrap();
            assert_eq!(ckk.makespan(), rckk.makespan(), "m={m}");
        }
    }

    #[test]
    fn search_reaches_perfect_partition() {
        // {4,5,6,7,8} splits 15/15.
        let input = rates(&[4.0, 5.0, 6.0, 7.0, 8.0]);
        let schedule = Ckk::new()
            .with_leaf_budget(100_000)
            .schedule(&input, 2)
            .unwrap();
        assert_eq!(schedule.makespan(), 15.0);
    }

    #[test]
    fn search_never_worse_than_first_solution() {
        let input = rates(&[13.0, 11.0, 10.0, 8.0, 7.0, 5.0, 4.0]);
        let first = Ckk::new().schedule(&input, 3).unwrap();
        let searched = Ckk::new()
            .with_leaf_budget(50_000)
            .schedule(&input, 3)
            .unwrap();
        assert!(searched.makespan() <= first.makespan());
    }

    #[test]
    fn all_pairings_count_is_factorial() {
        assert_eq!(all_pairings(1).len(), 1);
        assert_eq!(all_pairings(2).len(), 2);
        assert_eq!(all_pairings(3).len(), 6);
        assert_eq!(all_pairings(4).len(), 24);
    }

    #[test]
    fn rejects_empty_inputs() {
        assert!(Ckk::new().schedule(&[], 2).is_err());
        assert!(Ckk::new().schedule(&rates(&[1.0]), 0).is_err());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Ckk::new().name(), "ckk");
    }
}
