//! The topology graph and its queries.

use std::collections::VecDeque;
use std::fmt;

use nfv_model::{Capacity, ComputeNode, NodeId};
use serde::{Deserialize, Serialize};

use crate::{LinkDelay, TopologyError};

/// What a vertex of the topology graph represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VertexKind {
    /// A computing node that can host VNFs, identified by its [`NodeId`].
    Compute(NodeId),
    /// A switch; switches forward traffic but never host VNFs (the paper
    /// assumes ample switch capacity and excludes them from `V`).
    Switch,
}

/// A vertex of the topology graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Vertex {
    kind: VertexKind,
}

impl Vertex {
    /// Creates a compute vertex for `node`.
    #[must_use]
    pub const fn compute(node: NodeId) -> Self {
        Self {
            kind: VertexKind::Compute(node),
        }
    }

    /// Creates a switch vertex.
    #[must_use]
    pub const fn switch() -> Self {
        Self {
            kind: VertexKind::Switch,
        }
    }

    /// The vertex's kind.
    #[must_use]
    pub const fn kind(&self) -> VertexKind {
        self.kind
    }

    /// The compute node id, if this is a compute vertex.
    #[must_use]
    pub const fn as_compute(&self) -> Option<NodeId> {
        match self.kind {
            VertexKind::Compute(id) => Some(id),
            VertexKind::Switch => None,
        }
    }
}

/// A connected datacenter network `G = (V, E)` of compute and switch
/// vertices with a uniform per-hop link delay.
///
/// Constructed via [`Topology::from_parts`] or, more conveniently, the
/// parametric generators in [`crate::builders`]. Construction validates that
/// the graph is connected and precomputes the all-pairs hop matrix between
/// compute nodes, so [`Topology::hop_count`] and
/// [`Topology::latency_between`] are O(1).
///
/// # Examples
///
/// ```
/// use nfv_model::{Capacity, NodeId};
/// use nfv_topology::{LinkDelay, Topology, Vertex};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // node0 - switch - node1
/// let topo = Topology::from_parts(
///     vec![
///         Vertex::compute(NodeId::new(0)),
///         Vertex::switch(),
///         Vertex::compute(NodeId::new(1)),
///     ],
///     vec![(0, 1), (1, 2)],
///     vec![Capacity::new(100.0)?, Capacity::new(200.0)?],
///     LinkDelay::from_micros(10.0),
/// )?;
/// assert_eq!(topo.hop_count(NodeId::new(0), NodeId::new(1))?, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    vertices: Vec<Vertex>,
    adjacency: Vec<Vec<usize>>,
    edge_count: usize,
    compute_nodes: Vec<ComputeNode>,
    /// Vertex index of each compute node, indexed by `NodeId`.
    compute_vertex: Vec<usize>,
    link_delay: LinkDelay,
    /// Flattened `n × n` matrix of hop counts between compute nodes.
    hops: Vec<u32>,
}

impl Topology {
    /// Builds a topology from explicit vertices and undirected edges.
    ///
    /// Compute vertices must carry node ids `0..k` in order of appearance,
    /// and `capacities` supplies `A_v` for each of them in the same order.
    /// Self-loops and duplicate edges are rejected.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::NoComputeNodes`] if no vertex is a compute node.
    /// * [`TopologyError::UnknownVertex`] if an edge endpoint is out of range.
    /// * [`TopologyError::InvalidParameter`] for self-loops, duplicate edges,
    ///   out-of-order compute ids or a capacity count mismatch.
    /// * [`TopologyError::Disconnected`] if the graph is not connected.
    pub fn from_parts(
        vertices: Vec<Vertex>,
        edges: Vec<(usize, usize)>,
        capacities: Vec<Capacity>,
        link_delay: LinkDelay,
    ) -> Result<Self, TopologyError> {
        let mut compute_vertex = Vec::new();
        for (idx, vertex) in vertices.iter().enumerate() {
            if let Some(node) = vertex.as_compute() {
                if node.as_usize() != compute_vertex.len() {
                    return Err(TopologyError::InvalidParameter {
                        reason: "compute node ids must be 0..k in order of appearance",
                    });
                }
                compute_vertex.push(idx);
            }
        }
        if compute_vertex.is_empty() {
            return Err(TopologyError::NoComputeNodes);
        }
        if capacities.len() != compute_vertex.len() {
            return Err(TopologyError::InvalidParameter {
                reason: "one capacity required per compute node",
            });
        }

        let n = vertices.len();
        let mut adjacency = vec![Vec::new(); n];
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &edges {
            if a >= n {
                return Err(TopologyError::UnknownVertex { index: a });
            }
            if b >= n {
                return Err(TopologyError::UnknownVertex { index: b });
            }
            if a == b {
                return Err(TopologyError::InvalidParameter {
                    reason: "self-loop edge",
                });
            }
            let key = (a.min(b), a.max(b));
            if !seen.insert(key) {
                return Err(TopologyError::InvalidParameter {
                    reason: "duplicate edge",
                });
            }
            adjacency[a].push(b);
            adjacency[b].push(a);
        }

        let compute_nodes: Vec<ComputeNode> = capacities
            .into_iter()
            .enumerate()
            .map(|(i, cap)| ComputeNode::new(NodeId::new(i as u32), cap))
            .collect();

        let topo = Self {
            vertices,
            adjacency,
            edge_count: edges.len(),
            compute_nodes,
            compute_vertex,
            link_delay,
            hops: Vec::new(),
        };
        if !topo.is_connected() {
            return Err(TopologyError::Disconnected);
        }
        Ok(topo.with_hop_matrix())
    }

    fn with_hop_matrix(mut self) -> Self {
        let k = self.compute_nodes.len();
        let mut hops = vec![0u32; k * k];
        for (i, &start) in self.compute_vertex.iter().enumerate() {
            let dist = self.bfs_distances(start);
            for (j, &target) in self.compute_vertex.iter().enumerate() {
                hops[i * k + j] = dist[target].expect("graph is connected");
            }
        }
        self.hops = hops;
        self
    }

    fn bfs_distances(&self, start: usize) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.vertices.len()];
        dist[start] = Some(0);
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            let d = dist[v].expect("queued vertices have distances");
            for &next in &self.adjacency[v] {
                if dist[next].is_none() {
                    dist[next] = Some(d + 1);
                    queue.push_back(next);
                }
            }
        }
        dist
    }

    /// The computing nodes of the topology, ordered by [`NodeId`].
    #[must_use]
    pub fn compute_nodes(&self) -> &[ComputeNode] {
        &self.compute_nodes
    }

    /// Looks up a compute node by id.
    #[must_use]
    pub fn node(&self, id: NodeId) -> Option<&ComputeNode> {
        self.compute_nodes.get(id.as_usize())
    }

    /// Total number of vertices (compute + switch).
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of switch vertices.
    #[must_use]
    pub fn switch_count(&self) -> usize {
        self.vertices.len() - self.compute_nodes.len()
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The uniform per-hop link delay `L` of this fabric.
    #[must_use]
    pub fn link_delay(&self) -> LinkDelay {
        self.link_delay
    }

    /// Whether every vertex is reachable from every other. Construction
    /// guarantees this; exposed for diagnostics on hand-built graphs.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.vertices.is_empty() {
            return false;
        }
        self.bfs_distances(0).iter().all(Option::is_some)
    }

    /// Number of links on a shortest path between two compute nodes.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`] if either node is not in this
    /// topology.
    pub fn hop_count(&self, a: NodeId, b: NodeId) -> Result<usize, TopologyError> {
        let k = self.compute_nodes.len();
        let (i, j) = (a.as_usize(), b.as_usize());
        if i >= k {
            return Err(TopologyError::UnknownNode { node: a });
        }
        if j >= k {
            return Err(TopologyError::UnknownNode { node: b });
        }
        Ok(self.hops[i * k + j] as usize)
    }

    /// Communication latency between two compute nodes: the per-hop delay
    /// accumulated over a shortest path. Zero when `a == b`
    /// (intra-server processing, Fig. 1(b) of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`] if either node is unknown.
    pub fn latency_between(&self, a: NodeId, b: NodeId) -> Result<LinkDelay, TopologyError> {
        Ok(self.link_delay.over_hops(self.hop_count(a, b)?))
    }

    /// Largest shortest-path hop count between any pair of compute nodes.
    #[must_use]
    pub fn diameter_hops(&self) -> usize {
        self.hops.iter().copied().max().unwrap_or(0) as usize
    }

    /// Total capacity over all compute nodes.
    #[must_use]
    pub fn total_capacity(&self) -> Capacity {
        self.compute_nodes.iter().map(|n| n.capacity()).sum()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology: {} compute + {} switch vertices, {} edges, L={}",
            self.compute_nodes.len(),
            self.switch_count(),
            self.edge_count,
            self.link_delay
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(v: f64) -> Capacity {
        Capacity::new(v).unwrap()
    }

    fn line3() -> Topology {
        Topology::from_parts(
            vec![
                Vertex::compute(NodeId::new(0)),
                Vertex::compute(NodeId::new(1)),
                Vertex::compute(NodeId::new(2)),
            ],
            vec![(0, 1), (1, 2)],
            vec![cap(10.0), cap(20.0), cap(30.0)],
            LinkDelay::from_micros(10.0),
        )
        .unwrap()
    }

    #[test]
    fn rejects_empty_and_pure_switch_graphs() {
        let err = Topology::from_parts(vec![], vec![], vec![], LinkDelay::ZERO).unwrap_err();
        assert_eq!(err, TopologyError::NoComputeNodes);
        let err = Topology::from_parts(vec![Vertex::switch()], vec![], vec![], LinkDelay::ZERO)
            .unwrap_err();
        assert_eq!(err, TopologyError::NoComputeNodes);
    }

    #[test]
    fn rejects_disconnected_graph() {
        let err = Topology::from_parts(
            vec![
                Vertex::compute(NodeId::new(0)),
                Vertex::compute(NodeId::new(1)),
            ],
            vec![],
            vec![cap(1.0), cap(1.0)],
            LinkDelay::ZERO,
        )
        .unwrap_err();
        assert_eq!(err, TopologyError::Disconnected);
    }

    #[test]
    fn rejects_bad_edges() {
        let verts = vec![
            Vertex::compute(NodeId::new(0)),
            Vertex::compute(NodeId::new(1)),
        ];
        let caps = vec![cap(1.0), cap(1.0)];
        assert_eq!(
            Topology::from_parts(verts.clone(), vec![(0, 5)], caps.clone(), LinkDelay::ZERO)
                .unwrap_err(),
            TopologyError::UnknownVertex { index: 5 }
        );
        assert!(matches!(
            Topology::from_parts(verts.clone(), vec![(0, 0)], caps.clone(), LinkDelay::ZERO)
                .unwrap_err(),
            TopologyError::InvalidParameter { .. }
        ));
        assert!(matches!(
            Topology::from_parts(verts, vec![(0, 1), (1, 0)], caps, LinkDelay::ZERO).unwrap_err(),
            TopologyError::InvalidParameter { .. }
        ));
    }

    #[test]
    fn rejects_out_of_order_node_ids() {
        let err = Topology::from_parts(
            vec![
                Vertex::compute(NodeId::new(1)),
                Vertex::compute(NodeId::new(0)),
            ],
            vec![(0, 1)],
            vec![cap(1.0), cap(1.0)],
            LinkDelay::ZERO,
        )
        .unwrap_err();
        assert!(matches!(err, TopologyError::InvalidParameter { .. }));
    }

    #[test]
    fn rejects_capacity_count_mismatch() {
        let err = Topology::from_parts(
            vec![Vertex::compute(NodeId::new(0))],
            vec![],
            vec![cap(1.0), cap(2.0)],
            LinkDelay::ZERO,
        )
        .unwrap_err();
        assert!(matches!(err, TopologyError::InvalidParameter { .. }));
    }

    #[test]
    fn hop_counts_on_a_line() {
        let topo = line3();
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        assert_eq!(topo.hop_count(a, a).unwrap(), 0);
        assert_eq!(topo.hop_count(a, b).unwrap(), 1);
        assert_eq!(topo.hop_count(a, c).unwrap(), 2);
        assert_eq!(topo.hop_count(c, a).unwrap(), 2);
        assert_eq!(topo.diameter_hops(), 2);
    }

    #[test]
    fn latency_scales_with_hops() {
        let topo = line3();
        let l = topo
            .latency_between(NodeId::new(0), NodeId::new(2))
            .unwrap();
        assert!((l.micros() - 20.0).abs() < 1e-9);
        assert_eq!(
            topo.latency_between(NodeId::new(1), NodeId::new(1))
                .unwrap(),
            LinkDelay::ZERO
        );
    }

    #[test]
    fn unknown_node_queries_error() {
        let topo = line3();
        assert_eq!(
            topo.hop_count(NodeId::new(0), NodeId::new(9)).unwrap_err(),
            TopologyError::UnknownNode {
                node: NodeId::new(9)
            }
        );
        assert!(topo.node(NodeId::new(9)).is_none());
    }

    #[test]
    fn totals_and_counts() {
        let topo = line3();
        assert_eq!(topo.vertex_count(), 3);
        assert_eq!(topo.switch_count(), 0);
        assert_eq!(topo.edge_count(), 2);
        assert_eq!(topo.total_capacity().value(), 60.0);
    }

    #[test]
    fn switches_route_but_do_not_host() {
        // node0 - switch - node1
        let topo = Topology::from_parts(
            vec![
                Vertex::compute(NodeId::new(0)),
                Vertex::switch(),
                Vertex::compute(NodeId::new(1)),
            ],
            vec![(0, 1), (1, 2)],
            vec![cap(1.0), cap(1.0)],
            LinkDelay::from_micros(5.0),
        )
        .unwrap();
        assert_eq!(topo.compute_nodes().len(), 2);
        assert_eq!(topo.switch_count(), 1);
        assert_eq!(topo.hop_count(NodeId::new(0), NodeId::new(1)).unwrap(), 2);
    }

    #[test]
    fn display_summarizes_shape() {
        let s = line3().to_string();
        assert!(s.contains("3 compute") && s.contains("2 edges"));
    }
}
