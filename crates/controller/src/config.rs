//! Controller policies and tuning knobs.

use nfv_model::VnfId;

/// What to do when an arrival cannot be admitted without driving some
/// instance of its chain to `ρ ≥ 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum ShedPolicy {
    /// Refuse the arriving request (classic admission control); the
    /// default.
    #[default]
    RejectArrival,
    /// Try once per saturated hop to evict the largest-rate request from
    /// the chosen instance, admitting the newcomer if the eviction frees
    /// enough headroom *and* strictly lowers the instance's merged rate;
    /// otherwise fall back to rejecting the arrival. Evicted requests
    /// leave the whole system and are counted as shed.
    EvictLargest,
}

/// Bounds on a periodic re-optimization pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReoptConfig {
    /// Hysteresis: the relative predicted-latency gain
    /// `(L_now − L_target) / L_now` a full re-balance must promise before
    /// any migration is performed. `0.0` re-balances on every tick.
    pub min_gain: f64,
    /// Maximum number of request migrations applied per tick. When the
    /// RCKK plan exceeds the budget, the moves with the greatest marginal
    /// predicted-latency reduction are chosen greedily. A budget covering
    /// the whole plan (e.g. `usize::MAX`) adopts the full RCKK assignment
    /// (the "offline oracle").
    pub max_migrations: usize,
}

impl ReoptConfig {
    /// A bounded default: re-balance on a predicted gain of at least 1%,
    /// moving at most 8 requests per tick.
    #[must_use]
    pub fn bounded() -> Self {
        Self {
            min_gain: 0.01,
            max_migrations: 8,
        }
    }

    /// The unbounded oracle: adopt the freshly computed RCKK assignment
    /// wholesale on every tick.
    #[must_use]
    pub fn oracle() -> Self {
        Self {
            min_gain: 0.0,
            max_migrations: usize::MAX,
        }
    }
}

/// Complete controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ControllerConfig {
    /// Load-shedding behaviour on saturated arrivals.
    pub shed: ShedPolicy,
    /// Re-optimization policy; `None` ignores [`ReoptimizeTick`] events
    /// (pure online dispatch).
    ///
    /// [`ReoptimizeTick`]: nfv_workload::churn::ChurnEvent::ReoptimizeTick
    pub reopt: Option<ReoptConfig>,
}

impl ControllerConfig {
    /// Pure online least-loaded dispatch: no re-optimization, strict
    /// admission control.
    #[must_use]
    pub fn online_only() -> Self {
        Self {
            shed: ShedPolicy::RejectArrival,
            reopt: None,
        }
    }

    /// Online dispatch plus bounded periodic re-optimization
    /// ([`ReoptConfig::bounded`]).
    #[must_use]
    pub fn periodic_reopt() -> Self {
        Self {
            shed: ShedPolicy::RejectArrival,
            reopt: Some(ReoptConfig::bounded()),
        }
    }

    /// Online dispatch plus full re-balancing on every tick
    /// ([`ReoptConfig::oracle`]).
    #[must_use]
    pub fn offline_oracle() -> Self {
        Self {
            shed: ShedPolicy::RejectArrival,
            reopt: Some(ReoptConfig::oracle()),
        }
    }
}

/// Why an arrival was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// Admitting the request would have driven an instance of this VNF to
    /// `ρ ≥ 1` and the shed policy could not make room.
    WouldOverload {
        /// The saturated hop of the request's chain.
        vnf: VnfId,
    },
    /// Every instance of this VNF is currently down.
    NoInstanceUp {
        /// The unavailable hop of the request's chain.
        vnf: VnfId,
    },
    /// The request's chain references a VNF the controller doesn't manage.
    UnknownVnf {
        /// The unknown hop.
        vnf: VnfId,
    },
    /// A request with the same id is already active.
    DuplicateId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_only_in_reopt() {
        assert_eq!(ControllerConfig::online_only().reopt, None);
        let bounded = ControllerConfig::periodic_reopt().reopt.unwrap();
        assert!(bounded.min_gain > 0.0);
        assert!(bounded.max_migrations < usize::MAX);
        let oracle = ControllerConfig::offline_oracle().reopt.unwrap();
        assert_eq!(oracle.min_gain, 0.0);
        assert_eq!(oracle.max_migrations, usize::MAX);
    }

    #[test]
    fn default_is_online_only() {
        assert_eq!(ControllerConfig::default(), ControllerConfig::online_only());
    }
}
