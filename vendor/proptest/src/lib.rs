//! Offline stand-in for the `proptest` crate.
//!
//! Supplies the subset this workspace's property tests use: the
//! [`proptest!`] macro over `ident in strategy` bindings, range strategies
//! for the primitive numeric types, `prop::collection::vec`, [`Just`](strategy::Just),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` and
//! `ProptestConfig::with_cases`. Cases are generated from a deterministic
//! per-test seed (an FNV-1a hash of the test's name), so failures
//! reproduce across runs. No shrinking: a failing case panics with the
//! assertion's own message.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test-case generation plumbing.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How many cases each property runs (upstream defaults to 256; the
    /// shim uses 64 to keep `cargo test` snappy — override per block with
    /// `#![proptest_config(ProptestConfig::with_cases(n))]`).
    pub const DEFAULT_CASES: u32 = 64;

    /// Per-block configuration.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: DEFAULT_CASES }
        }
    }

    /// The generator feeding strategies; deterministic per test name.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// Seeds the generator from a test's name, so every run of the
        /// same test generates the same cases.
        #[must_use]
        pub fn deterministic(test_name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in test_name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
            Self(StdRng::seed_from_u64(hash))
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::ops::{Range, RangeInclusive};

    use rand::Rng;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategies!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies.

    use std::ops::{Range, RangeInclusive};

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification for generated collections.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.0.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The imports property tests start from.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! The `prop::` namespace (`prop::collection::vec`, …).
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        // pat_param (not ident) so `mut xs in ...` bindings match too.
        fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..config.cases {
                $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                // The closure gives the body an early exit: `return Ok(())`
                // passes the case, prop_assume! returns Err(()) to skip it,
                // and prop_assert! panics, failing the whole test.
                let __case_result: ::core::result::Result<(), ()> =
                    (move || { $body ::core::result::Result::Ok(()) })();
                let _ = __case_result;
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property; failure fails the test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property; failure fails the test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property; failure fails the test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_hold(x in 1.0..2.0f64, n in 3usize..9) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vec_sizes_hold(xs in prop::collection::vec(0.0..1.0f64, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            for x in &xs {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_is_respected(x in 0.0..1.0f64) {
            prop_assert!(x.is_finite());
        }
    }

    #[test]
    fn just_yields_constant() {
        let mut rng = crate::test_runner::TestRng::deterministic("just");
        let s = Just(41);
        assert_eq!(s.generate(&mut rng), 41);
    }
}
