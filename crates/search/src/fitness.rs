//! The balanced packing/latency objective the searcher minimizes.

use nfv_model::NodeId;
use nfv_placement::PlacementProblem;
use serde::{Deserialize, Serialize};

/// Weights of the scalarized objective. Both secondary weights keep the
/// node-count term dominant: `balance` < 1, and the link term is the
/// *mean* inter-node transition count per chain — bounded by the chain
/// length, not the request count — so with `link_delay · max_hops` < 1
/// improving the objective never pays for an extra node in service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitnessWeights {
    /// Cost per *mean* inter-node transition along a service chain (the
    /// `L` of Eq. (16), here in objective units rather than seconds).
    pub link_delay: f64,
    /// Weight of the utilization-balance term `1 − Eq. (13)`.
    pub balance: f64,
    /// Weight of the peak-utilization term (the hottest node's
    /// utilization). Zero by default — the offline searcher reproduces the
    /// paper's consolidation objective exactly — and raised by the
    /// controller's background refiner, for which a layout that packs one
    /// node to the brim costs admission headroom and queueing delay that
    /// Eq. (13) cannot see. Above 1.0 this term can outbid switching off
    /// a node, deliberately: that is the refiner's consolidation guard.
    pub spread: f64,
}

impl Default for FitnessWeights {
    fn default() -> Self {
        Self {
            link_delay: 0.02,
            balance: 0.5,
            spread: 0.0,
        }
    }
}

/// The searcher's objective for a *checked* assignment, lower is better:
///
/// ```text
/// nodes_in_service                    (Eq. (14), dominant)
///   + balance · (1 − avg_utilization) (Eq. (13), tie-break)
///   + link_delay · mean_chain inter-node transitions (Eq. (16) link term)
///   + spread · max_utilization        (refiner headroom guard, 0 offline)
/// ```
///
/// The link term averages over chains (it is *not* the raw transition
/// sum): experiment instances carry one chain per request, and a summed
/// term would grow with load until colocation outbids switching off a
/// node, inverting the paper's Eq. (14)-first lexicographic intent.
///
/// Infeasible assignments are also scored — the search's repair loop
/// needs a gradient — but always worse than any feasible one: they pay
/// the full node count plus one, plus the relative capacity overflow.
///
/// # Panics
///
/// Panics if `assignment` references a node outside the problem or its
/// length differs from the VNF count; searcher genomes are constructed
/// in-range by design (use [`nfv_placement::Placement::validate`] for
/// untrusted input).
#[must_use]
pub fn objective(
    problem: &PlacementProblem,
    assignment: &[NodeId],
    weights: &FitnessWeights,
) -> f64 {
    assert_eq!(
        assignment.len(),
        problem.vnfs().len(),
        "assignment covers every VNF"
    );
    let mut load = vec![0.0f64; problem.nodes().len()];
    for (vnf, node) in problem.vnfs().iter().zip(assignment) {
        load[node.as_usize()] += vnf.total_demand().value();
    }
    let mut nodes_in_service = 0usize;
    let mut utilization_sum = 0.0f64;
    let mut max_utilization = 0.0f64;
    let mut overflow = 0.0f64;
    let mut capacity_sum = 0.0f64;
    for (node, &demand) in problem.nodes().iter().zip(&load) {
        let capacity = node.capacity().value();
        capacity_sum += capacity;
        if demand > 0.0 {
            nodes_in_service += 1;
            if capacity > 0.0 {
                let utilization = (demand / capacity).min(1.0);
                utilization_sum += utilization;
                max_utilization = max_utilization.max(utilization);
            }
        }
        // Same tolerance as the placement validator.
        if demand > capacity * (1.0 + 1e-9) + 1e-9 {
            overflow += demand - capacity;
        }
    }
    let average_utilization = if nodes_in_service == 0 {
        0.0
    } else {
        utilization_sum / nodes_in_service as f64
    };
    let mut transitions = 0u64;
    let mut chain_count = 0u64;
    for chain in problem.chains() {
        let hops = chain.as_slice();
        transitions += hops
            .windows(2)
            .filter(|pair| assignment[pair[0].as_usize()] != assignment[pair[1].as_usize()])
            .count() as u64;
        chain_count += 1;
    }
    let mean_transitions = if chain_count == 0 {
        0.0
    } else {
        transitions as f64 / chain_count as f64
    };
    let mut fitness = nodes_in_service as f64
        + weights.balance * (1.0 - average_utilization)
        + weights.link_delay * mean_transitions
        + weights.spread * max_utilization;
    if overflow > 0.0 {
        // Strictly dominates every feasible score — bounded by |V| plus
        // the secondary terms, each of which multiplies a quantity in
        // [0, chain length] — and grows with the violation, so repair has
        // a slope.
        fitness += problem.nodes().len() as f64
            + 1.0
            + weights.balance.abs()
            + weights.spread.abs()
            + overflow / capacity_sum.max(1.0);
    }
    fitness
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_model::{
        Capacity, ComputeNode, Demand, ServiceChain, ServiceRate, Vnf, VnfId, VnfKind,
    };

    fn problem(caps: &[f64], demands: &[f64], chains: Vec<ServiceChain>) -> PlacementProblem {
        let nodes = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| ComputeNode::new(NodeId::new(i as u32), Capacity::new(c).unwrap()))
            .collect();
        let vnfs = demands
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                Vnf::builder(VnfId::new(i as u32), VnfKind::Custom(i as u16))
                    .demand_per_instance(Demand::new(d).unwrap())
                    .service_rate(ServiceRate::new(100.0).unwrap())
                    .build()
                    .unwrap()
            })
            .collect();
        PlacementProblem::with_chains(nodes, vnfs, chains).unwrap()
    }

    fn nid(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn fewer_nodes_always_wins() {
        let p = problem(&[100.0, 100.0], &[40.0, 40.0], vec![]);
        let w = FitnessWeights::default();
        let packed = objective(&p, &[nid(0), nid(0)], &w);
        let spread = objective(&p, &[nid(0), nid(1)], &w);
        assert!(packed < spread, "{packed} vs {spread}");
    }

    #[test]
    fn chain_colocation_breaks_ties() {
        let chain = ServiceChain::new(vec![VnfId::new(0), VnfId::new(1)]).unwrap();
        let p = problem(&[50.0, 50.0], &[40.0, 40.0], vec![chain]);
        let w = FitnessWeights::default();
        // Both layouts use two nodes; the chain crosses nodes either way
        // here, so compare against a colocated variant on a roomier node.
        let roomy = problem(
            &[100.0, 100.0],
            &[40.0, 40.0],
            vec![ServiceChain::new(vec![VnfId::new(0), VnfId::new(1)]).unwrap()],
        );
        let colocated = objective(&roomy, &[nid(0), nid(0)], &w);
        let split = objective(&roomy, &[nid(0), nid(1)], &w);
        assert!(colocated < split);
        // And on the tight instance the split is forced but still scored.
        assert!(objective(&p, &[nid(0), nid(1)], &w).is_finite());
    }

    #[test]
    fn infeasible_scores_worse_than_any_feasible_layout() {
        let p = problem(&[100.0, 100.0], &[80.0, 80.0], vec![]);
        let w = FitnessWeights::default();
        let feasible = objective(&p, &[nid(0), nid(1)], &w);
        let overloaded = objective(&p, &[nid(0), nid(0)], &w);
        assert!(overloaded > feasible + 1.0);
    }
}
