//! VNF replica splitting.
//!
//! The paper co-locates all `M_f` instances of a VNF on one node (Eq. (2))
//! and handles VNFs too big for any node by "plac\[ing\] some replicas of
//! the VNF on different nodes, and regard\[ing\] each replica as a new
//! VNF" (§III.A). This module implements that preprocessing: every VNF
//! whose total demand exceeds a budget is split into replica VNFs with
//! fresh ids, its instances divided between them, and its requests dealt
//! across the replicas in proportion to their instance counts — so the
//! rewritten scenario satisfies all the structural invariants of the
//! original model and any [`crate::Scenario`] consumer works unchanged.

use std::collections::HashMap;

use nfv_model::{Demand, Request, ServiceChain, Vnf, VnfId};

use crate::{Scenario, WorkloadError};

/// Records how an original scenario's VNFs map to the rewritten one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicaMap {
    /// For each original VNF, the replica ids that now carry its load
    /// (a single id if the VNF was not split).
    replicas: HashMap<VnfId, Vec<VnfId>>,
}

impl ReplicaMap {
    /// The rewritten ids serving an original VNF.
    #[must_use]
    pub fn replicas_of(&self, original: VnfId) -> &[VnfId] {
        self.replicas.get(&original).map_or(&[], Vec::as_slice)
    }

    /// Whether the original VNF was split into more than one replica.
    #[must_use]
    pub fn was_split(&self, original: VnfId) -> bool {
        self.replicas_of(original).len() > 1
    }

    /// Number of original VNFs tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }
}

/// Splits every VNF whose total demand exceeds `max_per_vnf` into replica
/// VNFs that each fit, rewriting requests to use exactly one replica.
///
/// Instances are divided as evenly as possible; each request keeps its
/// chain order but references the replica it was dealt to. The returned
/// scenario is fully validated (every replica used, Eq. (3) preserved).
///
/// # Errors
///
/// * [`WorkloadError::InvalidParameter`] if `max_per_vnf` is not positive,
///   or some VNF cannot be split (a single instance already exceeds the
///   budget, or there are fewer instances than required replicas).
/// * Propagates validation failures from the rewritten scenario.
///
/// # Examples
///
/// ```
/// use nfv_model::Demand;
/// use nfv_workload::{replicate, ScenarioBuilder};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scenario = ScenarioBuilder::new().vnfs(5).requests(60).seed(3).build()?;
/// let budget = Demand::new(200.0)?;
/// let (rewritten, map) = replicate::split_oversized(&scenario, budget)?;
/// // Every rewritten VNF fits the budget.
/// assert!(rewritten.vnfs().iter().all(|v| v.total_demand().value() <= 200.0));
/// assert_eq!(map.len(), scenario.vnfs().len());
/// # Ok(())
/// # }
/// ```
pub fn split_oversized(
    scenario: &Scenario,
    max_per_vnf: Demand,
) -> Result<(Scenario, ReplicaMap), WorkloadError> {
    let budget = max_per_vnf.value();
    if budget <= 0.0 {
        return Err(WorkloadError::InvalidParameter {
            reason: "replica budget must be positive",
        });
    }

    let mut new_vnfs: Vec<Vnf> = Vec::new();
    let mut map = ReplicaMap::default();
    // For each original VNF: the replica ids and per-replica instance
    // counts, used to deal requests below.
    let mut plan: HashMap<VnfId, Vec<(VnfId, u32)>> = HashMap::new();

    for vnf in scenario.vnfs() {
        let total = vnf.total_demand().value();
        let per_instance = vnf.demand_per_instance().value();
        let replicas_needed = if total <= budget {
            1
        } else {
            if per_instance > budget {
                return Err(WorkloadError::InvalidParameter {
                    reason: "a single service instance exceeds the replica budget",
                });
            }
            (total / budget).ceil() as u32
        };
        if replicas_needed > vnf.instances() {
            return Err(WorkloadError::InvalidParameter {
                reason: "fewer instances than required replicas",
            });
        }

        let base = vnf.instances() / replicas_needed;
        let extra = vnf.instances() % replicas_needed;
        let mut ids = Vec::new();
        let mut split = Vec::new();
        for r in 0..replicas_needed {
            let instances = base + u32::from(r < extra);
            let id = VnfId::new(new_vnfs.len() as u32);
            let replica = Vnf::builder(id, vnf.kind())
                .demand_per_instance(vnf.demand_per_instance())
                .instances(instances)
                .service_rate(vnf.service_rate())
                .build()?;
            ids.push(id);
            split.push((id, instances));
            new_vnfs.push(replica);
        }
        map.replicas.insert(vnf.id(), ids);
        plan.insert(vnf.id(), split);
    }

    // Deal each original VNF's users across its replicas in proportion to
    // instance counts: cycle a slot list where replica j appears once per
    // instance. Deterministic in request-id order.
    let mut dealt: HashMap<VnfId, Vec<VnfId>> = HashMap::new(); // original -> per-user replica
    for vnf in scenario.vnfs() {
        let split = &plan[&vnf.id()];
        let slots: Vec<VnfId> = split
            .iter()
            .flat_map(|&(id, instances)| std::iter::repeat_n(id, instances as usize))
            .collect();
        let users: Vec<VnfId> = scenario
            .requests_using(vnf.id())
            .enumerate()
            .map(|(i, _)| slots[i % slots.len()])
            .collect();
        dealt.insert(vnf.id(), users);
    }

    // Rewrite requests: each occurrence of an original VNF becomes the
    // replica this request was dealt.
    let mut user_cursor: HashMap<VnfId, usize> = HashMap::new();
    let mut new_requests: Vec<Request> = Vec::with_capacity(scenario.requests().len());
    for request in scenario.requests() {
        let vnfs: Vec<VnfId> = request
            .chain()
            .iter()
            .map(|original| {
                let cursor = user_cursor.entry(original).or_insert(0);
                let replica = dealt[&original][*cursor];
                *cursor += 1;
                replica
            })
            .collect();
        new_requests.push(Request::new(
            request.id(),
            ServiceChain::new(vnfs)?,
            request.arrival_rate(),
            request.delivery(),
        ));
    }

    let rewritten = Scenario::from_parts(new_vnfs, new_requests)?;
    Ok((rewritten, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstancePolicy, ScenarioBuilder};

    fn demand(v: f64) -> Demand {
        Demand::new(v).unwrap()
    }

    fn base_scenario() -> Scenario {
        ScenarioBuilder::new()
            .vnfs(6)
            .requests(120)
            .instance_policy(InstancePolicy::PerUsers {
                requests_per_instance: 5,
            })
            .seed(9)
            .build()
            .unwrap()
    }

    #[test]
    fn generous_budget_is_identity_up_to_ids() {
        let scenario = base_scenario();
        let budget = demand(scenario.total_demand().value());
        let (rewritten, map) = split_oversized(&scenario, budget).unwrap();
        assert_eq!(rewritten.vnfs().len(), scenario.vnfs().len());
        assert!(scenario.vnfs().iter().all(|v| !map.was_split(v.id())));
        assert_eq!(rewritten.total_demand(), scenario.total_demand());
    }

    #[test]
    fn oversized_vnfs_split_and_everything_fits() {
        let scenario = base_scenario();
        let max_single = scenario
            .vnfs()
            .iter()
            .map(|v| v.total_demand().value())
            .fold(0.0f64, f64::max);
        let budget = demand(max_single / 2.5);
        let (rewritten, map) = split_oversized(&scenario, budget).unwrap();
        assert!(rewritten
            .vnfs()
            .iter()
            .all(|v| v.total_demand().value() <= budget.value() + 1e-9));
        assert!(scenario.vnfs().iter().any(|v| map.was_split(v.id())));
        rewritten.validate().unwrap();
    }

    #[test]
    fn demand_and_instances_are_conserved() {
        let scenario = base_scenario();
        let budget = demand(scenario.total_demand().value() / 10.0);
        let Ok((rewritten, map)) = split_oversized(&scenario, budget) else {
            return; // budget too tight for this draw; covered elsewhere
        };
        assert!((rewritten.total_demand().value() - scenario.total_demand().value()).abs() < 1e-9);
        for vnf in scenario.vnfs() {
            let total_instances: u32 = map
                .replicas_of(vnf.id())
                .iter()
                .map(|&r| rewritten.vnf(r).unwrap().instances())
                .sum();
            assert_eq!(total_instances, vnf.instances());
        }
    }

    #[test]
    fn users_are_conserved_per_original_vnf() {
        let scenario = base_scenario();
        let max_single = scenario
            .vnfs()
            .iter()
            .map(|v| v.total_demand().value())
            .fold(0.0f64, f64::max);
        let (rewritten, map) = split_oversized(&scenario, demand(max_single / 2.0)).unwrap();
        for vnf in scenario.vnfs() {
            let original_users = scenario.users_of(vnf.id());
            let replica_users: usize = map
                .replicas_of(vnf.id())
                .iter()
                .map(|&r| rewritten.users_of(r))
                .sum();
            assert_eq!(original_users, replica_users, "{}", vnf.id());
        }
        // Chain lengths unchanged.
        for (old, new) in scenario.requests().iter().zip(rewritten.requests()) {
            assert_eq!(old.chain().len(), new.chain().len());
            assert_eq!(old.arrival_rate(), new.arrival_rate());
        }
    }

    #[test]
    fn rejects_impossible_budgets() {
        let scenario = base_scenario();
        assert!(split_oversized(&scenario, demand(0.0)).is_err());
        // Smaller than any single instance: unsplittable.
        let min_instance = scenario
            .vnfs()
            .iter()
            .map(|v| v.demand_per_instance().value())
            .fold(f64::INFINITY, f64::min);
        assert!(split_oversized(&scenario, demand(min_instance / 2.0)).is_err());
    }

    #[test]
    fn replica_map_reports_structure() {
        let scenario = base_scenario();
        let max_single = scenario
            .vnfs()
            .iter()
            .map(|v| v.total_demand().value())
            .fold(0.0f64, f64::max);
        let (_, map) = split_oversized(&scenario, demand(max_single / 2.0)).unwrap();
        assert_eq!(map.len(), scenario.vnfs().len());
        assert!(!map.is_empty());
        assert!(map.replicas_of(VnfId::new(999)).is_empty());
    }
}
