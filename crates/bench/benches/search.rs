//! Criterion micro-benchmarks for the anytime metaheuristic search: the
//! cost of one GA/PSO generation (one full population evaluation) and of
//! a refiner-sized burst, on the instance shapes the controller's
//! background refiner actually sees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfv_bench::placement_problem;
use nfv_search::{SearchConfig, SearchRun};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("search");
    for &(nodes, vnfs, requests) in &[(10usize, 15usize, 200usize), (20, 30, 500)] {
        let problem = placement_problem(nodes, vnfs, requests, 7);
        for config in [SearchConfig::ga(42), SearchConfig::pso(42)] {
            // One generation: a full population evaluation through
            // selection/velocity, repair and the fitness function.
            group.bench_with_input(
                BenchmarkId::new(
                    &format!("{}-generation", config.engine.name()),
                    format!("{nodes}n-{vnfs}f-{requests}r"),
                ),
                &problem,
                |b, problem| {
                    let mut run = SearchRun::new(problem, &config).expect("valid fixture");
                    b.iter(|| run.step());
                },
            );
        }
        // A refiner burst: what one quiet controller tick pays, seeding
        // included (the refiner re-seeds from the live assignment each
        // tick rather than stepping a long-lived run).
        let config = SearchConfig::ga(42);
        group.bench_with_input(
            BenchmarkId::new(
                "ga-refiner-burst-12",
                format!("{nodes}n-{vnfs}f-{requests}r"),
            ),
            &problem,
            |b, problem| {
                b.iter(|| {
                    let mut run = SearchRun::new(problem, &config).expect("valid fixture");
                    for _ in 0..12 {
                        run.step();
                    }
                    run.best_fitness()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
