//! A hierarchical timer wheel: the due-time index behind [`RetryQueue`].
//!
//! The retry queue used to keep every pending re-offer in one global
//! `BTreeMap` keyed by `(due_time.to_bits(), seq)`. That is simple and
//! totally ordered, but every `pop_due` probe pays an `O(log n)` descent
//! over the *whole* pending set even when nothing is due — and with
//! hundreds of tenant controllers multiplexed in one process, the probes
//! vastly outnumber the pops. The wheel turns the common "nothing due
//! yet" probe into `O(1)`: entries are hashed by quantized due *tick*
//! into 64-slot levels of geometrically coarser resolution, and only the
//! slots the virtual clock actually crosses are ever touched.
//!
//! # Ordering contract
//!
//! The wheel is **pop-order-identical** to the `BTreeMap` it replaced,
//! bit for bit, including exact `(due.to_bits(), seq)` ties. Two
//! mechanisms guarantee it:
//!
//! * advancing the wheel to tick `T = floor(upto / resolution)` moves
//!   *every* entry with tick ≤ T into the `ready` map — and an entry's
//!   due time `d` satisfies `d ≤ upto ⇒ tick(d) ≤ T`, so everything
//!   possibly due is in `ready` before any pop;
//! * `ready` is itself keyed by `(due.to_bits(), seq)`, so the minimum
//!   of `ready` over the `d ≤ upto` subset *is* the global minimum the
//!   oracle would pop. Entries scheduled at or before the current tick
//!   (a retry re-scheduled mid-drain) insert straight into `ready`,
//!   preserving the order under interleaved schedule/pop sequences.
//!
//! The equivalence is pinned by a property test against the retained
//! `BTreeMap` oracle (see `retry.rs`).
//!
//! Quantization never reorders anything: the tick only decides *when* an
//! entry migrates into `ready`, while the pop itself always re-checks
//! the exact `f64` due time against `upto`.
//!
//! # Cost model
//!
//! `advance` walks virtual time one tick (`1/16 s`) at a time, so a run
//! pays `O(horizon / resolution)` empty-slot checks plus one cascade per
//! entry per level crossed — both trivially small next to the event
//! work. Entries further out than the wheel's span (`64^4` ticks ≈ 12
//! virtual days) wait in a far-future overflow map and are pulled in
//! logarithmically, so a pathological backoff cannot make the wheel
//! step for ever; and when the wheel holds nothing at all, `advance`
//! jumps to the target tick in `O(1)`.

use std::collections::BTreeMap;

/// Seconds of virtual time per wheel tick.
const RESOLUTION: f64 = 1.0 / 16.0;
/// log2 of the slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Slot index mask.
const MASK: u64 = (SLOTS as u64) - 1;
/// Hierarchy depth: the wheel spans `64^LEVELS` ticks before the
/// overflow map takes over.
const LEVELS: usize = 4;

/// One scheduled entry: the oracle key it must pop under, plus the
/// caller's payload. The due time is recoverable from the key
/// (`f64::from_bits(key.0)`), so it is not stored twice.
#[derive(Debug, Clone, PartialEq)]
struct Scheduled<T> {
    key: (u64, u64),
    value: T,
}

/// The wheel. Generic over the payload so the structure stays a pure
/// due-time index; [`RetryQueue`](crate::retry) instantiates it with its
/// entry type.
///
/// Invariants:
///
/// * every entry's key is `(due.to_bits(), seq)` with `due` finite and
///   non-negative (the caller's domain check, same as the oracle's);
/// * after `advance(T)`, no entry with quantized tick ≤ `T` remains in
///   a level slot or the overflow map — they are all in `ready`;
/// * `len` counts entries across `ready`, the levels and `overflow`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TimerWheel<T> {
    /// `levels[l][s]`: entries whose tick lands in slot `s` of level `l`.
    levels: Vec<Vec<Vec<Scheduled<T>>>>,
    /// Expired entries in oracle order, awaiting a `pop_due` that covers
    /// their exact due time.
    ready: BTreeMap<(u64, u64), T>,
    /// Entries beyond the wheel's span, keyed like `ready`.
    overflow: BTreeMap<(u64, u64), T>,
    /// The tick the wheel has fully cascaded up to.
    current: u64,
    /// Entries residing in the level slots (not `ready`/`overflow`).
    in_levels: usize,
    /// Total entries.
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self {
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            ready: BTreeMap::new(),
            overflow: BTreeMap::new(),
            current: 0,
            in_levels: 0,
            len: 0,
        }
    }
}

impl<T> TimerWheel<T> {
    /// Total pending entries.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The quantized tick of a due time. Saturates for huge values (the
    /// `as` cast clamps), which only defers migration to `ready` — the
    /// pop still checks the exact due time.
    fn tick_of(due: f64) -> u64 {
        (due / RESOLUTION) as u64
    }

    /// Inserts an entry under its oracle key. The caller guarantees
    /// `key.0` encodes a finite, non-negative due time.
    pub(crate) fn insert(&mut self, key: (u64, u64), value: T) {
        let tick = Self::tick_of(f64::from_bits(key.0));
        self.len += 1;
        if tick <= self.current {
            // Already expired relative to the wheel position: straight
            // into `ready`, where the oracle order puts it ahead of or
            // behind its peers by `(due bits, seq)` exactly.
            self.ready.insert(key, value);
        } else {
            self.place(tick, Scheduled { key, value });
        }
    }

    /// Hashes an un-expired entry into the shallowest level whose span
    /// covers its distance from the current tick, or into the overflow
    /// map beyond the wheel's span.
    fn place(&mut self, tick: u64, entry: Scheduled<T>) {
        let delta = tick - self.current;
        for level in 0..LEVELS {
            let span_bits = SLOT_BITS * (level as u32 + 1);
            if span_bits < u64::BITS && delta >= 1u64 << span_bits {
                continue;
            }
            let slot = ((tick >> (SLOT_BITS * level as u32)) & MASK) as usize;
            self.levels[level][slot].push(entry);
            self.in_levels += 1;
            return;
        }
        self.overflow.insert(entry.key, entry.value);
    }

    /// Re-files an entry drained from a cascading slot: expired entries
    /// land in `ready`, the rest re-hash into a finer level.
    fn refile(&mut self, entry: Scheduled<T>) {
        let tick = Self::tick_of(f64::from_bits(entry.key.0));
        if tick <= self.current {
            self.ready.insert(entry.key, entry.value);
        } else {
            self.place(tick, entry);
        }
    }

    /// Advances the wheel to `target`, migrating every entry with tick
    /// ≤ `target` into `ready`. Monotone: a smaller target is a no-op.
    fn advance(&mut self, target: u64) {
        // Far-future entries whose tick the target now covers skip the
        // wheel entirely: `overflow` shares the oracle key order, so its
        // prefix is exactly the expired set.
        while let Some((&key, _)) = self.overflow.first_key_value() {
            if Self::tick_of(f64::from_bits(key.0)) > target {
                break;
            }
            let (key, value) = self.overflow.pop_first().expect("peeked");
            self.ready.insert(key, value);
        }
        while self.current < target {
            if self.in_levels == 0 {
                // Nothing left to cascade: jump. (Entries still in
                // `overflow` have ticks beyond `target` by the loop
                // above, and future inserts re-hash relative to the new
                // position.)
                self.current = target;
                return;
            }
            self.current += 1;
            let now = self.current;
            // Cascade every coarser level whose window wraps at this
            // tick, finest first, so entries migrate down level by
            // level exactly once per crossing.
            for level in 1..LEVELS {
                let span_bits = SLOT_BITS * level as u32;
                if now & ((1u64 << span_bits) - 1) != 0 {
                    break;
                }
                let slot = ((now >> span_bits) & MASK) as usize;
                let drained = std::mem::take(&mut self.levels[level][slot]);
                self.in_levels -= drained.len();
                for entry in drained {
                    self.refile(entry);
                }
            }
            let slot = (now & MASK) as usize;
            let drained = std::mem::take(&mut self.levels[0][slot]);
            self.in_levels -= drained.len();
            for entry in drained {
                self.refile(entry);
            }
        }
    }

    /// Removes and returns the entry with the smallest `(due bits, seq)`
    /// key among those due at or before `upto`, or `None`.
    pub(crate) fn pop_due(&mut self, upto: f64) -> Option<((u64, u64), T)> {
        if self.len == 0 {
            return None;
        }
        self.advance(Self::tick_of(upto));
        let (&key, _) = self.ready.first_key_value()?;
        if f64::from_bits(key.0) > upto {
            return None;
        }
        let (key, value) = self.ready.pop_first().expect("peeked");
        self.len -= 1;
        Some((key, value))
    }

    /// Every pending payload in oracle key order — so reductions over
    /// the pending set (`pending_rate`'s f64 sum) visit entries in the
    /// exact order the `BTreeMap` scan did, keeping the folded values
    /// bit-identical.
    pub(crate) fn values_sorted(&self) -> Vec<&T> {
        self.entries_sorted()
            .into_iter()
            .map(|(_, value)| value)
            .collect()
    }

    /// Every pending `(key, payload)` pair in oracle key order — the
    /// wheel's canonical export shape. Re-inserting the pairs in this
    /// order into a fresh wheel reproduces the pop order bit-exactly
    /// (the snapshot/restore path relies on this).
    pub(crate) fn entries_sorted(&self) -> Vec<(&(u64, u64), &T)> {
        let mut all: Vec<(&(u64, u64), &T)> = Vec::with_capacity(self.len);
        all.extend(self.ready.iter());
        all.extend(self.overflow.iter());
        for level in &self.levels {
            for slot in level {
                for entry in slot {
                    all.push((&entry.key, &entry.value));
                }
            }
        }
        all.sort_unstable_by_key(|(key, _)| **key);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(due: f64, seq: u64) -> (u64, u64) {
        (due.to_bits(), seq)
    }

    #[test]
    fn pops_in_due_order_across_levels() {
        let mut wheel = TimerWheel::default();
        // One entry per level distance: slot-local, one rotation out,
        // two levels out, and beyond the wheel's span (overflow).
        let dues = [
            0.5,
            RESOLUTION * 100.0,
            RESOLUTION * 10_000.0,
            RESOLUTION * 20_000_000.0,
        ];
        for (i, &due) in dues.iter().enumerate().rev() {
            wheel.insert(key(due, i as u64), i);
        }
        assert_eq!(wheel.len(), 4);
        for (i, &due) in dues.iter().enumerate() {
            assert!(wheel.pop_due(due - RESOLUTION * 0.5).is_none());
            let ((bits, seq), value) = wheel.pop_due(due).expect("due now");
            assert_eq!((f64::from_bits(bits), seq, value), (due, i as u64, i));
        }
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn same_quantum_orders_by_exact_due_then_seq() {
        let mut wheel = TimerWheel::default();
        // Three entries inside one tick quantum: exact dues order them,
        // and the exact tie (same bits) falls back to seq.
        wheel.insert(key(1.03, 0), "late");
        wheel.insert(key(1.01, 1), "early-a");
        wheel.insert(key(1.01, 2), "early-b");
        assert_eq!(wheel.pop_due(2.0).unwrap().1, "early-a");
        assert_eq!(wheel.pop_due(2.0).unwrap().1, "early-b");
        assert_eq!(wheel.pop_due(2.0).unwrap().1, "late");
    }

    #[test]
    fn interleaved_insert_after_advance_goes_to_ready() {
        let mut wheel = TimerWheel::default();
        wheel.insert(key(10.0, 0), "far");
        // Advance past 5 s, then schedule something at 3 s (a re-offer
        // computed mid-drain): it must pop before the 10 s entry.
        assert!(wheel.pop_due(5.0).is_none());
        wheel.insert(key(3.0, 1), "back-dated");
        assert_eq!(wheel.pop_due(20.0).unwrap().1, "back-dated");
        assert_eq!(wheel.pop_due(20.0).unwrap().1, "far");
    }

    #[test]
    fn empty_wheel_jumps_without_stepping() {
        let mut wheel: TimerWheel<u8> = TimerWheel::default();
        // A huge probe on an empty wheel must return instantly.
        assert!(wheel.pop_due(1e15).is_none());
        wheel.insert(key(1e15 + 1.0, 0), 7);
        assert!(wheel.pop_due(1e15).is_none());
        assert_eq!(wheel.pop_due(1e15 + 2.0).unwrap().1, 7);
    }

    #[test]
    fn values_sorted_is_key_ordered() {
        let mut wheel = TimerWheel::default();
        for (i, due) in [9.0, 1.0, 5.0, 100.0, 40_000.0].into_iter().enumerate() {
            wheel.insert(key(due, i as u64), due);
        }
        let seen: Vec<f64> = wheel.values_sorted().into_iter().copied().collect();
        assert_eq!(seen, vec![1.0, 5.0, 9.0, 100.0, 40_000.0]);
    }

    #[test]
    fn reinserting_sorted_entries_reproduces_pop_order() {
        let mut wheel = TimerWheel::default();
        for (i, due) in [9.0, 1.0, 5.0, 100.0, 40_000.0, 1.0]
            .into_iter()
            .enumerate()
        {
            wheel.insert(key(due, i as u64), i);
        }
        // Advance partway so some entries sit in `ready`.
        assert!(wheel.pop_due(2.0).is_some());
        let mut rebuilt = TimerWheel::default();
        for (k, v) in wheel.entries_sorted() {
            rebuilt.insert(*k, *v);
        }
        let mut popped = Vec::new();
        let mut expected = Vec::new();
        loop {
            match (rebuilt.pop_due(1e9), wheel.pop_due(1e9)) {
                (Some(a), Some(b)) => {
                    popped.push(a);
                    expected.push(b);
                }
                (None, None) => break,
                _ => panic!("rebuilt wheel diverged in length"),
            }
        }
        assert_eq!(popped, expected);
    }
}
