//! RCKK: the paper's reverse Karmarkar–Karp scheduling heuristic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use nfv_model::ArrivalRate;

use crate::partition::Partition;
use crate::scheduler::check_inputs;
use crate::{Schedule, Scheduler, SchedulingError};

/// **R**everse **C**omplete **K**armarkar–**K**arp — Algorithm 2 of the
/// paper.
///
/// Every request starts as an `m`-position partition `(λ_r, 0, …, 0)`. The
/// algorithm repeatedly takes the two partitions with the largest leading
/// values and combines them *in reverse order* — the largest position of
/// one against the smallest of the other — then resorts the combined vector
/// descending and normalizes it by subtracting its smallest entry. After
/// `n − 1` combinations a single partition remains; its position sets are
/// the per-instance request assignments.
///
/// Reverse pairing is what makes the differencing balanced: stacking the
/// two heaviest loads apart (instead of together, cf. [`KkForward`]) keeps
/// the spread of per-instance sums small, which directly minimizes the
/// average M/M/1 response time of Eq. (15). Complexity `O(n·m·log m +
/// n·log n)` (§IV.D).
///
/// # Examples
///
/// ```
/// use nfv_model::ArrivalRate;
/// use nfv_scheduling::{Rckk, Scheduler};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rates: Vec<ArrivalRate> =
///     [4.0, 5.0, 6.0, 7.0, 8.0].iter().map(|&v| ArrivalRate::new(v)).collect::<Result<_, _>>()?;
/// let schedule = Rckk::new().schedule(&rates, 2)?;
/// assert!(schedule.imbalance() <= 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rckk;

impl Rckk {
    /// Creates the RCKK scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for Rckk {
    fn name(&self) -> &'static str {
        "rckk"
    }

    fn schedule(
        &self,
        rates: &[ArrivalRate],
        instances: usize,
    ) -> Result<Schedule, SchedulingError> {
        differencing_schedule(rates, instances, CombineOrder::Reverse)
    }
}

/// The forward-order ablation of [`Rckk`]: combination adds the two
/// partitions position-wise without reversal (`new[i] = a[i] + b[i]`),
/// stacking heavy positions together. Exists to quantify what the paper's
/// reverse pairing contributes; expect materially worse balance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KkForward;

impl KkForward {
    /// Creates the forward-combination scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for KkForward {
    fn name(&self) -> &'static str {
        "kk-forward"
    }

    fn schedule(
        &self,
        rates: &[ArrivalRate],
        instances: usize,
    ) -> Result<Schedule, SchedulingError> {
        differencing_schedule(rates, instances, CombineOrder::Forward)
    }
}

#[derive(Clone, Copy)]
enum CombineOrder {
    Reverse,
    Forward,
}

/// Max-heap wrapper ordering partitions by their leading value
/// (Algorithm 2 keeps the `Partition_list` sorted by the 1st position).
struct ByFirst(Partition);

impl PartialEq for ByFirst {
    fn eq(&self, other: &Self) -> bool {
        self.0.first() == other.0.first()
    }
}

impl Eq for ByFirst {}

impl PartialOrd for ByFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ByFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .first()
            .partial_cmp(&other.0.first())
            .unwrap_or(Ordering::Equal)
    }
}

fn differencing_schedule(
    rates: &[ArrivalRate],
    instances: usize,
    order: CombineOrder,
) -> Result<Schedule, SchedulingError> {
    check_inputs(rates, instances)?;
    let mut heap: BinaryHeap<ByFirst> = rates
        .iter()
        .enumerate()
        .map(|(r, rate)| ByFirst(Partition::singleton(rate.value(), r, instances)))
        .collect();
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1").0;
        let b = heap.pop().expect("len > 1").0;
        let combined = match order {
            CombineOrder::Reverse => a.combine_reverse(&b),
            CombineOrder::Forward => a.combine_forward(&b),
        };
        heap.push(ByFirst(combined));
    }
    let final_partition = heap.pop().expect("at least one request").0;
    let assignment = final_partition.into_assignment(rates.len());
    Schedule::new(rates.to_vec(), assignment, instances)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rates(values: &[f64]) -> Vec<ArrivalRate> {
        values
            .iter()
            .map(|&v| ArrivalRate::new(v).unwrap())
            .collect()
    }

    #[test]
    fn two_way_kk_textbook_instance() {
        // {8,7,6,5,4}: classic KK differencing ends with difference 2,
        // i.e. subsets summing 16 and 14; the optimal 15/15 split needs
        // complete search (CKK).
        let schedule = Rckk::new()
            .schedule(&rates(&[8.0, 7.0, 6.0, 5.0, 4.0]), 2)
            .unwrap();
        let mut sums = schedule.instance_rate_sums();
        sums.sort_by(f64::total_cmp);
        assert_eq!(sums, vec![14.0, 16.0]);
        assert_eq!(schedule.imbalance(), 2.0);
    }

    #[test]
    fn three_way_balances_close_to_perfect() {
        let schedule = Rckk::new()
            .schedule(&rates(&[9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0]), 3)
            .unwrap();
        // Total 42, perfect would be 14 each; KK-style differencing should
        // come close (imbalance no more than the smallest element).
        assert!(
            schedule.imbalance() <= 3.0,
            "imbalance {}",
            schedule.imbalance()
        );
    }

    #[test]
    fn single_instance_degenerates_to_all_on_one() {
        let schedule = Rckk::new().schedule(&rates(&[3.0, 1.0]), 1).unwrap();
        assert_eq!(schedule.instance_rate_sums(), vec![4.0]);
    }

    #[test]
    fn more_instances_than_requests_leaves_spares_idle() {
        let schedule = Rckk::new().schedule(&rates(&[3.0, 1.0]), 4).unwrap();
        let sums = schedule.instance_rate_sums();
        assert_eq!(sums.iter().filter(|&&s| s > 0.0).count(), 2);
    }

    #[test]
    fn reverse_beats_forward_on_balance() {
        let input = rates(&[10.0, 9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0]);
        let reverse = Rckk::new().schedule(&input, 3).unwrap();
        let forward = KkForward::new().schedule(&input, 3).unwrap();
        assert!(
            reverse.imbalance() <= forward.imbalance(),
            "reverse {} vs forward {}",
            reverse.imbalance(),
            forward.imbalance()
        );
    }

    #[test]
    fn rejects_empty_inputs() {
        assert!(Rckk::new().schedule(&[], 2).is_err());
        assert!(Rckk::new().schedule(&rates(&[1.0]), 0).is_err());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Rckk::new().name(), "rckk");
        assert_eq!(KkForward::new().name(), "kk-forward");
    }

    proptest! {
        #[test]
        fn every_request_is_assigned_exactly_once(
            values in prop::collection::vec(0.5..100.0f64, 1..60),
            m in 1usize..8,
        ) {
            let schedule = Rckk::new().schedule(&rates(&values), m).unwrap();
            prop_assert_eq!(schedule.assignment().len(), values.len());
            prop_assert!(schedule.assignment().iter().all(|&k| k < m));
            // Conservation: instance sums add up to the total rate.
            let total: f64 = values.iter().sum();
            let sum_of_sums: f64 = schedule.instance_rate_sums().iter().sum();
            prop_assert!((total - sum_of_sums).abs() < 1e-6);
        }

        #[test]
        fn imbalance_at_most_largest_rate(
            values in prop::collection::vec(0.5..100.0f64, 2..60),
            m in 2usize..6,
        ) {
            // A classical KK property for 2-way extends empirically to the
            // reverse m-way variant on positive inputs: the final spread
            // never exceeds the largest single element.
            let schedule = Rckk::new().schedule(&rates(&values), m).unwrap();
            let max_rate = values.iter().copied().fold(0.0, f64::max);
            prop_assert!(
                schedule.imbalance() <= max_rate + 1e-9,
                "imbalance {} > max rate {}",
                schedule.imbalance(),
                max_rate
            );
        }
    }
}
