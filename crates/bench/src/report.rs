//! The `BENCH_pipeline.json` report: a typed schema with hand-rolled JSON
//! serialization and parsing.
//!
//! The workspace deliberately vendors no JSON crate, but the bench
//! pipeline's output is consumed by `ci.sh` (the overhead and throughput
//! gates) and by humans diffing committed runs — so the shape is a
//! contract worth round-tripping. [`BenchReport::to_json`] writes the
//! exact layout the `figures bench` command commits, and
//! [`BenchReport::from_json`] parses it back (tolerating arbitrary field
//! order and whitespace) through a minimal recursive-descent JSON parser.

use std::fmt;

/// Everything `figures bench` measures, in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Worker threads the host offers.
    pub host_threads: u64,
    /// Threads the parallel pass ran with.
    pub bench_threads: u64,
    /// Repetitions per placement experiment.
    pub reps_placement: u64,
    /// Repetitions per scheduling experiment.
    pub reps_scheduling: u64,
    /// Base seed of the run.
    pub seed: u64,
    /// Metaheuristic search throughput and quality.
    pub search: SearchReport,
    /// Telemetry overhead of the instrumented replay.
    pub telemetry: TelemetryReport,
    /// Replay-engine throughput on the streamed million-event trace.
    pub replay: ReplayReport,
    /// Sharded multi-tenant fleet throughput, one entry per fleet size.
    pub fleet: Vec<FleetPointBench>,
    /// Crash-recovery throughput under the seeded chaos plan.
    pub recovery: RecoveryBench,
    /// Observability-plane overhead on the fleet loop.
    pub obs: ObsBench,
    /// Wall-clock per figure, serial and parallel.
    pub figures: Vec<FigureTiming>,
    /// Sum of the serial figure timings, seconds.
    pub total_serial_seconds: f64,
    /// Sum of the parallel figure timings; `None` when the parallel pass
    /// was skipped on a single-core host.
    pub total_parallel_seconds: Option<f64>,
}

/// GA search throughput and quality vs the greedy placer.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    /// Search engine name (`ga`).
    pub engine: String,
    /// Population size.
    pub population: u64,
    /// Generations run per measurement.
    pub generations: u64,
    /// Generations per wall-clock second at one thread.
    pub generations_per_second: f64,
    /// Best objective the search reached.
    pub best_objective: f64,
    /// BFDSU's objective on the same problem; `None` if BFDSU failed.
    pub bfdsu_objective: Option<f64>,
    /// `best_objective - bfdsu_objective`; `None` if BFDSU failed.
    pub objective_delta_vs_bfdsu: Option<f64>,
}

/// Telemetry-layer overhead on the churn replay.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// How many back-to-back replays constitute one timed measurement —
    /// scaled until the plain measurement clears the floor below.
    pub replay_reps: u64,
    /// Minimum seconds a timed measurement must span to be trusted; the
    /// workload is repeated until the plain path reaches it.
    pub measurement_floor_seconds: f64,
    /// Fastest plain (untraced) measurement, seconds.
    pub replay_plain_seconds: f64,
    /// Fastest measurement through the traced path with a disabled
    /// session, seconds.
    pub replay_disabled_seconds: f64,
    /// Fastest measurement with an enabled session, seconds.
    pub replay_enabled_seconds: f64,
    /// `(disabled - plain) / plain`, percent — the price of the
    /// telemetry layer existing; gated by `ci.sh`.
    pub disabled_overhead_pct: f64,
    /// `(enabled - plain) / plain`, percent.
    pub enabled_overhead_pct: f64,
}

/// Replay-engine throughput on the streamed trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Total events in the streamed trace.
    pub events: u64,
    /// Virtual-time horizon of the trace, seconds.
    pub horizon_seconds: f64,
    /// Fastest exact per-event replay, wall-clock seconds.
    pub streamed_seconds: f64,
    /// Fastest batched replay, wall-clock seconds.
    pub batched_seconds: f64,
    /// Events per second through the exact per-event path.
    pub streamed_events_per_second: f64,
    /// Events per second through the batched path — the headline figure,
    /// gated by `ci.sh` against regression.
    pub events_per_second: f64,
    /// Requests the batched replay admitted.
    pub admitted: u64,
    /// Requests the batched replay rejected.
    pub rejected: u64,
}

/// One fleet size's sharded-loop throughput and rebalance accounting.
///
/// Events, migrations and latency are virtual-clock counters (identical
/// at any thread count); only `seconds` and `events_per_second` are
/// wall-clock measurements. The largest point's `events_per_second` is
/// gated by `ci.sh` against the committed figure.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPointBench {
    /// Tenant controllers in the fleet.
    pub tenants: u64,
    /// Shards the tenants were split over.
    pub shards: u64,
    /// Trace events the fleet processed across all shards.
    pub events: u64,
    /// Fastest wall-clock run of the whole fleet loop, seconds.
    pub seconds: f64,
    /// `events / seconds` — the fleet's throughput headline.
    pub events_per_second: f64,
    /// Completed cross-shard migrations.
    pub migrations: u64,
    /// Requests + queued retries carried across shards, summed over all
    /// migrations.
    pub migration_cost: u64,
    /// Mean virtual seconds a migrating tenant spent in transit.
    pub mean_rebalance_latency_seconds: f64,
}

/// Crash recovery measured on the chaos fleet point: the same fleet run
/// undisturbed and disturbed by a seeded plan of recoverable faults
/// (worker panics, tenant crashes, channel drops/dups, state
/// corruption), repaired through epoch checkpoints + event replay.
///
/// Counters and `byte_identical` are deterministic; only the wall-clock
/// fields vary. `faulted_events_per_second` — throughput *with* the
/// checkpoint/recovery machinery doing real work — is gated by `ci.sh`
/// relative to the undisturbed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryBench {
    /// Per-epoch fault rate of the seeded plan.
    pub fault_rate: f64,
    /// Faults that actually fired during the run.
    pub faults_injected: u64,
    /// Tenant checkpoints taken at faulted epoch starts.
    pub checkpoints: u64,
    /// Restores performed (whole-shard + per-tenant).
    pub restores: u64,
    /// Events replayed from logs to catch restored tenants up.
    pub events_replayed: u64,
    /// Fraction of tenant-epochs that ran without needing recovery.
    pub availability: f64,
    /// Whether the recovered run matched the undisturbed run byte for
    /// byte (report, epoch records, tenant reports, merged journal).
    pub byte_identical: bool,
    /// Fastest undisturbed wall-clock run, seconds.
    pub undisturbed_seconds: f64,
    /// Fastest faulted-and-recovered wall-clock run, seconds.
    pub faulted_seconds: f64,
    /// Events per second of the faulted run (replays excluded from the
    /// event count: the numerator is the same work the undisturbed run
    /// does, so the two throughputs compare like for like).
    pub faulted_events_per_second: f64,
    /// `(faulted - undisturbed) / undisturbed`, percent — the wall-clock
    /// price of checkpoints, supervised drains, and replay.
    pub recovery_overhead_pct: f64,
}

/// Observability-plane overhead: the same fleet point run with the
/// plane disabled (`plain`) and enabled — spans, registry, percentiles,
/// flight recorder all on. `registry_metrics` and `slo_violations` are
/// deterministic anchors; the wall-clock pair prices the plane, and
/// `ci.sh` gates `enabled_overhead_pct` at ≤ 5%. The section is flat on
/// purpose: `ci.sh` extracts fields with a line-oriented `sed` range.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsBench {
    /// Tenant controllers in the measured fleet point.
    pub tenants: u64,
    /// Shards the tenants were split over.
    pub shards: u64,
    /// Back-to-back fleet runs per timed measurement — scaled until the
    /// plain measurement clears the telemetry section's floor.
    pub reps: u64,
    /// Trace events one fleet run processes.
    pub events: u64,
    /// Fastest measurement with the plane disabled, seconds.
    pub plain_seconds: f64,
    /// Fastest measurement with the plane enabled, seconds.
    pub enabled_seconds: f64,
    /// Events per second with the plane disabled (one run's events over
    /// the per-run wall-clock).
    pub plain_events_per_second: f64,
    /// Events per second with the plane enabled.
    pub enabled_events_per_second: f64,
    /// Median of the per-round `enabled / plain` batch-time ratios
    /// (batches alternate, so both sides of each ratio see the same host
    /// load), minus one, in percent — gated by `ci.sh`.
    pub enabled_overhead_pct: f64,
    /// Metrics in the enabled run's merged registry.
    pub registry_metrics: u64,
    /// Tenant-tick SLO breaches the enabled run counted.
    pub slo_violations: u64,
}

/// One figure's wall-clock timings.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureTiming {
    /// Figure command name (`fig5` … `ablation`).
    pub name: String,
    /// Seconds at one thread.
    pub serial_seconds: f64,
    /// Seconds at the configured thread count; `None` when the parallel
    /// pass was skipped.
    pub parallel_seconds: Option<f64>,
}

/// Why a report failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportError {
    /// What went wrong, with enough context to find the spot.
    pub reason: String,
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bench report parse error: {}", self.reason)
    }
}

impl std::error::Error for ReportError {}

fn err<T>(reason: impl Into<String>) -> Result<T, ReportError> {
    Err(ReportError {
        reason: reason.into(),
    })
}

impl BenchReport {
    /// Renders the report as the committed `BENCH_pipeline.json` layout.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let opt = |v: Option<f64>| v.map_or_else(|| "null".to_owned(), |s| format!("{s:.6}"));
        let mut json = String::new();
        let _ = writeln!(json, "{{");
        let _ = writeln!(json, "  \"host_threads\": {},", self.host_threads);
        let _ = writeln!(json, "  \"bench_threads\": {},", self.bench_threads);
        let _ = writeln!(json, "  \"reps_placement\": {},", self.reps_placement);
        let _ = writeln!(json, "  \"reps_scheduling\": {},", self.reps_scheduling);
        let _ = writeln!(json, "  \"seed\": {},", self.seed);
        let s = &self.search;
        let _ = writeln!(json, "  \"search\": {{");
        let _ = writeln!(json, "    \"engine\": \"{}\",", s.engine);
        let _ = writeln!(json, "    \"population\": {},", s.population);
        let _ = writeln!(json, "    \"generations\": {},", s.generations);
        let _ = writeln!(
            json,
            "    \"generations_per_second\": {:.3},",
            s.generations_per_second
        );
        let _ = writeln!(json, "    \"best_objective\": {:.6},", s.best_objective);
        let _ = writeln!(json, "    \"bfdsu_objective\": {},", opt(s.bfdsu_objective));
        let _ = writeln!(
            json,
            "    \"objective_delta_vs_bfdsu\": {}",
            opt(s.objective_delta_vs_bfdsu)
        );
        let _ = writeln!(json, "  }},");
        let t = &self.telemetry;
        let _ = writeln!(json, "  \"telemetry\": {{");
        let _ = writeln!(json, "    \"replay_reps\": {},", t.replay_reps);
        let _ = writeln!(
            json,
            "    \"measurement_floor_seconds\": {:.6},",
            t.measurement_floor_seconds
        );
        let _ = writeln!(
            json,
            "    \"replay_plain_seconds\": {:.6},",
            t.replay_plain_seconds
        );
        let _ = writeln!(
            json,
            "    \"replay_disabled_seconds\": {:.6},",
            t.replay_disabled_seconds
        );
        let _ = writeln!(
            json,
            "    \"replay_enabled_seconds\": {:.6},",
            t.replay_enabled_seconds
        );
        let _ = writeln!(
            json,
            "    \"disabled_overhead_pct\": {:.3},",
            t.disabled_overhead_pct
        );
        let _ = writeln!(
            json,
            "    \"enabled_overhead_pct\": {:.3}",
            t.enabled_overhead_pct
        );
        let _ = writeln!(json, "  }},");
        let r = &self.replay;
        let _ = writeln!(json, "  \"replay\": {{");
        let _ = writeln!(json, "    \"events\": {},", r.events);
        let _ = writeln!(json, "    \"horizon_seconds\": {:.6},", r.horizon_seconds);
        let _ = writeln!(json, "    \"streamed_seconds\": {:.6},", r.streamed_seconds);
        let _ = writeln!(json, "    \"batched_seconds\": {:.6},", r.batched_seconds);
        let _ = writeln!(
            json,
            "    \"streamed_events_per_second\": {:.3},",
            r.streamed_events_per_second
        );
        let _ = writeln!(
            json,
            "    \"events_per_second\": {:.3},",
            r.events_per_second
        );
        let _ = writeln!(json, "    \"admitted\": {},", r.admitted);
        let _ = writeln!(json, "    \"rejected\": {}", r.rejected);
        let _ = writeln!(json, "  }},");
        let _ = writeln!(json, "  \"fleet\": [");
        for (i, point) in self.fleet.iter().enumerate() {
            let comma = if i + 1 < self.fleet.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "    {{\"tenants\": {}, \"shards\": {}, \"events\": {}, \"seconds\": {:.6}, \
                 \"events_per_second\": {:.3}, \"migrations\": {}, \"migration_cost\": {}, \
                 \"mean_rebalance_latency_seconds\": {:.6}}}{comma}",
                point.tenants,
                point.shards,
                point.events,
                point.seconds,
                point.events_per_second,
                point.migrations,
                point.migration_cost,
                point.mean_rebalance_latency_seconds,
            );
        }
        let _ = writeln!(json, "  ],");
        let rec = &self.recovery;
        let _ = writeln!(json, "  \"recovery\": {{");
        let _ = writeln!(json, "    \"fault_rate\": {:.3},", rec.fault_rate);
        let _ = writeln!(json, "    \"faults_injected\": {},", rec.faults_injected);
        let _ = writeln!(json, "    \"checkpoints\": {},", rec.checkpoints);
        let _ = writeln!(json, "    \"restores\": {},", rec.restores);
        let _ = writeln!(json, "    \"events_replayed\": {},", rec.events_replayed);
        let _ = writeln!(json, "    \"availability\": {:.6},", rec.availability);
        let _ = writeln!(json, "    \"byte_identical\": {},", rec.byte_identical);
        let _ = writeln!(
            json,
            "    \"undisturbed_seconds\": {:.6},",
            rec.undisturbed_seconds
        );
        let _ = writeln!(json, "    \"faulted_seconds\": {:.6},", rec.faulted_seconds);
        let _ = writeln!(
            json,
            "    \"faulted_events_per_second\": {:.3},",
            rec.faulted_events_per_second
        );
        let _ = writeln!(
            json,
            "    \"recovery_overhead_pct\": {:.3}",
            rec.recovery_overhead_pct
        );
        let _ = writeln!(json, "  }},");
        let o = &self.obs;
        let _ = writeln!(json, "  \"obs\": {{");
        let _ = writeln!(json, "    \"tenants\": {},", o.tenants);
        let _ = writeln!(json, "    \"shards\": {},", o.shards);
        let _ = writeln!(json, "    \"reps\": {},", o.reps);
        let _ = writeln!(json, "    \"events\": {},", o.events);
        let _ = writeln!(json, "    \"plain_seconds\": {:.6},", o.plain_seconds);
        let _ = writeln!(json, "    \"enabled_seconds\": {:.6},", o.enabled_seconds);
        let _ = writeln!(
            json,
            "    \"plain_events_per_second\": {:.3},",
            o.plain_events_per_second
        );
        let _ = writeln!(
            json,
            "    \"enabled_events_per_second\": {:.3},",
            o.enabled_events_per_second
        );
        let _ = writeln!(
            json,
            "    \"enabled_overhead_pct\": {:.3},",
            o.enabled_overhead_pct
        );
        let _ = writeln!(json, "    \"registry_metrics\": {},", o.registry_metrics);
        let _ = writeln!(json, "    \"slo_violations\": {}", o.slo_violations);
        let _ = writeln!(json, "  }},");
        let _ = writeln!(json, "  \"figures\": [");
        for (i, figure) in self.figures.iter().enumerate() {
            let comma = if i + 1 < self.figures.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "    {{\"name\": \"{}\", \"serial_seconds\": {:.6}, \"parallel_seconds\": {}}}{comma}",
                figure.name,
                figure.serial_seconds,
                opt(figure.parallel_seconds),
            );
        }
        let _ = writeln!(json, "  ],");
        let _ = writeln!(
            json,
            "  \"total_serial_seconds\": {:.6},",
            self.total_serial_seconds
        );
        let _ = writeln!(
            json,
            "  \"total_parallel_seconds\": {}",
            opt(self.total_parallel_seconds)
        );
        let _ = writeln!(json, "}}");
        json
    }

    /// Parses a report back from its JSON form. Field order and
    /// whitespace are free; unknown fields are rejected so schema drift
    /// fails loudly instead of silently dropping data.
    ///
    /// # Errors
    ///
    /// Returns a [`ReportError`] naming the malformed or missing field.
    pub fn from_json(text: &str) -> Result<Self, ReportError> {
        let value = Json::parse(text)?;
        let root = value.object("report")?;
        let search = root.child("search")?;
        let telemetry = root.child("telemetry")?;
        let replay = root.child("replay")?;
        let recovery = root.child("recovery")?;
        let obs = root.child("obs")?;
        let mut fleet = Vec::new();
        for (i, entry) in root.array("fleet")?.iter().enumerate() {
            let point = entry.object(&format!("fleet[{i}]"))?;
            fleet.push(FleetPointBench {
                tenants: point.integer("tenants")?,
                shards: point.integer("shards")?,
                events: point.integer("events")?,
                seconds: point.number("seconds")?,
                events_per_second: point.number("events_per_second")?,
                migrations: point.integer("migrations")?,
                migration_cost: point.integer("migration_cost")?,
                mean_rebalance_latency_seconds: point.number("mean_rebalance_latency_seconds")?,
            });
            point.deny_unknown(&[
                "tenants",
                "shards",
                "events",
                "seconds",
                "events_per_second",
                "migrations",
                "migration_cost",
                "mean_rebalance_latency_seconds",
            ])?;
        }
        let mut figures = Vec::new();
        for (i, entry) in root.array("figures")?.iter().enumerate() {
            let figure = entry.object(&format!("figures[{i}]"))?;
            figures.push(FigureTiming {
                name: figure.string("name")?,
                serial_seconds: figure.number("serial_seconds")?,
                parallel_seconds: figure.nullable_number("parallel_seconds")?,
            });
            figure.deny_unknown(&["name", "serial_seconds", "parallel_seconds"])?;
        }
        let report = Self {
            host_threads: root.integer("host_threads")?,
            bench_threads: root.integer("bench_threads")?,
            reps_placement: root.integer("reps_placement")?,
            reps_scheduling: root.integer("reps_scheduling")?,
            seed: root.integer("seed")?,
            search: SearchReport {
                engine: search.string("engine")?,
                population: search.integer("population")?,
                generations: search.integer("generations")?,
                generations_per_second: search.number("generations_per_second")?,
                best_objective: search.number("best_objective")?,
                bfdsu_objective: search.nullable_number("bfdsu_objective")?,
                objective_delta_vs_bfdsu: search.nullable_number("objective_delta_vs_bfdsu")?,
            },
            telemetry: TelemetryReport {
                replay_reps: telemetry.integer("replay_reps")?,
                measurement_floor_seconds: telemetry.number("measurement_floor_seconds")?,
                replay_plain_seconds: telemetry.number("replay_plain_seconds")?,
                replay_disabled_seconds: telemetry.number("replay_disabled_seconds")?,
                replay_enabled_seconds: telemetry.number("replay_enabled_seconds")?,
                disabled_overhead_pct: telemetry.number("disabled_overhead_pct")?,
                enabled_overhead_pct: telemetry.number("enabled_overhead_pct")?,
            },
            replay: ReplayReport {
                events: replay.integer("events")?,
                horizon_seconds: replay.number("horizon_seconds")?,
                streamed_seconds: replay.number("streamed_seconds")?,
                batched_seconds: replay.number("batched_seconds")?,
                streamed_events_per_second: replay.number("streamed_events_per_second")?,
                events_per_second: replay.number("events_per_second")?,
                admitted: replay.integer("admitted")?,
                rejected: replay.integer("rejected")?,
            },
            fleet,
            recovery: RecoveryBench {
                fault_rate: recovery.number("fault_rate")?,
                faults_injected: recovery.integer("faults_injected")?,
                checkpoints: recovery.integer("checkpoints")?,
                restores: recovery.integer("restores")?,
                events_replayed: recovery.integer("events_replayed")?,
                availability: recovery.number("availability")?,
                byte_identical: recovery.boolean("byte_identical")?,
                undisturbed_seconds: recovery.number("undisturbed_seconds")?,
                faulted_seconds: recovery.number("faulted_seconds")?,
                faulted_events_per_second: recovery.number("faulted_events_per_second")?,
                recovery_overhead_pct: recovery.number("recovery_overhead_pct")?,
            },
            obs: ObsBench {
                tenants: obs.integer("tenants")?,
                shards: obs.integer("shards")?,
                reps: obs.integer("reps")?,
                events: obs.integer("events")?,
                plain_seconds: obs.number("plain_seconds")?,
                enabled_seconds: obs.number("enabled_seconds")?,
                plain_events_per_second: obs.number("plain_events_per_second")?,
                enabled_events_per_second: obs.number("enabled_events_per_second")?,
                enabled_overhead_pct: obs.number("enabled_overhead_pct")?,
                registry_metrics: obs.integer("registry_metrics")?,
                slo_violations: obs.integer("slo_violations")?,
            },
            figures,
            total_serial_seconds: root.number("total_serial_seconds")?,
            total_parallel_seconds: root.nullable_number("total_parallel_seconds")?,
        };
        recovery.deny_unknown(&[
            "fault_rate",
            "faults_injected",
            "checkpoints",
            "restores",
            "events_replayed",
            "availability",
            "byte_identical",
            "undisturbed_seconds",
            "faulted_seconds",
            "faulted_events_per_second",
            "recovery_overhead_pct",
        ])?;
        obs.deny_unknown(&[
            "tenants",
            "shards",
            "reps",
            "events",
            "plain_seconds",
            "enabled_seconds",
            "plain_events_per_second",
            "enabled_events_per_second",
            "enabled_overhead_pct",
            "registry_metrics",
            "slo_violations",
        ])?;
        search.deny_unknown(&[
            "engine",
            "population",
            "generations",
            "generations_per_second",
            "best_objective",
            "bfdsu_objective",
            "objective_delta_vs_bfdsu",
        ])?;
        telemetry.deny_unknown(&[
            "replay_reps",
            "measurement_floor_seconds",
            "replay_plain_seconds",
            "replay_disabled_seconds",
            "replay_enabled_seconds",
            "disabled_overhead_pct",
            "enabled_overhead_pct",
        ])?;
        replay.deny_unknown(&[
            "events",
            "horizon_seconds",
            "streamed_seconds",
            "batched_seconds",
            "streamed_events_per_second",
            "events_per_second",
            "admitted",
            "rejected",
        ])?;
        root.deny_unknown(&[
            "host_threads",
            "bench_threads",
            "reps_placement",
            "reps_scheduling",
            "seed",
            "search",
            "telemetry",
            "replay",
            "fleet",
            "recovery",
            "obs",
            "figures",
            "total_serial_seconds",
            "total_parallel_seconds",
        ])?;
        Ok(report)
    }
}

/// A parsed JSON value — just enough of the grammar for the report.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

/// An object plus the path it sits at, for error messages.
struct ObjectAt<'a> {
    path: String,
    fields: &'a [(String, Json)],
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    fn parse(text: &str) -> Result<Self, ReportError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    fn object(&self, path: &str) -> Result<ObjectAt<'_>, ReportError> {
        match self {
            Self::Object(fields) => Ok(ObjectAt {
                path: path.to_owned(),
                fields,
            }),
            other => err(format!("`{path}` is not an object: {other:?}")),
        }
    }
}

impl ObjectAt<'_> {
    fn get(&self, key: &str) -> Result<&Json, ReportError> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| ReportError {
                reason: format!("`{}` is missing field `{key}`", self.path),
            })
    }

    fn child(&self, key: &str) -> Result<ObjectAt<'_>, ReportError> {
        self.get(key)?.object(&format!("{}.{key}", self.path))
    }

    fn array(&self, key: &str) -> Result<&[Json], ReportError> {
        match self.get(key)? {
            Json::Array(items) => Ok(items),
            other => err(format!("`{}.{key}` is not an array: {other:?}", self.path)),
        }
    }

    fn number(&self, key: &str) -> Result<f64, ReportError> {
        match self.get(key)? {
            Json::Number(n) => Ok(*n),
            other => err(format!("`{}.{key}` is not a number: {other:?}", self.path)),
        }
    }

    fn nullable_number(&self, key: &str) -> Result<Option<f64>, ReportError> {
        match self.get(key)? {
            Json::Number(n) => Ok(Some(*n)),
            Json::Null => Ok(None),
            other => err(format!(
                "`{}.{key}` is not a number or null: {other:?}",
                self.path
            )),
        }
    }

    fn integer(&self, key: &str) -> Result<u64, ReportError> {
        let n = self.number(key)?;
        if n.fract() != 0.0 || !(0.0..=u64::MAX as f64).contains(&n) {
            return err(format!(
                "`{}.{key}` is not a non-negative integer: {n}",
                self.path
            ));
        }
        Ok(n as u64)
    }

    fn string(&self, key: &str) -> Result<String, ReportError> {
        match self.get(key)? {
            Json::String(s) => Ok(s.clone()),
            other => err(format!("`{}.{key}` is not a string: {other:?}", self.path)),
        }
    }

    fn boolean(&self, key: &str) -> Result<bool, ReportError> {
        match self.get(key)? {
            Json::Bool(b) => Ok(*b),
            other => err(format!("`{}.{key}` is not a boolean: {other:?}", self.path)),
        }
    }

    fn deny_unknown(&self, known: &[&str]) -> Result<(), ReportError> {
        for (key, _) in self.fields {
            if !known.contains(&key.as_str()) {
                return err(format!("`{}` has unknown field `{key}`", self.path));
            }
        }
        Ok(())
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b' ' | b'\t' | b'\n' | b'\r') = bytes.get(*pos) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), ReportError> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        err(format!(
            "expected `{}` at byte {}, found {:?}",
            byte as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ReportError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        other => err(format!(
            "unexpected {:?} at byte {}",
            other.map(|&b| b as char),
            *pos
        )),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, ReportError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        err(format!("expected `{literal}` at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ReportError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = bytes.get(*pos) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    text.parse::<f64>()
        .map(Json::Number)
        .map_err(|_| ReportError {
            reason: format!("invalid number `{text}` at byte {start}"),
        })
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ReportError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return err("unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let escaped = bytes.get(*pos).copied();
                *pos += 1;
                match escaped {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| ReportError {
                                reason: "truncated \\u escape".to_owned(),
                            })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| ReportError {
                            reason: format!("invalid \\u escape `{hex}`"),
                        })?;
                        // Surrogate pairs don't appear in this report's
                        // strings; reject rather than mis-decode.
                        let c = char::from_u32(code).ok_or_else(|| ReportError {
                            reason: format!("unsupported \\u escape `{hex}`"),
                        })?;
                        out.push(c);
                        *pos += 4;
                    }
                    other => {
                        return err(format!("invalid escape {:?}", other.map(|b| b as char)));
                    }
                }
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the full scalar.
                let text = std::str::from_utf8(&bytes[*pos..]).map_err(|_| ReportError {
                    reason: "invalid UTF-8 in string".to_owned(),
                })?;
                let c = text.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, ReportError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            other => {
                return err(format!(
                    "expected `,` or `]` at byte {}, found {:?}",
                    *pos,
                    other.map(|&b| b as char)
                ))
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, ReportError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            other => {
                return err(format!(
                    "expected `,` or `}}` at byte {}, found {:?}",
                    *pos,
                    other.map(|&b| b as char)
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A report whose floats are exactly representable at the printed
    /// precision, so serialization loses nothing.
    fn sample(parallel: bool) -> BenchReport {
        BenchReport {
            host_threads: 8,
            bench_threads: 8,
            reps_placement: 10,
            reps_scheduling: 200,
            seed: 42,
            search: SearchReport {
                engine: "ga".to_owned(),
                population: 32,
                generations: 20,
                generations_per_second: 123.5,
                best_objective: -4.25,
                bfdsu_objective: parallel.then_some(-4.5),
                objective_delta_vs_bfdsu: parallel.then_some(0.25),
            },
            telemetry: TelemetryReport {
                replay_reps: 16,
                measurement_floor_seconds: 0.25,
                replay_plain_seconds: 0.5,
                replay_disabled_seconds: 0.5,
                replay_enabled_seconds: 0.75,
                disabled_overhead_pct: 0.0,
                enabled_overhead_pct: 50.0,
            },
            replay: ReplayReport {
                events: 1_040_273,
                horizon_seconds: 200.0,
                streamed_seconds: 0.5,
                batched_seconds: 0.375,
                streamed_events_per_second: 2_000_000.0,
                events_per_second: 2_750_000.0,
                admitted: 520_063,
                rejected: 0,
            },
            fleet: vec![
                FleetPointBench {
                    tenants: 8,
                    shards: 2,
                    events: 1_024,
                    seconds: 0.125,
                    events_per_second: 8_192.0,
                    migrations: 3,
                    migration_cost: 12,
                    mean_rebalance_latency_seconds: 6.0,
                },
                FleetPointBench {
                    tenants: 256,
                    shards: 16,
                    events: 32_768,
                    seconds: 0.5,
                    events_per_second: 65_536.0,
                    migrations: 4,
                    migration_cost: 18,
                    mean_rebalance_latency_seconds: 6.0,
                },
            ],
            recovery: RecoveryBench {
                fault_rate: 0.25,
                faults_injected: 9,
                checkpoints: 24,
                restores: 7,
                events_replayed: 96,
                availability: 0.875,
                byte_identical: true,
                undisturbed_seconds: 0.125,
                faulted_seconds: 0.25,
                faulted_events_per_second: 4_096.0,
                recovery_overhead_pct: 100.0,
            },
            obs: ObsBench {
                tenants: 256,
                shards: 16,
                reps: 32,
                events: 32_768,
                plain_seconds: 0.25,
                enabled_seconds: 0.375,
                plain_events_per_second: 131_072.0,
                enabled_events_per_second: 87_381.25,
                enabled_overhead_pct: 50.0,
                registry_metrics: 300,
                slo_violations: 12,
            },
            figures: vec![
                FigureTiming {
                    name: "fig5".to_owned(),
                    serial_seconds: 1.5,
                    parallel_seconds: parallel.then_some(0.5),
                },
                FigureTiming {
                    name: "churn".to_owned(),
                    serial_seconds: 2.25,
                    parallel_seconds: parallel.then_some(0.75),
                },
            ],
            total_serial_seconds: 3.75,
            total_parallel_seconds: parallel.then_some(1.25),
        }
    }

    #[test]
    fn report_round_trips_with_parallel_pass() {
        let report = sample(true);
        assert_eq!(BenchReport::from_json(&report.to_json()), Ok(report));
    }

    #[test]
    fn report_round_trips_with_null_parallel_fields() {
        let report = sample(false);
        let json = report.to_json();
        assert!(json.contains("\"parallel_seconds\": null"));
        assert!(json.contains("\"total_parallel_seconds\": null"));
        assert_eq!(BenchReport::from_json(&json), Ok(report));
    }

    #[test]
    fn parser_tolerates_field_reordering_and_whitespace() {
        let report = sample(true);
        let json = report.to_json();
        // Move `seed` to the end of the root object (field order is not
        // part of the contract) and strip pretty-printing.
        let reordered = json
            .replace("  \"seed\": 42,\n", "")
            .replace(
                "\"total_parallel_seconds\": 1.250000",
                "\"total_parallel_seconds\": 1.250000, \"seed\": 42",
            )
            .replace('\n', "");
        assert_eq!(BenchReport::from_json(&reordered), Ok(report));
    }

    #[test]
    fn unknown_and_missing_fields_are_rejected() {
        let report = sample(true);
        let json = report.to_json();
        let extra = json.replace("\"seed\": 42", "\"seed\": 42, \"surprise\": 1");
        assert!(BenchReport::from_json(&extra)
            .unwrap_err()
            .reason
            .contains("surprise"));
        let missing = json.replace("  \"seed\": 42,\n", "");
        assert!(BenchReport::from_json(&missing)
            .unwrap_err()
            .reason
            .contains("seed"));
    }

    #[test]
    fn fleet_section_round_trips_and_rejects_drift() {
        let report = sample(true);
        let json = report.to_json();
        assert!(json.contains("\"fleet\": ["));
        assert_eq!(BenchReport::from_json(&json).unwrap().fleet, report.fleet);
        // An empty fleet array is valid (old-style runs), but a fleet
        // entry with an unknown field is schema drift.
        let empty = {
            let mut r = report.clone();
            r.fleet.clear();
            r
        };
        assert_eq!(BenchReport::from_json(&empty.to_json()), Ok(empty));
        let drifted = json.replace("\"tenants\": 8,", "\"tenants\": 8, \"oops\": 1,");
        assert!(BenchReport::from_json(&drifted)
            .unwrap_err()
            .reason
            .contains("oops"));
        let missing = json.replace("  \"fleet\": [\n", "  \"fleet_\": [\n");
        assert!(BenchReport::from_json(&missing).is_err());
    }

    #[test]
    fn recovery_section_round_trips_and_rejects_drift() {
        let report = sample(true);
        let json = report.to_json();
        assert!(json.contains("\"recovery\": {"));
        assert!(json.contains("\"byte_identical\": true"));
        assert_eq!(
            BenchReport::from_json(&json).unwrap().recovery,
            report.recovery
        );
        let flipped = json.replace("\"byte_identical\": true", "\"byte_identical\": false");
        assert!(
            !BenchReport::from_json(&flipped)
                .unwrap()
                .recovery
                .byte_identical
        );
        let drifted = json.replace(
            "\"fault_rate\": 0.250,",
            "\"fault_rate\": 0.250, \"extra\": 1,",
        );
        assert!(BenchReport::from_json(&drifted)
            .unwrap_err()
            .reason
            .contains("extra"));
        let not_bool = json.replace("\"byte_identical\": true", "\"byte_identical\": 1");
        assert!(BenchReport::from_json(&not_bool)
            .unwrap_err()
            .reason
            .contains("byte_identical"));
    }

    #[test]
    fn obs_section_round_trips_and_rejects_drift() {
        let report = sample(true);
        let json = report.to_json();
        assert!(json.contains("\"obs\": {"));
        assert_eq!(BenchReport::from_json(&json).unwrap().obs, report.obs);
        // The section is flat: no nested objects, so the ci.sh sed-range
        // extraction sees one `"key": value` pair per line.
        let section = json
            .split("\"obs\": {")
            .nth(1)
            .and_then(|rest| rest.split('}').next())
            .unwrap();
        assert!(!section.contains('{'), "obs section must stay flat");
        let drifted = json.replace(
            "\"enabled_overhead_pct\": 50.000,",
            "\"enabled_overhead_pct\": 50.000, \"bonus\": 1,",
        );
        assert!(BenchReport::from_json(&drifted)
            .unwrap_err()
            .reason
            .contains("bonus"));
        let missing = json.replace("  \"obs\": {", "  \"obs_\": {");
        assert!(BenchReport::from_json(&missing).is_err());
    }

    #[test]
    fn malformed_json_is_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1} trailing",
            "{\"a\": \"unterminated",
            "[1, 2",
            "{\"a\": 01x}",
        ] {
            assert!(BenchReport::from_json(bad).is_err(), "accepted: {bad}");
        }
    }
}
