//! NAH: the node assignment heuristic baseline (Xia et al., 2015).

use nfv_model::{NodeId, VnfId};
use rand::seq::SliceRandom;
use rand::RngCore;

use crate::placer::run_with_restarts;
use crate::support::Remaining;
use crate::{Placement, PlacementError, PlacementOutcome, PlacementProblem, Placer};

/// The Node Assignment Heuristic for NFV chaining in packet/optical
/// datacenters (Xia et al., JLT 2015), reimplemented from its published
/// description as the paper's second baseline.
///
/// For each service chain, NAH places the most resource-demanding VNF of
/// the chain on the node with the *largest* remaining capacity, then packs
/// as many of the chain's remaining VNFs as fit onto that same node;
/// leftovers repeat the procedure on the next largest-capacity node. VNFs
/// shared with already-processed chains are skipped; VNFs on no chain are
/// placed individually, largest-node first.
///
/// Because NAH always opens the biggest node, it fragments capacity and
/// keeps no used/spare priority — the behaviour responsible for its low
/// average utilization in the paper's Figs. 5–9. Chain processing order is
/// shuffled per attempt, and the algorithm restarts on failure like BFDSU;
/// on tight instances it needs notably more attempts (Fig. 10's ~3×
/// BFDSU).
///
/// # Examples
///
/// ```
/// use nfv_placement::{Nah, Placer, PlacementProblem};
/// # use nfv_model::{Capacity, ComputeNode, Demand, NodeId, ServiceChain, ServiceRate, Vnf, VnfId, VnfKind};
/// use rand::SeedableRng;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let nodes = vec![ComputeNode::new(NodeId::new(0), Capacity::new(100.0)?)];
/// # let vnfs = vec![Vnf::builder(VnfId::new(0), VnfKind::Nat)
/// #     .demand_per_instance(Demand::new(30.0)?)
/// #     .service_rate(ServiceRate::new(100.0)?)
/// #     .build()?];
/// # let chains = vec![ServiceChain::single(VnfId::new(0))];
/// let problem = PlacementProblem::with_chains(nodes, vnfs, chains)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let outcome = Nah::new().place(&problem, &mut rng)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nah {
    max_attempts: u64,
}

impl Nah {
    /// Creates NAH with the default restart budget (1000 attempts).
    #[must_use]
    pub fn new() -> Self {
        Self { max_attempts: 1000 }
    }

    /// Sets the restart budget.
    #[must_use]
    pub fn with_max_attempts(mut self, max_attempts: u64) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    fn attempt(&self, problem: &PlacementProblem, rng: &mut dyn RngCore) -> Option<Placement> {
        let mut remaining = Remaining::new(problem);
        let mut placed: Vec<Option<NodeId>> = vec![None; problem.vnfs().len()];

        let mut chain_order: Vec<usize> = (0..problem.chains().len()).collect();
        chain_order.shuffle(rng);

        for &c in &chain_order {
            let members: Vec<VnfId> = problem.chains()[c]
                .iter()
                .filter(|v| placed[v.as_usize()].is_none())
                .collect();
            place_group(problem, &members, &mut remaining, &mut placed)?;
        }
        // VNFs on no chain are placed individually.
        let loose: Vec<VnfId> = problem
            .vnfs()
            .iter()
            .map(|v| v.id())
            .filter(|v| placed[v.as_usize()].is_none())
            .collect();
        for vnf in loose {
            place_group(problem, &[vnf], &mut remaining, &mut placed)?;
        }

        let assignment: Vec<NodeId> = placed.into_iter().collect::<Option<_>>()?;
        Some(Placement::new(problem, assignment).expect("capacity tracked during construction"))
    }
}

impl Default for Nah {
    fn default() -> Self {
        Self::new()
    }
}

impl Placer for Nah {
    fn name(&self) -> &'static str {
        "nah"
    }

    fn place(
        &self,
        problem: &PlacementProblem,
        rng: &mut dyn RngCore,
    ) -> Result<PlacementOutcome, PlacementError> {
        run_with_restarts(problem, self.max_attempts, || self.attempt(problem, rng))
    }
}

/// Places one chain's unplaced VNFs: most demanding first onto the node
/// with the largest remaining capacity, co-locating the rest while it
/// fits; leftovers recurse onto the next largest node. `None` if some VNF
/// fits nowhere.
fn place_group(
    problem: &PlacementProblem,
    members: &[VnfId],
    remaining: &mut Remaining,
    placed: &mut [Option<NodeId>],
) -> Option<()> {
    let mut pending: Vec<VnfId> = members.to_vec();
    // Most resource-demanding first.
    pending.sort_by(|&a, &b| {
        problem
            .demand_of(b)
            .value()
            .partial_cmp(&problem.demand_of(a).value())
            .expect("demands are finite")
            .then(a.cmp(&b))
    });
    while let Some(&head) = pending.first() {
        let head_demand = problem.demand_of(head).value();
        // The node with the largest remaining capacity.
        let node = problem
            .nodes()
            .iter()
            .map(|n| n.id())
            .max_by(|&a, &b| {
                remaining
                    .of(a)
                    .partial_cmp(&remaining.of(b))
                    .expect("capacities are finite")
                    .then(b.cmp(&a))
            })
            .expect("problems have nodes");
        if !remaining.fits(node, head_demand) {
            return None;
        }
        // Pack as many of the chain's VNFs as fit onto this node.
        let mut leftovers = Vec::new();
        for vnf in pending.drain(..) {
            let demand = problem.demand_of(vnf).value();
            if remaining.fits(node, demand) {
                remaining.consume(node, demand);
                placed[vnf.as_usize()] = Some(node);
            } else {
                leftovers.push(vnf);
            }
        }
        pending = leftovers;
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_model::{Capacity, ComputeNode, Demand, ServiceChain, ServiceRate, Vnf, VnfKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem_with_chains(caps: &[f64], demands: &[f64], chains: &[&[u32]]) -> PlacementProblem {
        let nodes = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| ComputeNode::new(NodeId::new(i as u32), Capacity::new(c).unwrap()))
            .collect();
        let vnfs = demands
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                Vnf::builder(VnfId::new(i as u32), VnfKind::Custom(i as u16))
                    .demand_per_instance(Demand::new(d).unwrap())
                    .service_rate(ServiceRate::new(1.0).unwrap())
                    .build()
                    .unwrap()
            })
            .collect();
        let chains = chains
            .iter()
            .map(|ids| ServiceChain::new(ids.iter().map(|&i| VnfId::new(i)).collect()).unwrap())
            .collect();
        PlacementProblem::with_chains(nodes, vnfs, chains).unwrap()
    }

    #[test]
    fn chain_members_colocate_when_they_fit() {
        let p = problem_with_chains(&[100.0, 100.0], &[30.0, 20.0, 10.0], &[&[0, 1, 2]]);
        let outcome = Nah::new().place(&p, &mut StdRng::seed_from_u64(0)).unwrap();
        let pl = outcome.placement();
        assert!(pl.colocated(VnfId::new(0), VnfId::new(1)));
        assert!(pl.colocated(VnfId::new(1), VnfId::new(2)));
    }

    #[test]
    fn always_opens_largest_node() {
        // A tiny chain lands on the 1000-capacity node even though the
        // 50-capacity node would suffice — the fragmentation NAH is known
        // for.
        let p = problem_with_chains(&[50.0, 1000.0], &[30.0], &[&[0]]);
        let outcome = Nah::new().place(&p, &mut StdRng::seed_from_u64(0)).unwrap();
        assert_eq!(outcome.placement().node_of(VnfId::new(0)), NodeId::new(1));
    }

    #[test]
    fn overflowing_chain_spills_to_next_largest() {
        let p = problem_with_chains(&[100.0, 80.0], &[60.0, 50.0, 30.0], &[&[0, 1, 2]]);
        let outcome = Nah::new().place(&p, &mut StdRng::seed_from_u64(0)).unwrap();
        let pl = outcome.placement();
        // 60 -> node0 (largest); 50 does not fit node0 (rst 40) but 30 does;
        // 50 then goes to node1.
        assert_eq!(pl.node_of(VnfId::new(0)), NodeId::new(0));
        assert_eq!(pl.node_of(VnfId::new(2)), NodeId::new(0));
        assert_eq!(pl.node_of(VnfId::new(1)), NodeId::new(1));
    }

    #[test]
    fn shared_vnfs_are_placed_once() {
        let p = problem_with_chains(&[100.0, 100.0], &[40.0, 30.0, 20.0], &[&[0, 1], &[1, 2]]);
        let outcome = Nah::new().place(&p, &mut StdRng::seed_from_u64(1)).unwrap();
        // Just feasibility plus the Eq. (2) invariant, which Placement::new
        // enforces: each VNF appears exactly once.
        assert_eq!(outcome.placement().assignment().len(), 3);
    }

    #[test]
    fn vnfs_outside_all_chains_are_still_placed() {
        let p = problem_with_chains(&[100.0], &[40.0, 30.0], &[&[0]]);
        let outcome = Nah::new().place(&p, &mut StdRng::seed_from_u64(0)).unwrap();
        assert_eq!(outcome.placement().nodes_in_service(), 1);
    }

    #[test]
    fn works_without_any_chains() {
        let p = problem_with_chains(&[100.0], &[40.0, 30.0], &[]);
        let outcome = Nah::new().place(&p, &mut StdRng::seed_from_u64(0)).unwrap();
        assert_eq!(outcome.placement().nodes_in_service(), 1);
    }

    #[test]
    fn infeasible_fails_fast() {
        let p = problem_with_chains(&[10.0], &[20.0], &[&[0]]);
        assert!(matches!(
            Nah::new()
                .place(&p, &mut StdRng::seed_from_u64(0))
                .unwrap_err(),
            PlacementError::Infeasible { .. }
        ));
    }

    #[test]
    fn uses_more_nodes_than_bfdsu_on_fragmenting_input() {
        use crate::Bfdsu;
        // Four chains of one mid-size VNF each, nodes big enough for all
        // four: BFDSU packs one node; NAH spreads across the largest nodes.
        let p = problem_with_chains(
            &[200.0, 200.0, 200.0, 200.0],
            &[50.0, 50.0, 50.0, 50.0],
            &[&[0], &[1], &[2], &[3]],
        );
        let nah = Nah::new().place(&p, &mut StdRng::seed_from_u64(0)).unwrap();
        let bfdsu = Bfdsu::new()
            .place(&p, &mut StdRng::seed_from_u64(0))
            .unwrap();
        assert_eq!(bfdsu.placement().nodes_in_service(), 1);
        assert!(nah.placement().nodes_in_service() >= bfdsu.placement().nodes_in_service());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Nah::new().name(), "nah");
    }
}
