//! BFD: deterministic best-fit decreasing (BFDSU ablation).

use nfv_model::NodeId;
use rand::RngCore;

use crate::support::{vnfs_by_decreasing_demand, Remaining};
use crate::{Placement, PlacementError, PlacementOutcome, PlacementProblem, Placer};

/// Deterministic Best-Fit Decreasing with BFDSU's used-node priority but
/// *without* its weighted-random choice: each VNF goes to the candidate
/// with the minimal remaining capacity, always.
///
/// This is the ablation the paper motivates when introducing the weighted
/// probability strategy ("placing `f` at such node may not ensure a feasible
/// solution", §IV.A): BFD has no way to escape a dead-end packing, so on
/// tight instances it simply fails where BFDSU restarts and succeeds. The
/// `bench/` ablation quantifies the gap.
///
/// # Examples
///
/// ```
/// use nfv_placement::{Bfd, Placer, PlacementProblem};
/// # use nfv_model::{Capacity, ComputeNode, Demand, NodeId, ServiceRate, Vnf, VnfId, VnfKind};
/// use rand::SeedableRng;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let nodes = vec![ComputeNode::new(NodeId::new(0), Capacity::new(100.0)?)];
/// # let vnfs = vec![Vnf::builder(VnfId::new(0), VnfKind::Nat)
/// #     .demand_per_instance(Demand::new(30.0)?)
/// #     .service_rate(ServiceRate::new(100.0)?)
/// #     .build()?];
/// let problem = PlacementProblem::new(nodes, vnfs)?;
/// let outcome = Bfd::new().place(&problem, &mut rand::rngs::StdRng::seed_from_u64(0))?;
/// assert_eq!(outcome.iterations(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bfd;

impl Bfd {
    /// Creates the BFD placer.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Placer for Bfd {
    fn name(&self) -> &'static str {
        "bfd"
    }

    fn place(
        &self,
        problem: &PlacementProblem,
        _rng: &mut dyn RngCore,
    ) -> Result<PlacementOutcome, PlacementError> {
        problem.check_necessary_feasibility()?;
        let order = vnfs_by_decreasing_demand(problem);
        let mut remaining = Remaining::new(problem);
        let mut in_service = vec![false; problem.nodes().len()];
        let mut assignment = vec![NodeId::new(0); problem.vnfs().len()];

        for vnf in order {
            let demand = problem.demand_of(vnf).value();
            let best_in = |pool_used: bool| {
                problem
                    .nodes()
                    .iter()
                    .map(|n| n.id())
                    .filter(|&n| in_service[n.as_usize()] == pool_used && remaining.fits(n, demand))
                    .min_by(|&a, &b| {
                        remaining
                            .of(a)
                            .partial_cmp(&remaining.of(b))
                            .expect("capacities are finite")
                            .then(a.cmp(&b))
                    })
            };
            let node = best_in(true)
                .or_else(|| best_in(false))
                .ok_or(PlacementError::AttemptsExhausted { attempts: 1 })?;
            assignment[vnf.as_usize()] = node;
            remaining.consume(node, demand);
            in_service[node.as_usize()] = true;
        }
        let placement = Placement::new(problem, assignment)?;
        Ok(PlacementOutcome::new(placement, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_model::{Capacity, ComputeNode, Demand, ServiceRate, Vnf, VnfId, VnfKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem(caps: &[f64], demands: &[f64]) -> PlacementProblem {
        let nodes = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| ComputeNode::new(NodeId::new(i as u32), Capacity::new(c).unwrap()))
            .collect();
        let vnfs = demands
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                Vnf::builder(VnfId::new(i as u32), VnfKind::Custom(i as u16))
                    .demand_per_instance(Demand::new(d).unwrap())
                    .service_rate(ServiceRate::new(1.0).unwrap())
                    .build()
                    .unwrap()
            })
            .collect();
        PlacementProblem::new(nodes, vnfs).unwrap()
    }

    #[test]
    fn picks_tightest_fitting_spare_node() {
        // VNF of 40: node1 (cap 50) is a tighter fit than node0 (cap 100).
        let p = problem(&[100.0, 50.0], &[40.0]);
        let outcome = Bfd::new().place(&p, &mut StdRng::seed_from_u64(0)).unwrap();
        assert_eq!(outcome.placement().node_of(VnfId::new(0)), NodeId::new(1));
    }

    #[test]
    fn used_nodes_take_priority_over_tighter_spares() {
        // After 40 lands on node1 (tightest spare), the next VNF of 10 must
        // join node1 (used, RST 10) rather than open node0.
        let p = problem(&[100.0, 50.0], &[40.0, 10.0]);
        let outcome = Bfd::new().place(&p, &mut StdRng::seed_from_u64(0)).unwrap();
        assert_eq!(outcome.placement().nodes_in_service(), 1);
    }

    #[test]
    fn deterministic_best_fit_can_dead_end_where_bfdsu_recovers() {
        use crate::Bfdsu;
        // Nodes 100, 90; VNFs 60, 50, 40, 30 (total 180 < 190).
        // BFD: 60->90(rst30), 50->100(rst50), 40->100(rst10), 30->30? node1
        // rst30 fits exactly -> works here, so craft a true dead end:
        // nodes 100, 60; VNFs 50, 50, 30, 30. BFD: 50->60(rst10),
        // 50->100(rst50), 30->100(rst20), 30 -> nowhere (10, 20). Dead end.
        let p = problem(&[100.0, 60.0], &[50.0, 50.0, 30.0, 30.0]);
        let err = Bfd::new()
            .place(&p, &mut StdRng::seed_from_u64(0))
            .unwrap_err();
        assert!(matches!(err, PlacementError::AttemptsExhausted { .. }));
        // BFDSU's randomized restarts find the packing (50+50 | 30+30).
        let outcome = Bfdsu::new()
            .place(&p, &mut StdRng::seed_from_u64(0))
            .unwrap();
        assert_eq!(outcome.placement().nodes_in_service(), 2);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Bfd::new().name(), "bfd");
    }
}
