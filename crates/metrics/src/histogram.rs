//! Fixed-bin histograms.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with equal-width bins plus underflow and
/// overflow counters, for visualizing latency distributions from the
/// simulator or per-run metrics from the experiment harness.
///
/// # Examples
///
/// ```
/// use nfv_metrics::Histogram;
/// let mut h = Histogram::new(0.0, 1.0, 10).unwrap();
/// h.extend([0.05, 0.15, 0.15, 0.95, 2.0]);
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.bin_count(1), 2); // the two 0.15s
/// assert_eq!(h.overflow(), 1);   // the 2.0
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// Returns `None` unless `lo < hi` (both finite) and `bins ≥ 1`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        (lo.is_finite() && hi.is_finite() && lo < hi && bins >= 1).then(|| Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Creates a histogram sized to cover the given samples (min..max,
    /// with the top sample landing in the last bin).
    ///
    /// Returns `None` for empty/degenerate samples or `bins = 0`.
    #[must_use]
    pub fn fitted(samples: &[f64], bins: usize) -> Option<Self> {
        let finite: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return None;
        }
        // Nudge the top edge so max lands inside the last bin.
        let mut h = Self::new(lo, hi + (hi - lo) * 1e-9, bins)?;
        h.extend(finite);
        Some(h)
    }

    /// Records one observation (NaN is ignored).
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins.len()
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// The half-open range `[lo, hi)` covered by bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Observations below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the top of the range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including under/overflow.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Merges another histogram's counts into this one. Counter addition
    /// is exact, so the merge is associative and commutative and a merged
    /// histogram equals the single-pass histogram of the combined stream
    /// (see the merge property tests).
    ///
    /// Returns `false` — leaving `self` untouched — when the ranges or
    /// bin counts differ (merging differently-binned histograms would
    /// silently misattribute counts).
    pub fn merge(&mut self, other: &Histogram) -> bool {
        if self.lo.to_bits() != other.lo.to_bits()
            || self.hi.to_bits() != other.hi.to_bits()
            || self.bins.len() != other.bins.len()
        {
            return false;
        }
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            *mine += theirs;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        true
    }

    /// Renders an ASCII bar chart, one line per bin, bars scaled to
    /// `width` characters.
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &count) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_range(i);
            let bar = "#".repeat((count as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!("[{lo:>10.4}, {hi:>10.4})  {count:>8}  {bar}\n"));
        }
        if self.underflow > 0 {
            out.push_str(&format!("underflow: {}\n", self.underflow));
        }
        if self.overflow > 0 {
            out.push_str(&format!("overflow: {}\n", self.overflow));
        }
        out
    }
}

impl Extend<f64> for Histogram {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "histogram: {} samples over [{}, {}) in {} bins",
            self.count(),
            self.lo,
            self.hi,
            self.bins()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_ranges() {
        assert!(Histogram::new(1.0, 1.0, 4).is_none());
        assert!(Histogram::new(2.0, 1.0, 4).is_none());
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
    }

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for x in [0.0, 1.9, 2.0, 5.5, 9.999] {
            h.push(x);
        }
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(2), 1);
        assert_eq!(h.bin_count(4), 1);
        assert_eq!(h.bin_range(1), (2.0, 4.0));
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn under_and_overflow_are_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.extend([-0.1, 0.5, 1.0, 3.0, f64::NAN]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2); // 1.0 is exclusive at the top
        assert_eq!(h.count(), 4); // NaN ignored
    }

    #[test]
    fn fitted_covers_all_samples() {
        let samples = [3.0, 7.0, 5.0, 4.2];
        let h = Histogram::fitted(&samples, 4).unwrap();
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.count(), 4);
        assert!(Histogram::fitted(&[], 4).is_none());
        assert!(Histogram::fitted(&[1.0, 1.0], 4).is_none());
    }

    #[test]
    fn render_scales_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        h.extend([0.5, 0.5, 0.5, 0.5, 1.5]);
        let art = h.render(8);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].ends_with("########"));
        assert!(lines[1].contains('#'));
        assert!(lines[1].matches('#').count() < 8);
    }
}
