//! Plain-text result tables.

use std::fmt;

/// A fixed-width plain-text table, used by the figure-regeneration binaries
/// to print the same series the paper plots.
///
/// # Examples
///
/// ```
/// use nfv_metrics::Table;
/// let mut t = Table::new(vec!["requests", "BFDSU", "FFD"]);
/// t.row(vec!["30".into(), "91.8".into(), "68.6".into()]);
/// let text = t.to_string();
/// assert!(text.contains("BFDSU"));
/// assert!(text.contains("91.8"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept and
    /// widen the table.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Appends a row of formatted floats with `precision` decimals, prefixed
    /// by a label cell.
    pub fn numeric_row(
        &mut self,
        label: impl Into<String>,
        values: &[f64],
        precision: usize,
    ) -> &mut Self {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:.precision$}")));
        self.row(cells)
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let columns = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }

        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i > 0 {
                    f.write_str("  ")?;
                }
                write!(f, "{cell:>width$}")?;
            }
            writeln!(f)
        };

        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["n", "value"]);
        t.row(vec!["1".into(), "10".into()]);
        t.row(vec!["100".into(), "2".into()]);
        let out = t.to_string();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows share the same width.
        assert!(lines.iter().skip(2).all(|l| l.len() == lines[2].len()));
    }

    #[test]
    fn numeric_row_formats_with_precision() {
        let mut t = Table::new(vec!["algo", "w"]);
        t.numeric_row("rckk", &[0.123456], 3);
        assert!(t.to_string().contains("0.123"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_render_empty_cells() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x".into()]);
        let out = t.to_string();
        assert!(out.lines().count() >= 3);
    }

    #[test]
    fn extra_cells_widen_table() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
        let out = t.to_string();
        assert!(out.contains('2'));
    }
}
