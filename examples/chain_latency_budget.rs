//! Chain latency budget: attribute a request's latency to its stages.
//!
//! A security-sensitive tenant's traffic traverses NAT → FW → IDS → LB.
//! This example builds that chain explicitly, places it with the joint
//! optimizer and then decomposes the tenant's expected latency into
//! per-stage queueing time and inter-node hops — the breakdown an SRE
//! would use to decide which stage to scale next (Eq. (16) made
//! actionable).
//!
//! ```text
//! cargo run --example chain_latency_budget
//! ```

use nfv::metrics::Table;
use nfv::model::RequestId;
use nfv::queueing::ChainResponse;
use nfv::topology::{builders, LinkDelay};
use nfv::workload::{InstancePolicy, ScenarioBuilder};
use nfv::JointOptimizer;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 120 requests over 10 VNFs; chains are drawn at random, so the first
    // few requests give us realistic multi-tenant sharing on every VNF.
    let scenario = ScenarioBuilder::new()
        .vnfs(10)
        .requests(120)
        .min_chain_len(3)
        .max_chain_len(6)
        .instance_policy(InstancePolicy::PerUsers {
            requests_per_instance: 8,
        })
        .seed(31)
        .build()?;

    let fabric = builders::leaf_spine()
        .leaves(3)
        .spines(2)
        .hosts_per_leaf(3)
        .capacity_range(1500.0, 4000.0, 17)
        .link_delay(LinkDelay::from_micros(200.0))
        .build()?;

    let mut rng = StdRng::seed_from_u64(4);
    let solution = JointOptimizer::new().optimize(&scenario, &fabric, &mut rng)?;
    let loads = solution.instance_loads();

    // Pick the request with the longest chain as our tenant.
    let tenant = scenario
        .requests()
        .iter()
        .max_by_key(|r| r.chain().len())
        .expect("scenario has requests");
    println!(
        "tenant {} ({}, {}): chain {}\n",
        tenant.id(),
        tenant.arrival_rate(),
        tenant.delivery(),
        tenant.chain()
    );

    // Stage-by-stage budget.
    let mut table = Table::new(vec![
        "stage",
        "instance",
        "node",
        "inst util",
        "queue+svc (ms)",
        "share%",
    ]);
    let stage_loads: Vec<_> = tenant
        .chain()
        .iter()
        .map(|vnf| {
            let k = solution
                .instance_serving(tenant.id(), vnf)
                .expect("scheduled");
            &loads[vnf.as_usize()][k]
        })
        .collect();
    let response = ChainResponse::compute(stage_loads.iter().copied(), tenant.delivery())?;
    let total_response = response.total();

    for (hop, vnf) in tenant.chain().iter().enumerate() {
        let k = solution
            .instance_serving(tenant.id(), vnf)
            .expect("scheduled");
        let node = solution.node_serving(tenant.id(), vnf).expect("placed");
        let stage_time = response.stage_visit_times()[hop] * response.expected_rounds();
        table.row(vec![
            scenario.vnf(vnf).expect("known vnf").kind().to_string(),
            format!("#{}", k + 1),
            node.to_string(),
            stage_loads[hop].utilization().to_string(),
            format!("{:.3}", stage_time * 1e3),
            format!("{:.1}", stage_time / total_response * 100.0),
        ]);
    }
    print!("{table}");

    // Hop budget between consecutive stages.
    let mut link_total = LinkDelay::ZERO;
    let mut previous: Option<nfv::model::NodeId> = None;
    for vnf in tenant.chain().iter() {
        let node = solution.node_serving(tenant.id(), vnf).expect("placed");
        if let Some(prev) = previous {
            link_total = link_total + fabric.latency_between(prev, node)?;
        }
        previous = Some(node);
    }
    println!(
        "\nresponse total: {:.3} ms over {:.2} expected transmission rounds",
        total_response * 1e3,
        response.expected_rounds()
    );
    println!("link total (path-accurate): {link_total}");
    println!(
        "link total (Eq. 16 approximation): {}",
        fabric
            .link_delay()
            .over_hops(distinct_nodes(&solution, tenant.id()).saturating_sub(1))
    );
    Ok(())
}

fn distinct_nodes(solution: &nfv::JointSolution, request: RequestId) -> usize {
    solution.nodes_traversed(request).len()
}
