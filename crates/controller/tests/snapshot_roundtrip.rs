//! Checkpoint → serialize → restore round-trips: a controller restored
//! from a [`ControllerSnapshot`] (after a full JSONL encode/decode) must
//! be behaviorally indistinguishable from the original for the rest of
//! the run — bit-identical balanced latency, reports, and retry-wheel
//! pop order.
//!
//! Controllers are never compared with `==` directly: the retry wheel's
//! slot vectors may legitimately differ structurally after a rebuild
//! (insertion order vs. key order) while popping identically. Equality is
//! asserted on [`Controller::state`], [`Controller::report`], per-event
//! [`EventOutcome`]s, and continued runs past retry due times.

use nfv_controller::{Controller, ControllerConfig, ControllerSnapshot, RetryConfig};
use nfv_model::{
    ArrivalRate, Capacity, ComputeNode, DeliveryProbability, NodeId, Request, RequestId,
    ServiceChain, VnfId,
};
use nfv_placement::{Bfdsu, Placement, PlacementProblem, Placer};
use nfv_workload::churn::{ChurnEvent, ChurnTraceBuilder, TimedEvent};
use nfv_workload::{Scenario, ScenarioBuilder, ServiceRatePolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario(seed: u64) -> Scenario {
    ScenarioBuilder::new()
        .vnfs(4)
        .requests(24)
        .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
            target_utilization: 0.55,
        })
        .seed(seed)
        .build()
        .unwrap()
}

/// A cluster of `n` identical nodes roomy enough for the whole fleet,
/// with the initial BFDSU placement (the `node_failure.rs` fixture).
fn cluster(s: &Scenario, n: usize) -> (Vec<ComputeNode>, Placement) {
    let total: f64 = s.vnfs().iter().map(|v| v.total_demand().value()).sum();
    let nodes: Vec<ComputeNode> = (0..n)
        .map(|i| ComputeNode::new(NodeId::new(i as u32), Capacity::new(total * 2.0).unwrap()))
        .collect();
    let problem = PlacementProblem::new(nodes.clone(), s.vnfs().to_vec()).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let placement = Bfdsu::new()
        .place(&problem, &mut rng)
        .unwrap()
        .into_placement();
    (nodes, placement)
}

/// Runs `original` over `events[..split]`, checkpoints it through a full
/// JSONL encode/decode into `restored`, then drives both over the suffix
/// in lockstep and past the horizon, asserting bit-identical behavior at
/// every step.
fn assert_split_equivalence(
    mut original: Controller,
    mut restored: Controller,
    events: &[TimedEvent],
    split: usize,
    horizon: f64,
) {
    for event in &events[..split] {
        original.handle(event);
    }
    let snapshot = original.checkpoint();
    let decoded = ControllerSnapshot::from_jsonl(&snapshot.to_jsonl()).unwrap();
    assert_eq!(decoded, snapshot, "JSONL round-trip altered the snapshot");
    restored.restore(&decoded).unwrap();

    assert_eq!(restored.state(), original.state(), "ledger after restore");
    assert_eq!(restored.report(), original.report(), "report after restore");
    assert_eq!(
        restored.state().balanced_latency().to_bits(),
        original.state().balanced_latency().to_bits(),
        "balanced latency after restore"
    );

    for (i, event) in events[split..].iter().enumerate() {
        let want = original.handle(event);
        let got = restored.handle(event);
        assert_eq!(got, want, "outcome diverged at suffix event {i}");
    }

    // Run both far past the horizon so every queued retry comes due: any
    // difference in wheel pop order, backoff jitter, or attempt counters
    // would desynchronize the retry counters and the final report.
    original.finish(horizon + 200.0);
    restored.finish(horizon + 200.0);
    assert_eq!(restored.report(), original.report(), "final report");
    assert_eq!(restored.state(), original.state(), "final ledger");
    assert_eq!(
        restored.state().balanced_latency().to_bits(),
        original.state().balanced_latency().to_bits(),
        "final balanced latency"
    );
}

/// The full ladder on a live cluster — ticks, node outages, emergency
/// re-placement, and retries all cross the checkpoint boundary at three
/// different split points.
#[test]
fn clustered_resilient_controller_round_trips_mid_trace() {
    let s = scenario(17);
    let trace = ChurnTraceBuilder::new()
        .horizon(120.0)
        .arrival_rate(0.6)
        .mean_holding(15.0)
        .tick_period(10.0)
        .outage_rate(0.05)
        .mean_outage(6.0)
        .node_fleet(3)
        .node_mtbf(60.0)
        .node_mttr(8.0)
        .seed(7)
        .build(&s)
        .unwrap();
    let events = trace.events();
    assert!(events.len() >= 8, "trace too short to exercise splits");

    for split in [events.len() / 4, events.len() / 2, 3 * events.len() / 4] {
        let (nodes, placement) = cluster(&s, 3);
        let original =
            Controller::with_cluster(&s, nodes.clone(), &placement, ControllerConfig::resilient())
                .unwrap();
        let restored =
            Controller::with_cluster(&s, nodes, &placement, ControllerConfig::resilient()).unwrap();
        assert_split_equivalence(original, restored, events, split, trace.horizon());
    }
}

/// A cluster-free controller (no `cluster` section in the snapshot) with
/// retries and periodic re-optimization.
#[test]
fn cluster_free_controller_round_trips_mid_trace() {
    let s = scenario(23);
    let config = ControllerConfig {
        retry: Some(RetryConfig::bounded()),
        ..ControllerConfig::periodic_reopt()
    };
    let trace = ChurnTraceBuilder::new()
        .horizon(100.0)
        .arrival_rate(0.8)
        .mean_holding(12.0)
        .tick_period(8.0)
        .outage_rate(0.08)
        .mean_outage(5.0)
        .seed(11)
        .build(&s)
        .unwrap();
    let events = trace.events();

    for split in [1, events.len() / 3, events.len() - 1] {
        let original = Controller::new(&s, config);
        let restored = Controller::new(&s, config);
        assert_split_equivalence(original, restored, events, split, trace.horizon());
    }
}

/// An empty checkpoint (nothing handled yet) restores to a controller
/// that replays the whole trace identically to a fresh one.
#[test]
fn empty_checkpoint_restores_to_a_fresh_controller() {
    let s = scenario(5);
    let trace = ChurnTraceBuilder::new()
        .horizon(60.0)
        .arrival_rate(0.5)
        .tick_period(10.0)
        .seed(3)
        .build(&s)
        .unwrap();
    let original = Controller::new(&s, ControllerConfig::resilient());
    let restored = Controller::new(&s, ControllerConfig::resilient());
    assert_split_equivalence(original, restored, trace.events(), 0, trace.horizon());
}

mod random_histories {
    use super::*;
    use proptest::prelude::*;

    /// Decodes one packed word into a churn event at (monotone) `time`.
    /// Arrivals mint fresh ids; departures and instance events may be
    /// stale on purpose — the controller must account for them, and the
    /// restored controller must account for them identically.
    fn decode_event(w: u64, vnf_count: u32, next_id: &mut u32) -> ChurnEvent {
        match w & 0x7 {
            0..=2 => {
                let id = *next_id;
                *next_id += 1;
                let a = ((w >> 8) % u64::from(vnf_count)) as u32;
                let b = ((w >> 16) % u64::from(vnf_count)) as u32;
                let chain = if a == b {
                    vec![VnfId::new(a)]
                } else {
                    vec![VnfId::new(a), VnfId::new(b)]
                };
                let rate = 0.01 + ((w >> 24) & 0xFF) as f64 / 4096.0;
                let delivery = 0.9 + ((w >> 40) & 0x3F) as f64 / 1024.0;
                ChurnEvent::Arrival(Request::new(
                    RequestId::new(1000 + id),
                    ServiceChain::new(chain).unwrap(),
                    ArrivalRate::new(rate).unwrap(),
                    DeliveryProbability::new(delivery).unwrap(),
                ))
            }
            3 | 4 => {
                let span = u64::from(*next_id).max(1);
                ChurnEvent::Departure(RequestId::new(1000 + ((w >> 8) % span) as u32))
            }
            5 => ChurnEvent::InstanceDown {
                vnf: VnfId::new(((w >> 8) % u64::from(vnf_count)) as u32),
                instance: ((w >> 16) & 0x3) as usize,
            },
            6 => ChurnEvent::InstanceUp {
                vnf: VnfId::new(((w >> 8) % u64::from(vnf_count)) as u32),
                instance: ((w >> 16) & 0x3) as usize,
            },
            _ => ChurnEvent::ReoptimizeTick,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Random mutation-interleaved histories (arrivals, stale and live
        /// departures, instance churn, reopt ticks, retries coming due
        /// between events) split at a random point: `checkpoint()` →
        /// JSONL → `restore()` must reproduce every subsequent outcome,
        /// the final report, the ledger, and the retry-wheel pop order
        /// bit for bit.
        #[test]
        fn checkpoint_restore_round_trips_random_histories(
            // One event per word: kind in the low bits, then ids, rates,
            // and a time quantum (the vendored proptest has no tuple
            // strategy inside `vec`).
            packed in prop::collection::vec(0u64..u64::MAX, 1..120),
            split_sel in 0u64..u64::MAX,
        ) {
            let s = scenario(29);
            let config = ControllerConfig {
                retry: Some(RetryConfig::bounded()),
                ..ControllerConfig::periodic_reopt()
            };
            let vnf_count = s.vnfs().len() as u32;

            let mut events = Vec::with_capacity(packed.len());
            let mut time = 0.0;
            let mut next_id = 0u32;
            for &w in &packed {
                // Gaps up to ~32 s of virtual time let scheduled retries
                // come due mid-history, so the wheel cursor itself is
                // exercised across the checkpoint boundary.
                time += ((w >> 48) & 0xFF) as f64 * 0.125;
                events.push(TimedEvent::new(time, decode_event(w, vnf_count, &mut next_id)));
            }
            let split = (split_sel % (events.len() as u64 + 1)) as usize;

            let mut original = Controller::new(&s, config);
            let mut restored = Controller::new(&s, config);
            for event in &events[..split] {
                original.handle(event);
            }
            let snapshot = original.checkpoint();
            let decoded = ControllerSnapshot::from_jsonl(&snapshot.to_jsonl()).unwrap();
            prop_assert_eq!(&decoded, &snapshot);
            restored.restore(&decoded).unwrap();
            prop_assert_eq!(restored.state(), original.state());
            prop_assert_eq!(restored.report(), original.report());

            for event in &events[split..] {
                let want = original.handle(event);
                let got = restored.handle(event);
                prop_assert_eq!(got, want);
            }
            // Flush every pending retry: identical pop order is required
            // for the retry counters and reports to stay in lockstep.
            original.finish(time + 500.0);
            restored.finish(time + 500.0);
            prop_assert_eq!(restored.report(), original.report());
            prop_assert_eq!(restored.state(), original.state());
            prop_assert_eq!(
                restored.state().balanced_latency().to_bits(),
                original.state().balanced_latency().to_bits()
            );
        }
    }
}
