//! Pluggable journal sinks.

use std::collections::VecDeque;
use std::io::Write;

use crate::event::{TraceEvent, CSV_HEADER};

/// Receives journal records as they are emitted.
///
/// Sinks are observers: they must not influence the controller (no
/// panics on full buffers, no blocking on virtual time). I/O errors are
/// swallowed after the first failure — a broken pipe must not abort a
/// deterministic run.
pub trait EventSink: Send {
    /// Records one event.
    fn record(&mut self, event: &TraceEvent);
    /// Flushes any buffered output (end of run).
    fn flush(&mut self) {}
}

/// A bounded in-memory ring: keeps the most recent `capacity` events and
/// counts the ones that fell off the front.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted to honor the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the ring into the retained events, oldest first.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into()
    }
}

impl EventSink for RingSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event.clone());
    }
}

/// Writes each event as one JSON line (`TraceEvent::to_json`).
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    writer: W,
    failed: bool,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            failed: false,
        }
    }

    /// Whether any write failed (output is then truncated, never torn
    /// mid-line).
    #[must_use]
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Unwraps the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.failed {
            return;
        }
        let mut line = event.to_json();
        line.push('\n');
        self.failed = self.writer.write_all(line.as_bytes()).is_err();
    }

    fn flush(&mut self) {
        if !self.failed {
            self.failed = self.writer.flush().is_err();
        }
    }
}

/// Writes the fixed-column CSV trace shape (`CSV_HEADER` once, then one
/// row per event).
#[derive(Debug)]
pub struct CsvSink<W: Write + Send> {
    writer: W,
    wrote_header: bool,
    failed: bool,
}

impl<W: Write + Send> CsvSink<W> {
    /// Wraps a writer; the header is emitted before the first row.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            wrote_header: false,
            failed: false,
        }
    }

    /// Whether any write failed.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Unwraps the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write + Send> EventSink for CsvSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.failed {
            return;
        }
        if !self.wrote_header {
            self.wrote_header = true;
            self.failed = self
                .writer
                .write_all(format!("{CSV_HEADER}\n").as_bytes())
                .is_err();
            if self.failed {
                return;
            }
        }
        let mut row = event.to_csv_row();
        row.push('\n');
        self.failed = self.writer.write_all(row.as_bytes()).is_err();
    }

    fn flush(&mut self) {
        if !self.failed {
            self.failed = self.writer.flush().is_err();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use nfv_model::RequestId;

    fn event(seq: u64) -> TraceEvent {
        TraceEvent {
            seq,
            time: seq as f64,
            tick: 0,
            kind: EventKind::Admit {
                request: RequestId::new(seq as u32),
                hops: 1,
            },
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_and_counts_drops() {
        let mut ring = RingSink::new(3);
        for i in 0..5 {
            ring.record(&event(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let seqs: Vec<u64> = ring.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(ring.into_events().len(), 3);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut ring = RingSink::new(0);
        ring.record(&event(0));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&event(0));
        sink.record(&event(1));
        sink.flush();
        assert!(!sink.failed());
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(TraceEvent::from_json(lines[1]).unwrap(), event(1));
    }

    #[test]
    fn csv_sink_writes_header_once() {
        let mut sink = CsvSink::new(Vec::new());
        sink.record(&event(0));
        sink.record(&event(1));
        sink.flush();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], CSV_HEADER);
        assert!(lines[1].starts_with("Admit,"));
    }

    /// A writer that fails after `ok` bytes, to exercise the error latch.
    struct Flaky {
        ok: usize,
    }
    impl Write for Flaky {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.ok >= buf.len() {
                self.ok -= buf.len();
                Ok(buf.len())
            } else {
                Err(std::io::Error::other("full"))
            }
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn io_errors_latch_instead_of_panicking() {
        let mut sink = JsonlSink::new(Flaky { ok: 80 });
        for i in 0..10 {
            sink.record(&event(i));
        }
        assert!(sink.failed());
    }
}
