//! Shared fixtures for the criterion benchmarks and the `figures` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod report;

pub use report::{
    BenchReport, FigureTiming, FleetPointBench, ObsBench, RecoveryBench, ReplayReport, ReportError,
    SearchReport, TelemetryReport,
};

use nfv_model::{ArrivalRate, ServiceChain};
use nfv_placement::PlacementProblem;
use nfv_topology::builders;
use nfv_workload::{InstancePolicy, ScenarioBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a placement problem of the given size, mirroring the paper's
/// parameter ranges (capacities 1000–5000 units, chains ≤ 6).
///
/// # Panics
///
/// Panics on structurally impossible sizes (zero nodes/VNFs); bench
/// fixtures are meant to be valid by construction.
#[must_use]
pub fn placement_problem(
    nodes: usize,
    vnfs: usize,
    requests: usize,
    seed: u64,
) -> PlacementProblem {
    let topology = builders::random_connected()
        .nodes(nodes)
        .seed(seed)
        .capacity_range(1000.0, 5000.0, seed ^ 0xAA)
        .build()
        .expect("valid fixture topology");
    let scenario = ScenarioBuilder::new()
        .vnfs(vnfs)
        .requests(requests)
        .instance_policy(InstancePolicy::PerUsers {
            requests_per_instance: 10,
        })
        .seed(seed)
        .build()
        .expect("valid fixture scenario");
    let chains: Vec<ServiceChain> = scenario
        .requests()
        .iter()
        .map(|r| r.chain().clone())
        .collect();
    PlacementProblem::with_chains(
        topology.compute_nodes().to_vec(),
        scenario.vnfs().to_vec(),
        chains,
    )
    .expect("valid fixture problem")
}

/// How many back-to-back repetitions a timed measurement needs so it
/// spans at least `floor_seconds`, given one probed repetition took
/// `measured_seconds`.
///
/// The probe is clamped below at 100 µs before dividing: timers can
/// report a near-zero (or exactly zero) duration for a fast workload,
/// and dividing the floor by ~0 would schedule hundreds of millions of
/// repetitions — a bench run that never finishes. The result is further
/// capped at `max_reps` and never below 1, so any probe value — zero,
/// negative, infinite or NaN — yields a sane repetition count.
#[must_use]
pub fn scaled_reps(floor_seconds: f64, measured_seconds: f64, max_reps: u64) -> u64 {
    const MIN_MEASURED_SECONDS: f64 = 1e-4;
    let per_rep = if measured_seconds.is_finite() {
        measured_seconds.max(MIN_MEASURED_SECONDS)
    } else {
        MIN_MEASURED_SECONDS
    };
    let reps = (floor_seconds / per_rep).ceil();
    if reps.is_nan() || reps < 1.0 {
        // Non-positive floors and NaN land here.
        return 1;
    }
    let capped = max_reps.max(1) as f64;
    if reps >= capped {
        max_reps.max(1)
    } else {
        reps as u64
    }
}

/// Draws `n` arrival rates uniformly from the paper's `[1, 100]` pps range.
#[must_use]
pub fn arrival_rates(n: usize, seed: u64) -> Vec<ArrivalRate> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| ArrivalRate::new(rng.gen_range(1.0..=100.0)).expect("positive range"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(
            placement_problem(8, 10, 50, 1),
            placement_problem(8, 10, 50, 1)
        );
        assert_eq!(arrival_rates(10, 2), arrival_rates(10, 2));
    }

    #[test]
    fn scaled_reps_survives_a_zero_second_probe() {
        // The regression this pins: a 0.25s floor divided by a ~0s probe
        // used to schedule ~250 million repetitions. The 100 µs clamp
        // bounds a zero (or negative, or NaN) probe at 2500 reps, and
        // the cap bounds it further.
        assert_eq!(scaled_reps(0.25, 0.0, 1_000_000), 2_500);
        assert_eq!(scaled_reps(0.25, -1.0, 1_000_000), 2_500);
        assert_eq!(scaled_reps(0.25, f64::NAN, 1_000_000), 2_500);
        assert_eq!(scaled_reps(0.25, 1e-12, 1_000), 1_000);
        // Ordinary probes divide as before.
        assert_eq!(scaled_reps(0.25, 0.05, 1_000_000), 5);
        assert_eq!(scaled_reps(0.25, 0.06, 1_000_000), 5);
        // A probe already past the floor needs exactly one rep, and the
        // result never drops below one whatever the floor.
        assert_eq!(scaled_reps(0.25, 1.0, 1_000_000), 1);
        assert_eq!(scaled_reps(0.0, 0.5, 1_000_000), 1);
        assert_eq!(scaled_reps(-1.0, 0.5, 1_000_000), 1);
        assert_eq!(scaled_reps(0.25, 0.1, 0), 1);
    }

    #[test]
    fn rates_are_in_paper_range() {
        assert!(arrival_rates(200, 3)
            .iter()
            .all(|r| (1.0..=100.0).contains(&r.value())));
    }
}
