//! The discrete-event simulation engine.

use nfv_metrics::Summary;
use rand::Rng;

use crate::events::{Event, EventQueue};
use crate::sampler::Exponential;
use crate::station::{Offer, Packet, Station};
use crate::{SimConfig, SimReport};

/// Discrete-event simulator executing a [`SimConfig`]; see the crate-level
/// documentation for the model.
///
/// The simulator is a plain state machine over a future-event list; given
/// the same config and a seeded RNG its output is deterministic.
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator for the given configuration.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        Self { config }
    }

    /// The simulator's configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the simulation to its delivery target (or event cap) and
    /// reports the measured statistics.
    pub fn run<R: Rng + ?Sized>(&self, rng: &mut R) -> SimReport {
        let cfg = &self.config;
        let arrivals: Vec<Exponential> = cfg
            .requests
            .iter()
            .map(|r| Exponential::new(r.arrival_rate).expect("config validated"))
            .collect();
        let services: Vec<Exponential> = cfg
            .stations
            .iter()
            .map(|s| Exponential::new(s.service_rate).expect("config validated"))
            .collect();

        let mut stations: Vec<Station> = cfg
            .stations
            .iter()
            .map(|s| Station::new(s.buffer))
            .collect();
        let mut queue = EventQueue::new();
        let mut now = 0.0f64;

        // Seed one external arrival per request.
        for (r, exp) in arrivals.iter().enumerate() {
            queue.schedule(exp.sample(rng), Event::ExternalArrival { request: r });
        }

        let mut overall = Summary::new();
        let mut per_request: Vec<Summary> = cfg.requests.iter().map(|_| Summary::new()).collect();
        let mut delivered_total: u64 = 0;
        let mut delivered_measured: u64 = 0;
        let mut retransmissions: u64 = 0;
        let mut events_processed: u64 = 0;
        let mut truncated = false;
        // Arrival-visit counts before warmup end are excluded from the rate
        // estimate by remembering the offset.
        let mut warmup_time = 0.0f64;
        let mut warmup_visits: Vec<u64> = vec![0; cfg.stations.len()];

        while delivered_measured < cfg.target_deliveries {
            if events_processed >= cfg.max_events {
                truncated = true;
                break;
            }
            let Some((time, event)) = queue.pop() else {
                unreachable!("external arrivals are perpetually rescheduled");
            };
            now = time;
            events_processed += 1;

            match event {
                Event::ExternalArrival { request } => {
                    // Next external arrival of this request.
                    queue.schedule(
                        now + arrivals[request].sample(rng),
                        Event::ExternalArrival { request },
                    );
                    let packet = Packet {
                        request,
                        first_arrival: now,
                        hop: 0,
                    };
                    let station = cfg.requests[request].path[0];
                    if stations[station].arrive(packet, now) == Offer::StartService {
                        queue.schedule(
                            now + services[station].sample(rng),
                            Event::ServiceComplete { station },
                        );
                    }
                }
                Event::ServiceComplete { station } => {
                    let (mut packet, start_next) = stations[station].complete(now);
                    if start_next {
                        queue.schedule(
                            now + services[station].sample(rng),
                            Event::ServiceComplete { station },
                        );
                    }
                    let spec = &cfg.requests[packet.request];
                    packet.hop += 1;
                    if packet.hop < spec.path.len() {
                        // Forward to the next station on the chain.
                        let next = spec.path[packet.hop];
                        if stations[next].arrive(packet, now) == Offer::StartService {
                            queue.schedule(
                                now + services[next].sample(rng),
                                Event::ServiceComplete { station: next },
                            );
                        }
                    } else if rng.gen_bool(spec.delivery_probability) {
                        // Delivered end-to-end.
                        delivered_total += 1;
                        if delivered_total > cfg.warmup_deliveries {
                            if delivered_measured == 0 {
                                warmup_time = now;
                                for (w, s) in warmup_visits.iter_mut().zip(&stations) {
                                    *w = s.arrivals();
                                }
                            }
                            delivered_measured += 1;
                            let latency = now - packet.first_arrival;
                            overall.push(latency);
                            per_request[packet.request].push(latency);
                        }
                    } else {
                        // NACK: retransmit from the source immediately,
                        // keeping the original arrival timestamp.
                        retransmissions += 1;
                        packet.hop = 0;
                        let first = spec.path[0];
                        if stations[first].arrive(packet, now) == Offer::StartService {
                            queue.schedule(
                                now + services[first].sample(rng),
                                Event::ServiceComplete { station: first },
                            );
                        }
                    }
                }
            }
        }

        let measured_span = (now - warmup_time).max(f64::MIN_POSITIVE);
        let station_utilization: Vec<f64> = stations
            .iter()
            .map(|s| (s.busy_time(now) / now.max(f64::MIN_POSITIVE)).clamp(0.0, 1.0))
            .collect();
        let station_arrival_rate: Vec<f64> = stations
            .iter()
            .zip(&warmup_visits)
            .map(|(s, &w)| (s.arrivals().saturating_sub(w)) as f64 / measured_span)
            .collect();
        let station_mean_packets: Vec<f64> = stations.iter().map(|s| s.mean_packets(now)).collect();
        let station_dropped: Vec<u64> = stations.iter().map(Station::dropped).collect();

        SimReport {
            overall_latency: overall,
            per_request_latency: per_request,
            station_utilization,
            station_arrival_rate,
            station_mean_packets,
            station_dropped,
            delivered: delivered_measured,
            retransmissions,
            events_processed,
            sim_time: now,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(config: SimConfig, seed: u64) -> SimReport {
        Simulator::new(config).run(&mut StdRng::seed_from_u64(seed))
    }

    fn mm1_config(lambda: f64, mu: f64, p: f64) -> SimConfig {
        SimConfig::builder()
            .station(mu)
            .unwrap()
            .request(lambda, p, vec![0])
            .unwrap()
            .target_deliveries(60_000)
            .warmup_deliveries(6_000)
            .build()
            .unwrap()
    }

    #[test]
    fn mm1_mean_latency_matches_theory() {
        // rho = 0.7: E[T] = 1/(100-70) = 33.3 ms.
        let report = run(mm1_config(70.0, 100.0, 1.0), 1);
        let expected = 1.0 / 30.0;
        let rel = (report.mean_latency() - expected).abs() / expected;
        assert!(
            rel < 0.05,
            "mean {} vs expected {}",
            report.mean_latency(),
            expected
        );
        assert!(!report.truncated());
    }

    #[test]
    fn mm1_utilization_matches_rho() {
        let report = run(mm1_config(50.0, 100.0, 1.0), 2);
        assert!((report.station_utilization()[0] - 0.5).abs() < 0.02);
    }

    #[test]
    fn loss_feedback_inflates_arrival_rate_and_latency() {
        // lambda = 50, P = 0.8: effective rate 62.5; W per delivery
        // = (1/P)/(mu - 62.5) = 1.25/37.5.
        let report = run(mm1_config(50.0, 100.0, 0.8), 3);
        assert!(
            (report.station_arrival_rate()[0] - 62.5).abs() < 2.0,
            "arrival rate {}",
            report.station_arrival_rate()[0]
        );
        let expected = 1.25 / 37.5;
        let rel = (report.mean_latency() - expected).abs() / expected;
        assert!(
            rel < 0.06,
            "mean {} vs expected {}",
            report.mean_latency(),
            expected
        );
        assert!(report.retransmissions() > 0);
    }

    #[test]
    fn tandem_chain_matches_jackson_sum() {
        // Two stations in series, lambda = 40: E[T] = 1/(100-40) + 1/(80-40).
        let config = SimConfig::builder()
            .station(100.0)
            .unwrap()
            .station(80.0)
            .unwrap()
            .request(40.0, 1.0, vec![0, 1])
            .unwrap()
            .target_deliveries(60_000)
            .warmup_deliveries(6_000)
            .build()
            .unwrap();
        let report = run(config, 4);
        let expected = 1.0 / 60.0 + 1.0 / 40.0;
        let rel = (report.mean_latency() - expected).abs() / expected;
        assert!(
            rel < 0.05,
            "mean {} vs expected {}",
            report.mean_latency(),
            expected
        );
    }

    #[test]
    fn merged_flows_load_shared_station() {
        // Two requests share station 0; utilization ~ (30+40)/100.
        let config = SimConfig::builder()
            .station(100.0)
            .unwrap()
            .request(30.0, 1.0, vec![0])
            .unwrap()
            .request(40.0, 1.0, vec![0])
            .unwrap()
            .target_deliveries(60_000)
            .warmup_deliveries(6_000)
            .build()
            .unwrap();
        let report = run(config, 5);
        assert!((report.station_utilization()[0] - 0.7).abs() < 0.02);
        // Both requests see the same shared queue, so similar latency.
        let l0 = report.per_request_latency()[0].mean();
        let l1 = report.per_request_latency()[1].mean();
        assert!((l0 - l1).abs() / l0 < 0.1);
    }

    #[test]
    fn unstable_config_truncates_instead_of_hanging() {
        let config = SimConfig::builder()
            .station(10.0)
            .unwrap()
            .request(20.0, 1.0, vec![0])
            .unwrap()
            .target_deliveries(1_000_000)
            .max_events(100_000)
            .build()
            .unwrap();
        let report = run(config, 6);
        assert!(report.truncated());
        assert!(report.events_processed() <= 100_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(mm1_config(50.0, 100.0, 0.95), 7);
        let b = run(mm1_config(50.0, 100.0, 0.95), 7);
        assert_eq!(a, b);
        let c = run(mm1_config(50.0, 100.0, 0.95), 8);
        assert_ne!(a.mean_latency(), c.mean_latency());
    }

    #[test]
    fn mean_packets_matches_eq10() {
        // rho = 0.6: E[N] = 0.6/0.4 = 1.5 (paper Eq. (10)).
        let report = run(mm1_config(60.0, 100.0, 1.0), 11);
        assert!(
            (report.station_mean_packets()[0] - 1.5).abs() < 0.1,
            "E[N] = {}",
            report.station_mean_packets()[0]
        );
        assert_eq!(report.congestion_drops(), 0);
    }

    #[test]
    fn finite_buffer_blocking_matches_mm1k() {
        // M/M/1/K with K = 3 total places (buffer 2): blocking probability
        // pi_K = (1 - rho) rho^K / (1 - rho^{K+1}); rho = 0.8 -> ~0.1734.
        let config = SimConfig::builder()
            .station_with_buffer(100.0, 2)
            .unwrap()
            .request(80.0, 1.0, vec![0])
            .unwrap()
            .target_deliveries(80_000)
            .warmup_deliveries(8_000)
            .build()
            .unwrap();
        let report = run(config, 12);
        let offered = report.station_dropped()[0] + report.delivered() + 8_000;
        let blocking = report.station_dropped()[0] as f64 / offered as f64;
        let rho: f64 = 0.8;
        let expected = (1.0 - rho) * rho.powi(3) / (1.0 - rho.powi(4));
        assert!(
            (blocking - expected).abs() < 0.02,
            "blocking {blocking} vs expected {expected}"
        );
        assert!(report.congestion_drops() > 0);
    }

    #[test]
    fn finite_buffer_keeps_overloaded_station_bounded() {
        // Heavily overloaded but with a finite buffer: the simulation
        // terminates by deliveries (the server is always busy) instead of
        // building an unbounded queue.
        let config = SimConfig::builder()
            .station_with_buffer(50.0, 10)
            .unwrap()
            .request(500.0, 1.0, vec![0])
            .unwrap()
            .target_deliveries(20_000)
            .warmup_deliveries(1_000)
            .build()
            .unwrap();
        let report = run(config, 13);
        assert!(!report.truncated());
        assert!(report.station_utilization()[0] > 0.98);
        assert!(report.station_mean_packets()[0] <= 11.5);
        assert!(report.congestion_drops() > 50_000);
    }

    #[test]
    fn p99_exceeds_mean() {
        let mut report = run(mm1_config(70.0, 100.0, 1.0), 9);
        let mean = report.mean_latency();
        assert!(report.latency_percentile(0.99) > mean);
        // For M/M/1 the sojourn is exponential: p99 ~ ln(100) * mean ≈ 4.6x.
        let ratio = report.latency_percentile(0.99) / mean;
        assert!((3.5..6.0).contains(&ratio), "p99/mean ratio {ratio}");
    }
}
