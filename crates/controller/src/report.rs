//! Observability: counters and periodic snapshots.

use std::fmt;

use nfv_telemetry::json::{self, JsonError, JsonObject};
use serde::{Deserialize, Serialize};

/// A snapshot of the controller's counters and derived statistics, taken
/// at a point in virtual time. Snapshots of two same-seed runs are
/// identical field-for-field (see the determinism tests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerReport {
    /// Virtual time of the snapshot, seconds.
    pub time: f64,
    /// Requests admitted (base population + churn arrivals).
    pub admitted: u64,
    /// Arrivals refused by admission control.
    pub rejected: u64,
    /// Requests that departed normally.
    pub departed: u64,
    /// Requests dropped by load shedding (evictions and failed failovers).
    pub shed: u64,
    /// Requests moved between instances while failing over a down
    /// instance.
    pub migrated_failover: u64,
    /// Requests moved between instances by re-optimization passes.
    pub migrated_reopt: u64,
    /// Requests drained off retiring instances by re-placement passes.
    pub migrated_replace: u64,
    /// Re-optimization ticks observed (whether or not acted upon).
    pub ticks: u64,
    /// Ticks whose migration plan was applied.
    pub reopts_applied: u64,
    /// Ticks skipped by the hysteresis threshold.
    pub reopts_skipped: u64,
    /// Instances added by re-placement passes.
    pub instances_added: u64,
    /// Instances retired by re-placement passes.
    pub instances_retired: u64,
    /// Instances relocated to another node by re-placement passes.
    pub relocations: u64,
    /// Ticks whose re-placement plan was applied.
    pub replaces_applied: u64,
    /// Ticks whose re-placement plan was aborted by the migration-cost
    /// hysteresis gate.
    pub replaces_aborted: u64,
    /// `NodeDown` events applied to the cluster (overlapping windows
    /// included).
    pub node_downs: u64,
    /// `NodeUp` events applied to the cluster.
    pub node_ups: u64,
    /// Outage events naming a node or `(vnf, instance)` the controller
    /// doesn't track; counted and ignored.
    pub stale_outage_events: u64,
    /// Emergency (out-of-tick) re-placement passes that changed the
    /// cluster after a node failure.
    pub emergency_replaces: u64,
    /// Retry re-offers attempted from the backoff queue.
    pub retries_attempted: u64,
    /// Previously refused requests admitted by a retry.
    pub retry_admitted: u64,
    /// Requests abandoned for good after exhausting the retry budget (or
    /// finding the queue full).
    pub retry_abandoned: u64,
    /// Quiet-tick refiner plans committed (searched placements adopted).
    pub refines_applied: u64,
    /// Quiet-tick refiner plans rejected by the objective-gain hysteresis
    /// (or searches that found no improvement).
    pub refines_rejected: u64,
    /// Requests still waiting in the retry queue at snapshot time.
    pub retry_pending: u64,
    /// Requests active at snapshot time.
    pub active: u64,
    /// Time-weighted mean of the predicted average delivery response time
    /// (Eq. (11) aggregated system-wide), seconds.
    pub mean_latency: f64,
    /// Predicted average delivery response time at snapshot time, seconds.
    pub current_latency: f64,
    /// Highest per-instance utilization `ρ` at snapshot time.
    pub peak_utilization: f64,
}

impl ControllerReport {
    /// Total migrations from all causes.
    #[must_use]
    pub fn migrated(&self) -> u64 {
        self.migrated_failover + self.migrated_reopt + self.migrated_replace
    }

    /// Total re-placement instance operations (adds + retirements +
    /// relocations).
    #[must_use]
    pub fn instance_ops(&self) -> u64 {
        self.instances_added + self.instances_retired + self.relocations
    }

    /// Requests lost for good: refused or shed, minus those a retry later
    /// re-admitted. (`admitted`/`rejected` count first offers only, so a
    /// successful retry repairs an earlier rejection or shed.)
    #[must_use]
    pub fn lost(&self) -> u64 {
        (self.rejected + self.shed).saturating_sub(self.retry_admitted)
    }

    /// Fraction of arrivals refused, in `[0, 1]`; 0 when nothing arrived.
    #[must_use]
    pub fn rejection_rate(&self) -> f64 {
        let offered = self.admitted + self.rejected;
        if offered == 0 {
            0.0
        } else {
            self.rejected as f64 / offered as f64
        }
    }

    /// Every integer counter as `(name, value)` pairs in declaration
    /// order — the feed for the fleet's metrics registry and the flight
    /// recorder's post-mortem dumps. Names are stable snake_case slugs.
    #[must_use]
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("admitted", self.admitted),
            ("rejected", self.rejected),
            ("departed", self.departed),
            ("shed", self.shed),
            ("migrated_failover", self.migrated_failover),
            ("migrated_reopt", self.migrated_reopt),
            ("migrated_replace", self.migrated_replace),
            ("ticks", self.ticks),
            ("reopts_applied", self.reopts_applied),
            ("reopts_skipped", self.reopts_skipped),
            ("instances_added", self.instances_added),
            ("instances_retired", self.instances_retired),
            ("relocations", self.relocations),
            ("replaces_applied", self.replaces_applied),
            ("replaces_aborted", self.replaces_aborted),
            ("node_downs", self.node_downs),
            ("node_ups", self.node_ups),
            ("stale_outage_events", self.stale_outage_events),
            ("emergency_replaces", self.emergency_replaces),
            ("retries_attempted", self.retries_attempted),
            ("retry_admitted", self.retry_admitted),
            ("retry_abandoned", self.retry_abandoned),
            ("refines_applied", self.refines_applied),
            ("refines_rejected", self.refines_rejected),
            ("retry_pending", self.retry_pending),
            ("active", self.active),
        ]
    }

    /// A fixed-precision one-line rendering, stable across runs.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "t={:.3}s active={} admitted={} rejected={} ({:.2}%) departed={} shed={} \
             migrated={}+{}+{} ticks={} (applied {}, skipped {}) \
             inst(+{} -{} moved {}; applied {}, aborted {}) \
             nodes(down {}, up {}, stale {}, emergency {}) \
             refine(applied {}, rejected {}) \
             retry({} tried, {} ok, {} dropped, {} queued) lost={} \
             W={:.6}s mean W={:.6}s rho_max={:.4}",
            self.time,
            self.active,
            self.admitted,
            self.rejected,
            self.rejection_rate() * 100.0,
            self.departed,
            self.shed,
            self.migrated_failover,
            self.migrated_reopt,
            self.migrated_replace,
            self.ticks,
            self.reopts_applied,
            self.reopts_skipped,
            self.instances_added,
            self.instances_retired,
            self.relocations,
            self.replaces_applied,
            self.replaces_aborted,
            self.node_downs,
            self.node_ups,
            self.stale_outage_events,
            self.emergency_replaces,
            self.refines_applied,
            self.refines_rejected,
            self.retries_attempted,
            self.retry_admitted,
            self.retry_abandoned,
            self.retry_pending,
            self.lost(),
            self.current_latency,
            self.mean_latency,
            self.peak_utilization,
        )
    }

    /// Encodes the snapshot as one flat JSON object (one journal line),
    /// for diffing and archiving runs. Floats round-trip exactly
    /// (shortest representation, non-finite values as strings).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_f64("time", self.time)
            .field_u64("admitted", self.admitted)
            .field_u64("rejected", self.rejected)
            .field_u64("departed", self.departed)
            .field_u64("shed", self.shed)
            .field_u64("migrated_failover", self.migrated_failover)
            .field_u64("migrated_reopt", self.migrated_reopt)
            .field_u64("migrated_replace", self.migrated_replace)
            .field_u64("ticks", self.ticks)
            .field_u64("reopts_applied", self.reopts_applied)
            .field_u64("reopts_skipped", self.reopts_skipped)
            .field_u64("instances_added", self.instances_added)
            .field_u64("instances_retired", self.instances_retired)
            .field_u64("relocations", self.relocations)
            .field_u64("replaces_applied", self.replaces_applied)
            .field_u64("replaces_aborted", self.replaces_aborted)
            .field_u64("node_downs", self.node_downs)
            .field_u64("node_ups", self.node_ups)
            .field_u64("stale_outage_events", self.stale_outage_events)
            .field_u64("emergency_replaces", self.emergency_replaces)
            .field_u64("retries_attempted", self.retries_attempted)
            .field_u64("retry_admitted", self.retry_admitted)
            .field_u64("retry_abandoned", self.retry_abandoned)
            .field_u64("refines_applied", self.refines_applied)
            .field_u64("refines_rejected", self.refines_rejected)
            .field_u64("retry_pending", self.retry_pending)
            .field_u64("active", self.active)
            .field_f64("mean_latency", self.mean_latency)
            .field_f64("current_latency", self.current_latency)
            .field_f64("peak_utilization", self.peak_utilization);
        obj.finish()
    }

    /// Decodes a snapshot encoded by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// [`JsonError`] when the line is malformed or a field is missing.
    pub fn from_json(line: &str) -> Result<Self, JsonError> {
        let fields = json::parse_object(line)?;
        let missing = |message| JsonError { message, at: 0 };
        let u64_of = |key| json::get_u64(&fields, key).ok_or(missing("missing integer field"));
        let f64_of = |key| json::get_f64(&fields, key).ok_or(missing("missing float field"));
        Ok(Self {
            time: f64_of("time")?,
            admitted: u64_of("admitted")?,
            rejected: u64_of("rejected")?,
            departed: u64_of("departed")?,
            shed: u64_of("shed")?,
            migrated_failover: u64_of("migrated_failover")?,
            migrated_reopt: u64_of("migrated_reopt")?,
            migrated_replace: u64_of("migrated_replace")?,
            ticks: u64_of("ticks")?,
            reopts_applied: u64_of("reopts_applied")?,
            reopts_skipped: u64_of("reopts_skipped")?,
            instances_added: u64_of("instances_added")?,
            instances_retired: u64_of("instances_retired")?,
            relocations: u64_of("relocations")?,
            replaces_applied: u64_of("replaces_applied")?,
            replaces_aborted: u64_of("replaces_aborted")?,
            node_downs: u64_of("node_downs")?,
            node_ups: u64_of("node_ups")?,
            stale_outage_events: u64_of("stale_outage_events")?,
            emergency_replaces: u64_of("emergency_replaces")?,
            retries_attempted: u64_of("retries_attempted")?,
            retry_admitted: u64_of("retry_admitted")?,
            retry_abandoned: u64_of("retry_abandoned")?,
            refines_applied: u64_of("refines_applied")?,
            refines_rejected: u64_of("refines_rejected")?,
            retry_pending: u64_of("retry_pending")?,
            active: u64_of("active")?,
            mean_latency: f64_of("mean_latency")?,
            current_latency: f64_of("current_latency")?,
            peak_utilization: f64_of("peak_utilization")?,
        })
    }
}

impl fmt::Display for ControllerReport {
    /// The same stable one-liner as [`render`](Self::render).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ControllerReport {
        ControllerReport {
            time: 10.0,
            admitted: 30,
            rejected: 10,
            departed: 5,
            shed: 1,
            migrated_failover: 2,
            migrated_reopt: 3,
            migrated_replace: 4,
            ticks: 4,
            reopts_applied: 2,
            reopts_skipped: 2,
            instances_added: 2,
            instances_retired: 1,
            relocations: 1,
            replaces_applied: 2,
            replaces_aborted: 1,
            node_downs: 2,
            node_ups: 1,
            stale_outage_events: 3,
            emergency_replaces: 1,
            retries_attempted: 5,
            retry_admitted: 4,
            retry_abandoned: 1,
            refines_applied: 2,
            refines_rejected: 1,
            retry_pending: 2,
            active: 24,
            mean_latency: 0.01,
            current_latency: 0.012,
            peak_utilization: 0.9,
        }
    }

    #[test]
    fn rejection_rate_and_migrations() {
        let r = report();
        assert!((r.rejection_rate() - 0.25).abs() < 1e-12);
        assert_eq!(r.migrated(), 9);
        assert_eq!(r.instance_ops(), 4);
        let empty = ControllerReport {
            admitted: 0,
            rejected: 0,
            ..report()
        };
        assert_eq!(empty.rejection_rate(), 0.0);
    }

    #[test]
    fn render_is_deterministic() {
        assert_eq!(report().render(), report().render());
        assert!(report().render().contains("rejected=10 (25.00%)"));
        assert!(report().render().contains("nodes(down 2, up 1, stale 3"));
        assert!(report().render().contains("lost=7"));
    }

    #[test]
    fn json_round_trip_is_exact() {
        let r = report();
        let line = r.to_json();
        assert_eq!(ControllerReport::from_json(&line).unwrap(), r);
        // Non-finite latencies (a saturated run) survive the journal.
        let saturated = ControllerReport {
            mean_latency: f64::INFINITY,
            current_latency: f64::INFINITY,
            ..report()
        };
        let back = ControllerReport::from_json(&saturated.to_json()).unwrap();
        assert_eq!(back, saturated);
        // Awkward floats round-trip bit-exactly.
        let precise = ControllerReport {
            time: 0.1 + 0.2,
            mean_latency: f64::MIN_POSITIVE,
            ..report()
        };
        let back = ControllerReport::from_json(&precise.to_json()).unwrap();
        assert_eq!(back.time.to_bits(), precise.time.to_bits());
        assert_eq!(back.mean_latency.to_bits(), precise.mean_latency.to_bits());
    }

    #[test]
    fn json_rejects_missing_fields() {
        assert!(ControllerReport::from_json(r#"{"time":1.0}"#).is_err());
        assert!(ControllerReport::from_json("not json").is_err());
    }

    #[test]
    fn display_matches_render() {
        let r = report();
        assert_eq!(r.to_string(), r.render());
    }

    #[test]
    fn lost_subtracts_retry_repairs_and_saturates() {
        let r = report();
        assert_eq!(r.lost(), 10 + 1 - 4);
        let repaired = ControllerReport {
            rejected: 1,
            shed: 0,
            retry_admitted: 5,
            ..report()
        };
        assert_eq!(repaired.lost(), 0, "saturating, never negative");
    }
}
