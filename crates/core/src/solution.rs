//! The combined placement + scheduling solution.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use nfv_model::{NodeId, RequestId, VnfId};
use nfv_placement::Placement;
use nfv_queueing::InstanceLoad;
use nfv_scheduling::Schedule;
use nfv_topology::Topology;
use nfv_workload::Scenario;

use crate::{CoreError, JointObjective};

/// The output of the two-phase pipeline: a feasible [`Placement`] of every
/// VNF plus, per VNF, a [`Schedule`] of its requests onto its `M_f` service
/// instances.
///
/// The solution keeps shared handles ([`Arc`]) to the scenario and
/// topology it was computed for, so it can evaluate the joint objective
/// (Eq. (16)) and answer "where does request `r` go?" queries without the
/// caller re-threading state — and without deep-copying either input. The
/// experiment runners exploit this: one `Arc<Scenario>` per trial is
/// shared by every compared pipeline instead of being cloned per
/// pipeline.
#[derive(Debug, Clone)]
pub struct JointSolution {
    scenario: Arc<Scenario>,
    topology: Arc<Topology>,
    placement: Placement,
    placement_iterations: u64,
    /// Per-VNF schedule, indexed by `VnfId`.
    schedules: Vec<Schedule>,
    /// Per-VNF users in schedule order, indexed by `VnfId`.
    users: Vec<Vec<RequestId>>,
    /// Per-VNF request -> instance lookup.
    instance_of: Vec<HashMap<RequestId, usize>>,
}

impl JointSolution {
    /// Assembles a solution after consistency checks; normally produced by
    /// [`crate::JointOptimizer::optimize`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Inconsistent`] if the schedules do not cover
    /// exactly the scenario's VNFs and their users.
    pub fn new(
        scenario: Arc<Scenario>,
        topology: Arc<Topology>,
        placement: Placement,
        placement_iterations: u64,
        schedules: Vec<Schedule>,
        users: Vec<Vec<RequestId>>,
    ) -> Result<Self, CoreError> {
        if schedules.len() != scenario.vnfs().len() || users.len() != schedules.len() {
            return Err(CoreError::Inconsistent {
                reason: "one schedule required per VNF",
            });
        }
        let mut instance_of = Vec::with_capacity(schedules.len());
        for ((vnf, schedule), vnf_users) in scenario.vnfs().iter().zip(&schedules).zip(&users) {
            if schedule.requests() != vnf_users.len() {
                return Err(CoreError::Inconsistent {
                    reason: "schedule size differs from the VNF's user count",
                });
            }
            if schedule.instances() != vnf.instances() as usize {
                return Err(CoreError::Inconsistent {
                    reason: "schedule instance count differs from M_f",
                });
            }
            let lookup: HashMap<RequestId, usize> = vnf_users
                .iter()
                .enumerate()
                .map(|(idx, &req)| (req, schedule.instance_of(idx)))
                .collect();
            if lookup.len() != vnf_users.len() {
                return Err(CoreError::Inconsistent {
                    reason: "duplicate request in schedule",
                });
            }
            instance_of.push(lookup);
        }
        Ok(Self {
            scenario,
            topology,
            placement,
            placement_iterations,
            schedules,
            users,
            instance_of,
        })
    }

    /// The scenario this solution was computed for.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The topology this solution was computed for.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The phase-one placement.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Iterations phase one needed (Fig. 10's metric).
    #[must_use]
    pub fn placement_iterations(&self) -> u64 {
        self.placement_iterations
    }

    /// The phase-two schedule of one VNF.
    #[must_use]
    pub fn schedule_of(&self, vnf: VnfId) -> Option<&Schedule> {
        self.schedules.get(vnf.as_usize())
    }

    /// The service instance of `vnf` serving `request`
    /// (the paper's `z_{r,k}^f = 1`), if the request uses the VNF.
    #[must_use]
    pub fn instance_serving(&self, request: RequestId, vnf: VnfId) -> Option<usize> {
        self.instance_of.get(vnf.as_usize())?.get(&request).copied()
    }

    /// The node a request visits for one of its chain's VNFs.
    #[must_use]
    pub fn node_serving(&self, request: RequestId, vnf: VnfId) -> Option<NodeId> {
        self.instance_serving(request, vnf)?;
        Some(self.placement.node_of(vnf))
    }

    /// Per-VNF per-instance queueing loads implied by the schedules, with
    /// each request contributing its own `λ_r / P_r` (Eq. (7)).
    #[must_use]
    pub fn instance_loads(&self) -> Vec<Vec<InstanceLoad>> {
        self.scenario
            .vnfs()
            .iter()
            .map(|vnf| {
                let f = vnf.id().as_usize();
                let mut loads: Vec<InstanceLoad> = (0..vnf.instances() as usize)
                    .map(|_| InstanceLoad::new(vnf.service_rate()))
                    .collect();
                for (idx, &req_id) in self.users[f].iter().enumerate() {
                    let request = self
                        .scenario
                        .request(req_id)
                        .expect("users reference scenario requests");
                    let k = self.schedules[f].instance_of(idx);
                    loads[k].add_request(request.arrival_rate(), request.delivery());
                }
                loads
            })
            .collect()
    }

    /// The distinct nodes a request's chain traverses (the paper's
    /// `Σ_v η_v^r`).
    #[must_use]
    pub fn nodes_traversed(&self, request: RequestId) -> Vec<NodeId> {
        let Some(req) = self.scenario.request(request) else {
            return Vec::new();
        };
        let mut nodes: Vec<NodeId> = req
            .chain()
            .iter()
            .map(|vnf| self.placement.node_of(vnf))
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Evaluates the joint objective Eq. (16) for this solution.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Queueing`] if some instance is unstable under
    /// the scheduled load.
    pub fn objective(&self) -> Result<JointObjective, CoreError> {
        JointObjective::evaluate(self)
    }
}

impl fmt::Display for JointSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "joint solution: {} on {}, {} schedules",
            self.placement,
            self.topology,
            self.schedules.len()
        )
    }
}
