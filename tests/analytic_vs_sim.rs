//! Cross-validation: the Jackson-network closed forms of `nfv-queueing`
//! against the discrete-event simulator of `nfv-sim`, through the public
//! experiment API.

use nfv::experiments::validation;

#[test]
fn standard_validation_suite_agrees_within_tolerance() {
    let rows = validation::standard_suite(2024).unwrap();
    assert_eq!(rows.len(), 9);
    for row in &rows {
        assert!(
            row.relative_error() < 0.08,
            "{}: analytic {} vs simulated {} ({:.2}% off)",
            row.label,
            row.analytic,
            row.simulated,
            row.relative_error() * 100.0
        );
    }
}

#[test]
fn heavy_load_raises_simulated_latency_like_the_model_predicts() {
    // M/M/1 mean latency is 1/(mu - lambda): going from rho = 0.3 to
    // rho = 0.9 takes it from 1/70 to 1/10 — a 7x increase.
    let light = validation::validate_single_station(30.0, 100.0, 1.0, 7).unwrap();
    let heavy = validation::validate_single_station(90.0, 100.0, 1.0, 8).unwrap();
    let ratio = heavy.simulated / light.simulated;
    assert!(
        (5.0..9.5).contains(&ratio),
        "expected ~7x latency growth, measured {ratio:.2}x"
    );
}

#[test]
fn loss_feedback_costs_what_burke_predicts() {
    // lambda = 40, mu = 100: P = 1.0 gives 1/60; P = 0.8 gives
    // 1.25/(100 - 50) = 1/40 — exactly 1.5x.
    let clean = validation::validate_single_station(40.0, 100.0, 1.0, 9).unwrap();
    let lossy = validation::validate_single_station(40.0, 100.0, 0.8, 10).unwrap();
    let analytic_ratio = lossy.analytic / clean.analytic;
    let simulated_ratio = lossy.simulated / clean.simulated;
    assert!((analytic_ratio - 1.5).abs() < 1e-9);
    assert!(
        (simulated_ratio - 1.5).abs() < 0.1,
        "simulated ratio {simulated_ratio} far from 1.5"
    );
}

#[test]
fn chain_latency_is_additive_across_stations() {
    let single = validation::validate_chain(30.0, &[100.0], 1.0, 11).unwrap();
    let tandem = validation::validate_chain(30.0, &[100.0, 100.0], 1.0, 12).unwrap();
    assert!((tandem.analytic - 2.0 * single.analytic).abs() < 1e-9);
    let ratio = tandem.simulated / single.simulated;
    assert!((ratio - 2.0).abs() < 0.15, "tandem/single = {ratio}");
}

#[test]
fn unstable_validation_points_are_rejected_not_simulated() {
    assert!(validation::validate_chain(120.0, &[100.0], 1.0, 13).is_err());
    assert!(validation::validate_single_station(95.0, 100.0, 0.9, 14).is_err());
}
