//! Property tests for exporter escaping: Prometheus label values and
//! journal JSON strings must round-trip arbitrary cause slugs and
//! tenant names — quotes, backslashes, control bytes, non-ASCII — and
//! never produce unparseable output.

use nfv_telemetry::json::{get_str, parse_object, JsonObject};
use nfv_telemetry::{escape_label, unescape_label, Registry};
use proptest::prelude::*;

/// The adversarial alphabet: every escape-relevant character plus ASCII,
/// control bytes, and non-ASCII code points (accented, CJK, emoji).
const PALETTE: [char; 20] = [
    '"',
    '\\',
    '\n',
    '\r',
    '\t',
    '\u{1}',
    '\u{7}',
    '\u{1f}',
    ' ',
    'a',
    'Z',
    '0',
    '_',
    '-',
    '{',
    '}',
    '\u{e9}',
    '\u{fc}',
    '\u{4e2d}',
    '\u{1f600}',
];

fn assemble(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|&i| PALETTE[i % PALETTE.len()])
        .collect()
}

proptest! {
    #[test]
    fn prometheus_labels_round_trip(indices in prop::collection::vec(0usize..PALETTE.len(), 0..32)) {
        let value = assemble(&indices);
        let escaped = escape_label(&value);
        prop_assert!(!escaped.contains('\n'), "escaped labels are single-line");
        prop_assert_eq!(unescape_label(&escaped), Some(value));
    }

    #[test]
    fn json_strings_round_trip(indices in prop::collection::vec(0usize..PALETTE.len(), 0..32)) {
        let value = assemble(&indices);
        let mut obj = JsonObject::new();
        obj.field_str("cause", &value);
        let text = obj.finish();
        let fields = parse_object(&text).unwrap();
        prop_assert_eq!(get_str(&fields, "cause"), Some(value.as_str()));
    }

    #[test]
    fn labeled_registry_keys_export_parseable_prometheus(
        indices in prop::collection::vec(0usize..PALETTE.len(), 0..16),
    ) {
        let value = assemble(&indices);
        let mut reg = Registry::new();
        reg.counter_add(Registry::labeled("events_total", "tenant", &value), 1);
        let text = reg.to_prometheus();
        // The sample line must be `events_total{tenant="escaped"} 1`
        // with the original value recoverable from the escaped form.
        let sample = text
            .lines()
            .find(|l| !l.starts_with('#'))
            .expect("one sample line");
        prop_assert!(sample.starts_with("events_total{tenant=\""), "{}", sample);
        prop_assert!(sample.ends_with("\"} 1"), "{}", sample);
        let inner = &sample["events_total{tenant=\"".len()..sample.len() - "\"} 1".len()];
        prop_assert_eq!(unescape_label(inner), Some(value));
    }

    #[test]
    fn postmortem_causes_survive_the_journal_json_layer(
        indices in prop::collection::vec(0usize..PALETTE.len(), 0..24),
    ) {
        // Cause slugs flow through `EventKind::TenantQuarantined` into
        // journal JSON; the builder + parser pair must round-trip them.
        let cause = assemble(&indices);
        let mut obj = JsonObject::new();
        obj.field_str("event", "TenantQuarantined")
            .field_u64("tenant", 3)
            .field_str("cause", &cause);
        let fields = parse_object(&obj.finish()).unwrap();
        prop_assert_eq!(get_str(&fields, "cause"), Some(cause.as_str()));
    }
}
