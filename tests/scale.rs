//! Scale tests: the paper's largest configurations through the full
//! pipeline.

use nfv::topology::{builders, LinkDelay};
use nfv::workload::{InstancePolicy, ScenarioBuilder, ServiceRatePolicy};
use nfv::JointOptimizer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

#[test]
fn paper_maximum_scale_runs_end_to_end() {
    // §V.A upper bounds: 30 VNFs, 1000 requests, 50 nodes.
    let scenario = ScenarioBuilder::new()
        .vnfs(30)
        .requests(1000)
        .instance_policy(InstancePolicy::PerUsers {
            requests_per_instance: 10,
        })
        .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
            target_utilization: 0.7,
        })
        .seed(2017)
        .build()
        .unwrap();
    let max_vnf = scenario
        .vnfs()
        .iter()
        .map(|v| v.total_demand().value())
        .fold(0.0f64, f64::max);
    let per_host = (scenario.total_demand().value() / (50.0 * 0.7)).max(1.1 * max_vnf);
    let topology = builders::random_connected()
        .nodes(50)
        .seed(9)
        .capacity_range(0.8 * per_host, 1.6 * per_host, 4)
        .link_delay(LinkDelay::from_micros(100.0))
        .build()
        .unwrap();

    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(0);
    let solution = JointOptimizer::new()
        .optimize(&scenario, &topology, &mut rng)
        .unwrap();
    let objective = solution.objective().unwrap();
    let elapsed = start.elapsed();

    assert_eq!(objective.requests(), 1000);
    assert!(objective.total_latency().is_finite());
    assert!(solution.placement().nodes_in_service() <= 50);
    // Both phases are near-linear; even the paper's maximum must be
    // interactive. Generous bound to stay robust on slow CI machines.
    assert!(elapsed.as_secs() < 30, "pipeline took {elapsed:?}");
}

#[test]
fn scheduling_scales_to_thousands_of_requests() {
    use nfv::model::ArrivalRate;
    use nfv::scheduling::{Cga, Rckk, Scheduler};
    use rand::Rng;

    let mut rng = StdRng::seed_from_u64(5);
    let rates: Vec<ArrivalRate> = (0..5000)
        .map(|_| ArrivalRate::new(rng.gen_range(1.0..=100.0)).unwrap())
        .collect();
    let start = Instant::now();
    let rckk = Rckk::new().schedule(&rates, 25).unwrap();
    let rckk_time = start.elapsed();
    let start = Instant::now();
    let cga = Cga::new().schedule(&rates, 25).unwrap();
    let cga_time = start.elapsed();
    // §IV.D complexity: both are fast; RCKK within an order of magnitude
    // of greedy even at 5000 requests.
    assert!(rckk_time.as_millis() < 2_000, "rckk took {rckk_time:?}");
    assert!(cga_time.as_millis() < 2_000, "cga took {cga_time:?}");
    assert!(rckk.imbalance() <= cga.imbalance() * 1.5 + 1e-9);
}

#[test]
fn fat_tree_at_datacenter_scale_builds_quickly() {
    // k = 12 fat-tree: 432 hosts, 468 switches (well past the paper's 50).
    let start = Instant::now();
    let topo = builders::fat_tree()
        .arity(12)
        .uniform_capacity(1000.0)
        .build()
        .unwrap();
    assert_eq!(topo.compute_nodes().len(), 432);
    assert!(topo.is_connected());
    assert_eq!(topo.diameter_hops(), 6);
    assert!(start.elapsed().as_secs() < 10, "took {:?}", start.elapsed());
}
