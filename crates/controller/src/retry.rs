//! The retry/backoff admission queue: refused arrivals wait here for
//! another chance.
//!
//! Everything is virtual-time and seeded. The backoff delay of attempt
//! `n` is `min(base · factor^n, max) · (1 + jitter · (2u − 1))` with `u`
//! a deterministic uniform draw hashed from `(seed, request id, n)` — no
//! ambient randomness, so same-seed runs re-offer at bit-identical times
//! regardless of thread count.

use nfv_model::{Request, VnfId};

use crate::wheel::TimerWheel;
use crate::RetryConfig;

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    attempt: u32,
    request: Request,
}

/// Why [`RetryQueue::schedule`] refused an entrant. The request is then
/// abandoned for good.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum RetryRefusal {
    /// The request already burned through `max_attempts` re-offers.
    BudgetExhausted,
    /// The queue already holds `max_queue` pending re-offers.
    QueueFull,
    /// The computed due time was not a non-negative finite number, so it
    /// cannot be ordered by the queue's `to_bits` key (see the module
    /// docs). Only reachable through a pathological [`RetryConfig`]
    /// (e.g. an infinite backoff or a `now` already at infinity) — but
    /// refused with a typed error rather than silently mis-ordered.
    InvalidDueTime {
        /// The unorderable due time.
        due: f64,
    },
}

impl RetryRefusal {
    /// A short stable slug for journals (`budget-exhausted`,
    /// `queue-full`, `invalid-due-time`).
    #[must_use]
    pub fn slug(&self) -> &'static str {
        match self {
            Self::BudgetExhausted => "budget-exhausted",
            Self::QueueFull => "queue-full",
            Self::InvalidDueTime { .. } => "invalid-due-time",
        }
    }
}

impl std::fmt::Display for RetryRefusal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BudgetExhausted => write!(f, "retry budget exhausted"),
            Self::QueueFull => write!(f, "retry queue full"),
            Self::InvalidDueTime { due } => write!(f, "unorderable retry due time {due}"),
        }
    }
}

impl std::error::Error for RetryRefusal {}

/// A virtual-time priority queue of pending re-offers, ordered by due
/// time (enqueue order breaks exact ties).
///
/// Keys are `(due_time.to_bits(), sequence)`: for **non-negative finite**
/// times the IEEE-754 bit pattern orders exactly like the number, which
/// keeps the order total without any float comparator. The edge cases of
/// `to_bits` ordering are exactly the values outside that domain, and
/// [`RetryQueue::schedule`] rejects them with
/// [`RetryRefusal::InvalidDueTime`] instead of silently mis-ordering:
///
/// - negative values (including `-0.0`) have the sign bit set, so their
///   bit patterns sort *above* every non-negative time — `-1.0` would
///   pop after `1e300`;
/// - `NaN` bit patterns sort above `+inf` and would never become due,
///   leaking the entry (and its queue slot) forever.
///
/// `-0.0` on its own would merely order late, but normalizing it to
/// `+0.0` would be a silent repair of a nonsensical backoff; it is
/// refused with the other negatives.
///
/// The keyed entries live in a hierarchical [`TimerWheel`] rather than
/// the original flat `BTreeMap`, so the per-event "anything due yet?"
/// probe no longer descends the whole pending set. The pop order is
/// bit-identical to the map's — see the wheel's ordering contract and
/// the `wheel_matches_btree_oracle` property below, which keeps the old
/// `BTreeMap` implementation around as the equivalence oracle.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct RetryQueue {
    wheel: TimerWheel<Entry>,
    seq: u64,
}

impl RetryQueue {
    /// Number of requests waiting for a re-offer.
    pub(crate) fn len(&self) -> usize {
        self.wheel.len()
    }

    /// Enqueues a re-offer of `request` as attempt number `attempt`
    /// (0-based), due one backoff delay after `now`, and returns the due
    /// time.
    ///
    /// # Errors
    ///
    /// [`RetryRefusal`] — without enqueuing — when the retry budget is
    /// exhausted, the queue is full, or the due time falls outside the
    /// non-negative finite domain the `to_bits` ordering is valid for;
    /// the request is then abandoned for good.
    pub(crate) fn schedule(
        &mut self,
        config: &RetryConfig,
        request: Request,
        attempt: u32,
        now: f64,
    ) -> Result<f64, RetryRefusal> {
        if attempt >= config.max_attempts {
            return Err(RetryRefusal::BudgetExhausted);
        }
        if self.wheel.len() >= config.max_queue {
            return Err(RetryRefusal::QueueFull);
        }
        let due = now + backoff_delay(config, request.id().as_usize() as u64, attempt);
        if !due.is_finite() || due.is_sign_negative() {
            return Err(RetryRefusal::InvalidDueTime { due });
        }
        let key = (due.to_bits(), self.seq);
        self.seq += 1;
        self.wheel.insert(key, Entry { attempt, request });
        Ok(due)
    }

    /// Removes and returns the earliest entry due at or before `upto` as
    /// `(due_time, attempt, request)`, or `None` when nothing is due yet.
    pub(crate) fn pop_due(&mut self, upto: f64) -> Option<(f64, u32, Request)> {
        let ((bits, _), entry) = self.wheel.pop_due(upto)?;
        Some((f64::from_bits(bits), entry.attempt, entry.request))
    }

    /// Exports the queue as `(next_seq, entries)` with entries in key
    /// order as `(due_bits, entry_seq, attempt, request)` — the snapshot
    /// shape. [`RetryQueue::import`] of this export rebuilds a queue with
    /// bit-identical pop order and future key assignment.
    pub(crate) fn export(&self) -> (u64, Vec<(u64, u64, u32, Request)>) {
        let entries = self
            .wheel
            .entries_sorted()
            .into_iter()
            .map(|(&(bits, seq), entry)| (bits, seq, entry.attempt, entry.request.clone()))
            .collect();
        (self.seq, entries)
    }

    /// Rebuilds a queue from an [`export`]: entries are re-inserted in
    /// the given (key) order, preserving pop order bit-exactly, and the
    /// sequence counter resumes where the exported queue left off.
    ///
    /// [`export`]: RetryQueue::export
    pub(crate) fn import(seq: u64, entries: Vec<(u64, u64, u32, Request)>) -> Self {
        let mut wheel = TimerWheel::default();
        for (bits, entry_seq, attempt, request) in entries {
            wheel.insert((bits, entry_seq), Entry { attempt, request });
        }
        Self { wheel, seq }
    }

    /// Total loss-inflated rate of the queued requests whose chain
    /// traverses `vnf` — backlog the re-placement targets provision for,
    /// since this traffic re-offers as soon as capacity returns. Summed
    /// in key order so the f64 fold is bit-identical to the flat map's.
    pub(crate) fn pending_rate(&self, vnf: VnfId) -> f64 {
        self.wheel
            .values_sorted()
            .into_iter()
            .filter(|e| e.request.uses(vnf))
            .map(|e| e.request.effective_rate().value())
            .sum()
    }
}

/// The (jittered) backoff delay of the 0-based `attempt` for request
/// `id`.
fn backoff_delay(config: &RetryConfig, id: u64, attempt: u32) -> f64 {
    let exponent = i32::try_from(attempt).unwrap_or(i32::MAX);
    let base = (config.base_backoff * config.factor.powi(exponent)).min(config.max_backoff);
    let u = unit_hash(
        config
            .seed
            .wrapping_add(id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(u64::from(attempt)),
    );
    base * (1.0 + config.jitter * (2.0 * u - 1.0))
}

/// SplitMix64 finalizer mapped to a uniform draw in `[0, 1)`.
fn unit_hash(mut x: u64) -> f64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_model::{ArrivalRate, DeliveryProbability, RequestId, ServiceChain};

    fn request(id: u32) -> Request {
        Request::new(
            RequestId::new(id),
            ServiceChain::single(VnfId::new(0)),
            ArrivalRate::new(1.0).unwrap(),
            DeliveryProbability::PERFECT,
        )
    }

    fn config() -> RetryConfig {
        RetryConfig::bounded()
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let c = RetryConfig {
            jitter: 0.0,
            ..config()
        };
        let d0 = backoff_delay(&c, 1, 0);
        let d1 = backoff_delay(&c, 1, 1);
        let d2 = backoff_delay(&c, 1, 2);
        assert!((d0 - c.base_backoff).abs() < 1e-12);
        assert!((d1 - c.base_backoff * c.factor).abs() < 1e-12);
        assert!((d2 - c.base_backoff * c.factor * c.factor).abs() < 1e-12);
        let late = backoff_delay(&c, 1, 30);
        assert!((late - c.max_backoff).abs() < 1e-12, "delay saturates");
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let c = config();
        for id in 0..50u64 {
            for attempt in 0..4u32 {
                let d = backoff_delay(&c, id, attempt);
                let nominal = (c.base_backoff * c.factor.powi(attempt as i32)).min(c.max_backoff);
                assert!(d >= nominal * (1.0 - c.jitter) - 1e-12);
                assert!(d <= nominal * (1.0 + c.jitter) + 1e-12);
                assert_eq!(d, backoff_delay(&c, id, attempt), "pure function");
            }
        }
        // Different requests jitter differently (with overwhelming
        // probability for any sane hash).
        assert_ne!(backoff_delay(&c, 1, 0), backoff_delay(&c, 2, 0));
    }

    #[test]
    fn export_import_round_trips_pop_order_and_seq() {
        let c = config();
        let mut q = RetryQueue::default();
        for id in 0..20u32 {
            let _ = q.schedule(&c, request(id), id % 3, f64::from(id) * 0.7);
        }
        let (seq, entries) = q.export();
        let mut rebuilt = RetryQueue::import(seq, entries);
        assert_eq!(rebuilt.export(), q.export());
        assert_eq!(rebuilt.len(), q.len());
        // Future scheduling continues from the same sequence counter and
        // the pending sets pop identically.
        let _ = q.schedule(&c, request(99), 0, 50.0);
        let _ = rebuilt.schedule(&c, request(99), 0, 50.0);
        loop {
            let (a, b) = (q.pop_due(1e9), rebuilt.pop_due(1e9));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn pop_due_returns_entries_in_due_order() {
        let c = RetryConfig {
            jitter: 0.0,
            ..config()
        };
        let mut q = RetryQueue::default();
        // Attempt 1 (4 s) scheduled before attempt 0 (2 s): the earlier
        // due time still pops first.
        assert_eq!(q.schedule(&c, request(1), 1, 0.0), Ok(4.0));
        assert_eq!(q.schedule(&c, request(2), 0, 0.0), Ok(2.0));
        assert_eq!(q.len(), 2);
        assert!(q.pop_due(1.0).is_none(), "nothing due yet");
        let (due, attempt, r) = q.pop_due(10.0).unwrap();
        assert_eq!((attempt, r.id()), (0, RequestId::new(2)));
        assert!((due - 2.0).abs() < 1e-12);
        let (due, attempt, r) = q.pop_due(10.0).unwrap();
        assert_eq!((attempt, r.id()), (1, RequestId::new(1)));
        assert!((due - 4.0).abs() < 1e-12);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn budget_and_capacity_refuse_entrants() {
        let c = RetryConfig {
            max_attempts: 2,
            max_queue: 2,
            ..config()
        };
        let mut q = RetryQueue::default();
        assert_eq!(
            q.schedule(&c, request(1), 2, 0.0),
            Err(RetryRefusal::BudgetExhausted)
        );
        assert!(q.schedule(&c, request(1), 0, 0.0).is_ok());
        assert!(q.schedule(&c, request(2), 0, 0.0).is_ok());
        assert_eq!(
            q.schedule(&c, request(3), 0, 0.0),
            Err(RetryRefusal::QueueFull)
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn non_finite_due_times_are_refused_not_mis_ordered() {
        let c = config();
        let mut q = RetryQueue::default();
        // `now = +inf` drives the due time to +inf: to_bits would sort it
        // above every finite time *and* below NaN, and the entry would
        // never pop. The queue refuses it instead.
        match q.schedule(&c, request(1), 0, f64::INFINITY) {
            Err(RetryRefusal::InvalidDueTime { due }) => assert!(due.is_infinite()),
            other => panic!("expected InvalidDueTime, got {other:?}"),
        }
        // A NaN clock poisons the due time the same way.
        match q.schedule(&c, request(2), 0, f64::NAN) {
            Err(RetryRefusal::InvalidDueTime { due }) => assert!(due.is_nan()),
            other => panic!("expected InvalidDueTime, got {other:?}"),
        }
        // Negative due times (sign bit set) would sort *above* every
        // non-negative time; -1e9 makes the sum strictly negative.
        match q.schedule(&c, request(3), 0, -1e9) {
            Err(RetryRefusal::InvalidDueTime { due }) => assert!(due < 0.0),
            other => panic!("expected InvalidDueTime, got {other:?}"),
        }
        assert_eq!(q.len(), 0, "refused entrants never enqueue");
        // The documented bit-pattern hazard itself: negative zero and NaN
        // order above honest times under to_bits.
        assert!((-0.0f64).to_bits() > 1e300f64.to_bits());
        assert!(f64::NAN.to_bits() > f64::INFINITY.to_bits());
    }

    #[test]
    fn negative_zero_due_time_is_refused() {
        // now = -0.0 with a zero backoff sums to +0.0 (IEEE-754), which is
        // fine; force a genuine -0.0 due via a negative now that cancels.
        let c = RetryConfig {
            jitter: 0.0,
            ..config()
        };
        let mut q = RetryQueue::default();
        let refused = q.schedule(&c, request(1), 0, -c.base_backoff);
        // -base + base == +0.0 in IEEE-754, so this particular sum lands
        // on ordinary zero and is accepted...
        assert_eq!(refused, Ok(0.0));
        // ...but a due time carrying the sign bit is refused outright:
        // (-0.0).to_bits() = 0x8000_0000_0000_0000 sorts above all
        // non-negative patterns, so accepting it would order the retry
        // after every honest entry.
        match q.schedule(&c, request(2), 0, -2.0 * c.base_backoff) {
            Err(RetryRefusal::InvalidDueTime { due }) => assert!(due.is_sign_negative()),
            other => panic!("expected InvalidDueTime, got {other:?}"),
        }
    }

    #[test]
    fn pending_rate_sums_only_traversing_requests() {
        let c = config();
        let mut q = RetryQueue::default();
        assert!(q.schedule(&c, request(1), 0, 0.0).is_ok());
        assert!(q.schedule(&c, request(2), 0, 0.0).is_ok());
        assert!((q.pending_rate(VnfId::new(0)) - 2.0).abs() < 1e-12);
        assert_eq!(q.pending_rate(VnfId::new(1)), 0.0);
    }

    /// The original flat-map implementation of the queue, kept verbatim
    /// as the equivalence oracle for the timer wheel: a `BTreeMap` keyed
    /// `(due.to_bits(), seq)` whose `first_key_value` *is* the pop order
    /// the wheel must reproduce bit for bit.
    #[derive(Debug, Default)]
    struct BTreeOracle {
        entries: std::collections::BTreeMap<(u64, u64), Entry>,
        seq: u64,
    }

    impl BTreeOracle {
        fn len(&self) -> usize {
            self.entries.len()
        }

        fn schedule(
            &mut self,
            config: &RetryConfig,
            request: Request,
            attempt: u32,
            now: f64,
        ) -> Result<f64, RetryRefusal> {
            if attempt >= config.max_attempts {
                return Err(RetryRefusal::BudgetExhausted);
            }
            if self.entries.len() >= config.max_queue {
                return Err(RetryRefusal::QueueFull);
            }
            let due = now + backoff_delay(config, request.id().as_usize() as u64, attempt);
            if !due.is_finite() || due.is_sign_negative() {
                return Err(RetryRefusal::InvalidDueTime { due });
            }
            self.entries
                .insert((due.to_bits(), self.seq), Entry { attempt, request });
            self.seq += 1;
            Ok(due)
        }

        fn pop_due(&mut self, upto: f64) -> Option<(f64, u32, Request)> {
            let (&(bits, seq), _) = self.entries.first_key_value()?;
            if f64::from_bits(bits) > upto {
                return None;
            }
            let entry = self.entries.remove(&(bits, seq)).unwrap();
            Some((f64::from_bits(bits), entry.attempt, entry.request))
        }

        fn pending_rate(&self, vnf: VnfId) -> f64 {
            self.entries
                .values()
                .filter(|e| e.request.uses(vnf))
                .map(|e| e.request.effective_rate().value())
                .sum()
        }
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random interleavings of `schedule` and `pop_due` — spanning
        /// wheel levels, the overflow map, and (with `jitter: 0.0`) exact
        /// `(due.to_bits(), seq)` ties — drive the wheel-backed queue and
        /// the flat `BTreeMap` oracle in lockstep: identical schedule
        /// verdicts, identical pop sequences bit for bit, identical
        /// lengths and pending-rate folds at every step.
        #[test]
        fn wheel_matches_btree_oracle(
            // One op per word: kind in the low bits, then request id,
            // attempt, a time quantum, and a time-scale selector (the
            // vendored proptest has no tuple strategy inside `vec`).
            packed in prop::collection::vec(0u64..u64::MAX, 1..200),
        ) {
            for jitter in [0.0, 0.5] {
                let c = RetryConfig {
                    jitter,
                    max_queue: 24,
                    ..config()
                };
                let mut wheel_q = RetryQueue::default();
                let mut oracle = BTreeOracle::default();
                for &w in &packed {
                    let kind = w & 0x3;
                    let id = ((w >> 8) & 0x7) as u32;
                    let attempt = ((w >> 16) & 0x3) as u32;
                    let quantum = ((w >> 24) & 0xFF) as f64;
                    // Scales chosen to land dues on wheel level 0, the
                    // coarser levels, and past the wheel span into the
                    // overflow map.
                    let scale = match (w >> 34) & 0x3 {
                        0 => 0.25,
                        1 => 7.0,
                        2 => 411.0,
                        _ => 100_000.0,
                    };
                    let t = quantum * scale;
                    if kind < 3 {
                        prop_assert_eq!(
                            wheel_q.schedule(&c, request(id), attempt, t),
                            oracle.schedule(&c, request(id), attempt, t),
                        );
                    } else {
                        let got = wheel_q.pop_due(t);
                        let want = oracle.pop_due(t);
                        match (&got, &want) {
                            (None, None) => {}
                            (Some((gd, ga, gr)), Some((wd, wa, wr))) => {
                                prop_assert_eq!(gd.to_bits(), wd.to_bits());
                                prop_assert_eq!((ga, gr.id()), (wa, wr.id()));
                            }
                            _ => prop_assert!(
                                false,
                                "pop mismatch: wheel {:?} oracle {:?}",
                                got,
                                want
                            ),
                        }
                    }
                    prop_assert_eq!(wheel_q.len(), oracle.len());
                    prop_assert_eq!(
                        wheel_q.pending_rate(VnfId::new(0)).to_bits(),
                        oracle.pending_rate(VnfId::new(0)).to_bits(),
                    );
                }
                // Drain both queues dry: the residual pop order must
                // match entry for entry.
                loop {
                    let got = wheel_q.pop_due(f64::MAX);
                    let want = oracle.pop_due(f64::MAX);
                    match (&got, &want) {
                        (None, None) => break,
                        (Some((gd, ga, gr)), Some((wd, wa, wr))) => {
                            prop_assert_eq!(gd.to_bits(), wd.to_bits());
                            prop_assert_eq!((ga, gr.id()), (wa, wr.id()));
                        }
                        _ => prop_assert!(
                            false,
                            "drain mismatch: wheel {:?} oracle {:?}",
                            got,
                            want
                        ),
                    }
                }
            }
        }
    }
}
