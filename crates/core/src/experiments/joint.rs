//! Joint pipeline experiments: the Eq. (16) total-latency comparison.
//!
//! The paper's headline claim is that the combined BFDSU + RCKK pipeline
//! reduces the average total latency of all requests — response latency at
//! the scheduled instances plus inter-node communication latency — by
//! ~19.9% against the state-of-the-art combination. This module runs the
//! full two-phase pipeline for several (placer, scheduler) pairs over
//! identical scenarios/topologies and reports Eq. (16) and the placement
//! quality metrics side by side.

use std::sync::Arc;

use nfv_metrics::OnlineStats;
use nfv_parallel::{derive_seed, par_map};
use nfv_placement::Placer as _;
use nfv_placement::{Bfd, Bfdsu, ChainAffinity, Ffd, Nah, PlacementProblem};
use nfv_scheduling::{Cga, Rckk};
use nfv_topology::{builders, LinkDelay};
use nfv_workload::{InstancePolicy, ScenarioBuilder, ServiceRatePolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{CoreError, JointOptimizer};

/// Configuration of a joint-pipeline comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JointConfig {
    /// Number of computing nodes.
    pub nodes: usize,
    /// Packing tightness: fraction of the total node capacity the workload
    /// demands (capacities are sized from the workload, as in the
    /// placement experiments).
    pub fill: f64,
    /// Number of VNFs.
    pub vnfs: usize,
    /// Number of requests.
    pub requests: usize,
    /// Requests per service instance.
    pub requests_per_instance: u32,
    /// Balanced per-instance target utilization used to scale `μ_f`.
    pub target_utilization: f64,
    /// Per-hop link delay in microseconds (the paper's `L`).
    pub link_delay_micros: f64,
}

impl JointConfig {
    /// A representative mid-size configuration: the same 75%-fill packing
    /// regime as the placement experiments, instances loaded to 85% so the
    /// scheduling phase matters, and a 1 ms per-hop `L` (propagation plus
    /// the transmission of a flow's packet train between racks).
    #[must_use]
    pub fn base() -> Self {
        Self {
            nodes: 12,
            fill: 0.75,
            vnfs: 15,
            requests: 200,
            requests_per_instance: 10,
            target_utilization: 0.93,
            link_delay_micros: 1000.0,
        }
    }
}

/// Averaged metrics of one pipeline over all repetitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointStats {
    /// Pipeline label, e.g. `"bfdsu+rckk"`.
    pub name: String,
    /// Mean of Eq. (16)'s average total latency per request, seconds.
    pub avg_total_latency: f64,
    /// Mean response-latency part, seconds.
    pub avg_response_latency: f64,
    /// Mean link-latency part, seconds.
    pub avg_link_latency: f64,
    /// Mean nodes in service.
    pub avg_nodes_in_service: f64,
    /// Mean average utilization (ratio).
    pub avg_utilization: f64,
    /// Repetitions where the pipeline failed (infeasible placement or
    /// unstable schedule).
    pub failures: u64,
}

/// The pipelines compared: the paper's proposal and the two baseline
/// combinations.
#[must_use]
pub fn standard_pipelines() -> Vec<(String, JointOptimizer)> {
    vec![
        (
            "bfdsu+rckk".to_owned(),
            JointOptimizer::new()
                .with_placer(Box::new(Bfdsu::new()))
                .with_scheduler(Box::new(Rckk::new())),
        ),
        (
            "affinity+rckk".to_owned(),
            JointOptimizer::new()
                .with_placer(Box::new(ChainAffinity::new()))
                .with_scheduler(Box::new(Rckk::new())),
        ),
        (
            "ffd+cga".to_owned(),
            JointOptimizer::new()
                .with_placer(Box::new(Ffd::new()))
                .with_scheduler(Box::new(Cga::new())),
        ),
        (
            "nah+cga".to_owned(),
            JointOptimizer::new()
                .with_placer(Box::new(Nah::new()))
                .with_scheduler(Box::new(Cga::new())),
        ),
    ]
}

/// Runs every pipeline on `repetitions` seeded scenario/topology draws and
/// averages the Eq. (16) metrics.
///
/// # Errors
///
/// Returns [`CoreError`] for structurally invalid configurations; per-seed
/// pipeline failures are counted in [`JointStats::failures`].
pub fn run_comparison(
    config: &JointConfig,
    repetitions: u64,
    base_seed: u64,
) -> Result<Vec<JointStats>, CoreError> {
    let pipelines = standard_pipelines();
    let mut total: Vec<OnlineStats> = vec![OnlineStats::new(); pipelines.len()];
    let mut response: Vec<OnlineStats> = vec![OnlineStats::new(); pipelines.len()];
    let mut link: Vec<OnlineStats> = vec![OnlineStats::new(); pipelines.len()];
    let mut nodes: Vec<OnlineStats> = vec![OnlineStats::new(); pipelines.len()];
    let mut utilization: Vec<OnlineStats> = vec![OnlineStats::new(); pipelines.len()];
    let mut failures: Vec<u64> = vec![0; pipelines.len()];

    // Each repetition builds one scenario/topology pair, shares it across
    // all pipelines via `Arc` (no per-pipeline deep copies), and runs on
    // the deterministic worker pool. Per-repetition and per-pipeline seeds
    // are pure functions of `(base_seed, rep, pipeline index)`, and results
    // are folded in repetition order, so the averages are bit-identical at
    // any thread count.
    type PipelineRow = Option<(f64, f64, f64, f64, f64)>;
    let trials = par_map(
        (0..repetitions).collect(),
        |_, rep| -> Result<Vec<PipelineRow>, CoreError> {
            let seed = derive_seed(base_seed, rep);
            let scenario = Arc::new(
                ScenarioBuilder::new()
                    .vnfs(config.vnfs)
                    .requests(config.requests)
                    .instance_policy(InstancePolicy::PerUsers {
                        requests_per_instance: config.requests_per_instance,
                    })
                    .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
                        target_utilization: config.target_utilization,
                    })
                    .seed(seed)
                    .build()?,
            );
            let total_demand = scenario.total_demand().value();
            let max_demand = scenario
                .vnfs()
                .iter()
                .map(|v| v.total_demand().value())
                .fold(0.0f64, f64::max);
            let (lo, hi) = crate::experiments::capacity_bounds(
                total_demand,
                max_demand,
                config.nodes,
                config.fill,
            );
            // Redraw capacities until a deterministic strong packer certifies
            // feasibility, as in the placement experiments.
            let mut topology = None;
            for redraw in 0..20u64 {
                let candidate = builders::random_connected()
                    .nodes(config.nodes)
                    .seed(seed)
                    .capacity_range(lo, hi, seed ^ 0x5555 ^ (redraw << 48))
                    .link_delay(LinkDelay::from_micros(config.link_delay_micros))
                    .build()?;
                let problem = PlacementProblem::new(
                    candidate.compute_nodes().to_vec(),
                    scenario.vnfs().to_vec(),
                )?;
                let mut probe_rng = StdRng::seed_from_u64(0);
                let feasible = Bfd::new().place(&problem, &mut probe_rng).is_ok();
                topology = Some(candidate);
                if feasible {
                    break;
                }
            }
            let topology = Arc::new(topology.expect("at least one draw was made"));

            Ok(pipelines
                .iter()
                .enumerate()
                .map(|(i, (_, optimizer))| {
                    let mut rng = StdRng::seed_from_u64(derive_seed(seed, i as u64));
                    optimizer
                        .optimize_shared(&scenario, &topology, &mut rng)
                        .and_then(|solution| {
                            let placement_nodes = solution.placement().nodes_in_service() as f64;
                            let placement_util = solution.placement().average_utilization().value();
                            solution
                                .objective()
                                .map(|o| (o, placement_nodes, placement_util))
                        })
                        .ok()
                        .map(|(objective, n, u)| {
                            (
                                objective.average_total_latency(),
                                objective.average_response_latency(),
                                objective.average_link_latency(),
                                n,
                                u,
                            )
                        })
                })
                .collect())
        },
    )?;
    for trial in trials {
        for (i, row) in trial?.into_iter().enumerate() {
            match row {
                Some((t, r, l, n, u)) => {
                    total[i].push(t);
                    response[i].push(r);
                    link[i].push(l);
                    nodes[i].push(n);
                    utilization[i].push(u);
                }
                None => failures[i] += 1,
            }
        }
    }

    Ok(pipelines
        .iter()
        .enumerate()
        .map(|(i, (name, _))| JointStats {
            name: name.clone(),
            avg_total_latency: total[i].mean(),
            avg_response_latency: response[i].mean(),
            avg_link_latency: link[i].mean(),
            avg_nodes_in_service: nodes[i].mean(),
            avg_utilization: utilization[i].mean(),
            failures: failures[i],
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_covers_four_pipelines() {
        let stats = run_comparison(&JointConfig::base(), 3, 1).unwrap();
        let names: Vec<&str> = stats.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["bfdsu+rckk", "affinity+rckk", "ffd+cga", "nah+cga"]
        );
        for s in &stats {
            assert!(s.failures < 3, "{} failed every repetition", s.name);
            assert!(s.avg_total_latency > 0.0);
            assert!(
                (s.avg_total_latency - (s.avg_response_latency + s.avg_link_latency)).abs() < 1e-9
            );
        }
    }

    #[test]
    fn paper_pipeline_wins_on_total_latency() {
        let stats = run_comparison(&JointConfig::base(), 5, 11).unwrap();
        let get = |name: &str| stats.iter().find(|s| s.name == name).unwrap();
        let ours = get("bfdsu+rckk");
        let nah = get("nah+cga");
        assert!(
            ours.avg_total_latency <= nah.avg_total_latency,
            "bfdsu+rckk {} > nah+cga {}",
            ours.avg_total_latency,
            nah.avg_total_latency
        );
        assert!(ours.avg_utilization >= nah.avg_utilization);
    }

    #[test]
    fn affinity_is_at_parity_with_bfdsu() {
        // Measured negative result (documented on `ChainAffinity`): the
        // co-location bonus neither helps nor hurts on this workload
        // family — BFDSU's consolidation already co-locates what capacity
        // allows. Guard the parity so a regression in either direction
        // (broken packing or runaway bonus) is caught.
        let config = JointConfig {
            nodes: 6,
            fill: 0.65,
            ..JointConfig::base()
        };
        let stats = run_comparison(&config, 8, 21).unwrap();
        let get = |name: &str| stats.iter().find(|s| s.name == name).unwrap();
        let affinity = get("affinity+rckk");
        let bfdsu = get("bfdsu+rckk");
        assert!(
            affinity.avg_link_latency <= bfdsu.avg_link_latency * 1.10,
            "affinity link {} strayed from bfdsu link {}",
            affinity.avg_link_latency,
            bfdsu.avg_link_latency
        );
        assert!(
            (affinity.avg_total_latency - bfdsu.avg_total_latency).abs()
                <= bfdsu.avg_total_latency * 0.05
        );
        assert!(affinity.avg_nodes_in_service <= bfdsu.avg_nodes_in_service + 1.0);
        assert_eq!(affinity.failures, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_comparison(&JointConfig::base(), 2, 5).unwrap();
        let b = run_comparison(&JointConfig::base(), 2, 5).unwrap();
        assert_eq!(a, b);
    }
}
