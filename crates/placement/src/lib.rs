//! VNF chain placement algorithms (phase one of the paper's pipeline).
//!
//! The VNF chain placement (VNF-CP) problem asks for an assignment of every
//! VNF — with all `M_f` of its service instances, hence a total demand
//! `D_f^sum = M_f · D_f` — to exactly one computing node, without exceeding
//! any node's capacity `A_v`, while maximizing the average resource
//! utilization of the nodes in service (Eq. (13)), or equivalently
//! minimizing the number of nodes in service (Eq. (14)). The paper proves
//! the problem NP-hard by reduction from bin packing (Theorem 1).
//!
//! Implemented algorithms, all behind the [`Placer`] trait:
//!
//! * [`Bfdsu`] — the paper's contribution: Best-Fit-Decreasing using
//!   Smallest Used nodes with the largest probability (Algorithm 1), a
//!   weighted-random best-fit with restart-on-failure and a proved
//!   asymptotic worst-case bound of 2 (Theorem 2);
//! * [`Ffd`] — first-fit decreasing (classic baseline);
//! * [`Bfd`] — deterministic best-fit decreasing (the ablation of BFDSU's
//!   weighted-random choice);
//! * [`Nah`] — the node assignment heuristic of Xia et al. (2015), which
//!   packs whole chains onto the node with the largest remaining capacity;
//! * [`exact::optimal_node_count`] — a branch-and-bound oracle for small
//!   instances, used to verify the factor-2 bound in tests;
//! * [`ChainAffinity`] — our extension: BFDSU with a co-location bonus for
//!   chain neighbors, optimizing the inter-node hop term of the joint
//!   objective (Eq. (16)) alongside the packing.
//!
//! # Examples
//!
//! ```
//! use nfv_placement::{Bfdsu, Placer, PlacementProblem};
//! use nfv_model::{Capacity, ComputeNode, Demand, NodeId, ServiceRate, Vnf, VnfId, VnfKind};
//! use rand::SeedableRng;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nodes = vec![
//!     ComputeNode::new(NodeId::new(0), Capacity::new(100.0)?),
//!     ComputeNode::new(NodeId::new(1), Capacity::new(100.0)?),
//! ];
//! let vnfs = vec![Vnf::builder(VnfId::new(0), VnfKind::Firewall)
//!     .demand_per_instance(Demand::new(30.0)?)
//!     .instances(2)
//!     .service_rate(ServiceRate::new(100.0)?)
//!     .build()?];
//! let problem = PlacementProblem::new(nodes, vnfs)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let outcome = Bfdsu::new().place(&problem, &mut rng)?;
//! assert_eq!(outcome.placement().nodes_in_service(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod affinity;
mod bfd;
mod bfdsu;
mod error;
pub mod exact;
mod ffd;
mod nah;
mod placement;
mod placer;
mod problem;
mod support;

pub use affinity::ChainAffinity;
pub use bfd::Bfd;
pub use bfdsu::{Bfdsu, DeltaPlacement};
pub use error::PlacementError;
pub use ffd::{Ffd, ScanOrder};
pub use nah::Nah;
pub use placement::Placement;
pub use placer::{PlacementOutcome, Placer};
pub use problem::PlacementProblem;
