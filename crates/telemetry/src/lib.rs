//! Deterministic observability for the online NFV control plane.
//!
//! Three layers, all strict observers of the controller:
//!
//! - a structured **event journal** ([`TraceEvent`]/[`EventKind`]):
//!   typed admit/reject/shed/retry/outage/re-optimization records
//!   written to pluggable [`EventSink`]s — a bounded in-memory
//!   [`RingSink`], a [`JsonlSink`] (one JSON object per line), and a
//!   [`CsvSink`] in the fixed-column per-event trace shape;
//! - **timing spans** ([`Phase`]/[`PhaseProfile`]): wall-clock durations
//!   of the hot phases (BFDSU delta-placement, RCKK planning, the
//!   hysteresis probe, retry drain, emergency re-placement) aggregated
//!   into `nfv-metrics` summaries;
//! - a **per-tick time-series** ([`TickSample`]/[`TickSeries`]): ρ,
//!   balanced latency, retry backlog and nodes-in-service snapshots with
//!   bounded memory and in-order cross-worker merging;
//! - a fleet-facing **observability plane**: causal [`SpanTree`]s for
//!   flame-style wall-clock attribution, a deterministic metrics
//!   [`Registry`] with Prometheus text and hand-rolled JSON exporters,
//!   and a bounded flight-recorder [`Postmortem`] window captured for
//!   quarantined tenants.
//!
//! # Determinism contract
//!
//! Telemetry must never change what the controller computes:
//!
//! - [`Telemetry::disabled`] is a `None` behind one branch — no
//!   allocation, no clock reads, no RNG draws; the event/sample closures
//!   passed to [`Telemetry::emit`]/[`Telemetry::sample_tick`] are not
//!   even invoked;
//! - enabled telemetry only *reads* controller state; span durations are
//!   the only wall-clock values and they flow into [`PhaseProfile`]
//!   summaries, never back into any decision;
//! - journal and series content derive purely from the deterministic
//!   virtual-time run, so same-seed runs emit bit-identical journals at
//!   any thread count (wall-clock span durations are the one documented
//!   exception, and they live outside the journal).
//!
//! # Examples
//!
//! ```
//! use nfv_telemetry::{EventKind, Telemetry};
//! use nfv_model::RequestId;
//!
//! let mut tel = Telemetry::enabled();
//! tel.emit(1.5, 0, || EventKind::Admit { request: RequestId::new(7), hops: 2 });
//! let artifacts = tel.finish();
//! assert_eq!(artifacts.events.len(), 1);
//!
//! // The disabled path records nothing and never runs the closure.
//! let mut off = Telemetry::disabled();
//! off.emit(1.5, 0, || unreachable!("disabled telemetry must not build events"));
//! assert!(off.finish().events.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod export;
pub mod json;
mod recorder;
mod registry;
mod series;
mod sink;
mod span;
mod trace;

pub use event::{EventKind, ReoptPhase, TraceEvent, CSV_HEADER};
pub use export::{escape_label, unescape_label};
pub use recorder::{Postmortem, FLIGHT_RECORDER_WINDOW};
pub use registry::{Registry, RegistryError};
pub use series::{TickSample, TickSeries, SERIES_CSV_HEADER};
pub use sink::{
    csv_journal_rows, parse_jsonl_journal, CsvSink, EventSink, JournalError, JsonlSink, RingSink,
    JOURNAL_SCHEMA_VERSION,
};
pub use span::{Phase, PhaseProfile, SpanToken, Stopwatch};
pub use trace::{SpanId, SpanTree};

/// Everything a telemetry session collected, returned by
/// [`Telemetry::finish`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryArtifacts {
    /// The journal retained by the in-memory ring, oldest first, with
    /// dense re-assigned sequence numbers after merging.
    pub events: Vec<TraceEvent>,
    /// Journal records evicted from the ring to honor its bound.
    pub dropped_events: u64,
    /// Per-phase wall-clock timing summaries.
    pub profile: PhaseProfile,
    /// The per-tick time-series.
    pub series: TickSeries,
}

impl TelemetryArtifacts {
    /// Appends another worker's artifacts after this one. Callers fold
    /// worker results in worker-index order (the order `par_map`
    /// returns), so the merged artifacts are identical at any thread
    /// count; sequence numbers are re-assigned densely over the merged
    /// journal.
    pub fn merge(&mut self, other: TelemetryArtifacts) {
        self.dropped_events += other.dropped_events;
        self.events.extend(other.events);
        for (seq, event) in self.events.iter_mut().enumerate() {
            event.seq = seq as u64;
        }
        self.profile.merge(&other.profile);
        self.series.merge(&other.series);
    }

    /// Merges many sessions' artifacts in iteration order — the fleet
    /// path, which folds per-tenant journals shard by shard in shard-id
    /// order (tenants in owned order within each shard). Because that
    /// order is a pure function of the seed and never of the thread
    /// count, the merged journal is byte-identical at any parallelism;
    /// the merge quadratic (`merge` re-seqs per part) is avoided by
    /// re-assigning dense sequence numbers once at the end.
    #[must_use]
    pub fn merged<I: IntoIterator<Item = TelemetryArtifacts>>(parts: I) -> Self {
        let mut all = TelemetryArtifacts::default();
        for part in parts {
            all.dropped_events += part.dropped_events;
            all.events.extend(part.events);
            all.profile.merge(&part.profile);
            all.series.merge(&part.series);
        }
        for (seq, event) in all.events.iter_mut().enumerate() {
            event.seq = seq as u64;
        }
        all
    }

    /// The journal as JSONL (one event per line).
    #[must_use]
    pub fn journal_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }
}

struct Inner {
    seq: u64,
    ring: RingSink,
    extra: Vec<Box<dyn EventSink>>,
    profile: PhaseProfile,
    series: TickSeries,
}

/// A point-in-time copy of a telemetry session's collected state,
/// produced by [`Telemetry::snapshot`] and reapplied by
/// [`Telemetry::restore`].
///
/// The snapshot captures the journal ring (events plus drop counter),
/// the sequence counter, the timing profile, and the tick series — the
/// full determinism-relevant state. Extra sinks ([`Telemetry::add_sink`])
/// are streaming side-channels and are *not* captured; restoring a
/// session drops any sinks attached after the snapshot was taken.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    inner: Option<(u64, RingSink, PhaseProfile, TickSeries)>,
}

impl TelemetrySnapshot {
    /// The most recent `limit` journal events captured in the snapshot,
    /// oldest first — the flight recorder reads its post-mortem window
    /// through this. Empty for a disabled session's snapshot.
    #[must_use]
    pub fn recent_events(&self, limit: usize) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |(_, ring, _, _)| {
                let skip = ring.len().saturating_sub(limit);
                ring.events().skip(skip).cloned().collect()
            })
    }

    /// The tick series captured in the snapshot, if the session was
    /// enabled.
    #[must_use]
    pub fn series(&self) -> Option<&TickSeries> {
        self.inner.as_ref().map(|(_, _, _, series)| series)
    }
}

/// A telemetry session handle, threaded by `&mut` through the
/// controller's event loop; [`Telemetry::snapshot`]/[`Telemetry::restore`]
/// rewind a session for checkpoint-based crash recovery. See the crate
/// docs for the determinism contract.
pub struct Telemetry {
    inner: Option<Box<Inner>>,
}

impl Telemetry {
    /// Default journal ring capacity (events retained in memory).
    pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;
    /// Default time-series capacity (tick samples retained).
    pub const DEFAULT_SAMPLE_CAPACITY: usize = 4_096;

    /// The no-op session: records nothing, costs one branch per call
    /// site, and never invokes the event/sample closures.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled session with the default ring and series capacities.
    #[must_use]
    pub fn enabled() -> Self {
        Self::with_capacity(Self::DEFAULT_EVENT_CAPACITY, Self::DEFAULT_SAMPLE_CAPACITY)
    }

    /// An enabled session retaining at most `max_events` journal records
    /// and `max_samples` tick samples in memory.
    #[must_use]
    pub fn with_capacity(max_events: usize, max_samples: usize) -> Self {
        Self {
            inner: Some(Box::new(Inner {
                seq: 0,
                ring: RingSink::new(max_events),
                extra: Vec::new(),
                profile: PhaseProfile::new(),
                series: TickSeries::new(max_samples),
            })),
        }
    }

    /// Whether this session records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches an additional sink (JSONL/CSV writers); a no-op on a
    /// disabled session.
    pub fn add_sink(&mut self, sink: Box<dyn EventSink>) {
        if let Some(inner) = self.inner.as_mut() {
            inner.extra.push(sink);
        }
    }

    /// Emits one journal record at virtual time `time` during tick
    /// `tick`. The closure builds the payload only when the session is
    /// enabled, so the disabled path does no formatting or allocation.
    pub fn emit<F: FnOnce() -> EventKind>(&mut self, time: f64, tick: u64, kind: F) {
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        let event = TraceEvent {
            seq: inner.seq,
            time,
            tick,
            kind: kind(),
        };
        inner.seq += 1;
        for sink in &mut inner.extra {
            sink.record(&event);
        }
        inner.ring.record(&event);
    }

    /// Opens a timing span (reads the clock only when enabled).
    pub fn begin(&self) -> SpanToken {
        SpanToken::start(self.is_enabled())
    }

    /// Closes a timing span into `phase`'s duration summary.
    pub fn end(&mut self, phase: Phase, token: SpanToken) {
        if let (Some(inner), Some(seconds)) = (self.inner.as_mut(), token.elapsed_seconds()) {
            inner.profile.record(phase, seconds);
        }
    }

    /// Records one per-tick sample; the closure runs only when the
    /// session is enabled.
    pub fn sample_tick<F: FnOnce() -> TickSample>(&mut self, sample: F) {
        if let Some(inner) = self.inner.as_mut() {
            inner.series.push(sample());
        }
    }

    /// Captures the session's collected state for later [`restore`].
    /// Disabled sessions snapshot to (and restore from) the disabled
    /// state. Extra sinks are not captured — see [`TelemetrySnapshot`].
    ///
    /// [`restore`]: Telemetry::restore
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            inner: self.inner.as_ref().map(|inner| {
                (
                    inner.seq,
                    inner.ring.clone(),
                    inner.profile.clone(),
                    inner.series.clone(),
                )
            }),
        }
    }

    /// Rewinds the session to a previously captured [`snapshot`],
    /// discarding everything recorded since (and any extra sinks).
    ///
    /// [`snapshot`]: Telemetry::snapshot
    pub fn restore(&mut self, snapshot: &TelemetrySnapshot) {
        self.inner = snapshot.inner.as_ref().map(|(seq, ring, profile, series)| {
            Box::new(Inner {
                seq: *seq,
                ring: ring.clone(),
                extra: Vec::new(),
                profile: profile.clone(),
                series: series.clone(),
            })
        });
    }

    /// Closes the session: flushes the extra sinks and returns the
    /// collected artifacts (empty for a disabled session).
    #[must_use]
    pub fn finish(self) -> TelemetryArtifacts {
        let Some(mut inner) = self.inner else {
            return TelemetryArtifacts::default();
        };
        for sink in &mut inner.extra {
            sink.flush();
        }
        TelemetryArtifacts {
            dropped_events: inner.ring.dropped(),
            events: inner.ring.into_events(),
            profile: inner.profile,
            series: inner.series,
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Telemetry::disabled"),
            Some(inner) => f
                .debug_struct("Telemetry")
                .field("events", &inner.ring.len())
                .field("dropped", &inner.ring.dropped())
                .field("extra_sinks", &inner.extra.len())
                .field("spans", &inner.profile.total_spans())
                .field("samples", &inner.series.len())
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_model::{NodeId, RequestId};

    #[test]
    fn disabled_session_is_inert_and_lazy() {
        let mut tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.emit(0.0, 0, || panic!("emit closure ran on the disabled path"));
        tel.sample_tick(|| panic!("sample closure ran on the disabled path"));
        let token = tel.begin();
        tel.end(Phase::RckkPlan, token);
        tel.add_sink(Box::new(RingSink::new(4)));
        let artifacts = tel.finish();
        assert_eq!(artifacts, TelemetryArtifacts::default());
    }

    #[test]
    fn enabled_session_journals_in_emission_order() {
        let mut tel = Telemetry::enabled();
        tel.emit(1.0, 0, || EventKind::NodeDown {
            node: NodeId::new(3),
            vnfs_lost: 2,
            shed: 5,
        });
        tel.emit(2.0, 0, || EventKind::NodeUp {
            node: NodeId::new(3),
            vnfs_restored: 2,
        });
        let token = tel.begin();
        tel.end(Phase::EmergencyReplace, token);
        let artifacts = tel.finish();
        assert_eq!(artifacts.events.len(), 2);
        assert_eq!(artifacts.events[0].seq, 0);
        assert_eq!(artifacts.events[1].seq, 1);
        assert_eq!(artifacts.events[0].kind.label(), "NodeDown");
        assert_eq!(
            artifacts.profile.summary(Phase::EmergencyReplace).count(),
            1
        );
        let jsonl = artifacts.journal_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert_eq!(
            TraceEvent::from_json(jsonl.lines().next().unwrap()).unwrap(),
            artifacts.events[0]
        );
    }

    #[test]
    fn extra_sinks_observe_every_event() {
        let mut tel = Telemetry::enabled();
        tel.add_sink(Box::new(JsonlSink::new(Vec::new())));
        tel.emit(1.0, 0, || EventKind::Admit {
            request: RequestId::new(1),
            hops: 1,
        });
        let artifacts = tel.finish();
        assert_eq!(artifacts.events.len(), 1);
    }

    #[test]
    fn merge_renumbers_and_appends_in_order() {
        let mut a = Telemetry::enabled();
        a.emit(1.0, 0, || EventKind::Admit {
            request: RequestId::new(1),
            hops: 1,
        });
        let mut b = Telemetry::enabled();
        b.emit(2.0, 0, || EventKind::Admit {
            request: RequestId::new(2),
            hops: 1,
        });
        let mut merged = a.finish();
        merged.merge(b.finish());
        assert_eq!(merged.events.len(), 2);
        assert_eq!(merged.events[0].seq, 0);
        assert_eq!(merged.events[1].seq, 1);
        assert_eq!(merged.events[1].time, 2.0);
    }

    #[test]
    fn snapshot_restore_rewinds_to_bit_identical_artifacts() {
        let mut tel = Telemetry::enabled();
        tel.emit(1.0, 0, || EventKind::Admit {
            request: RequestId::new(1),
            hops: 1,
        });
        let snap = tel.snapshot();
        let mut reference = Telemetry::enabled();
        reference.restore(&snap);
        // Diverge, then rewind and replay the same tail on both.
        tel.emit(9.0, 1, || EventKind::Admit {
            request: RequestId::new(9),
            hops: 3,
        });
        tel.restore(&snap);
        for session in [&mut tel, &mut reference] {
            session.emit(2.0, 1, || EventKind::Admit {
                request: RequestId::new(2),
                hops: 2,
            });
        }
        assert_eq!(tel.finish(), reference.finish());
    }

    #[test]
    fn disabled_snapshot_restores_to_disabled() {
        let tel = Telemetry::disabled();
        let snap = tel.snapshot();
        let mut target = Telemetry::enabled();
        target.restore(&snap);
        assert!(!target.is_enabled());
    }

    #[test]
    fn ring_bound_counts_dropped_events() {
        let mut tel = Telemetry::with_capacity(2, 2);
        for i in 0..5u32 {
            tel.emit(f64::from(i), 0, || EventKind::Admit {
                request: RequestId::new(i),
                hops: 1,
            });
        }
        let artifacts = tel.finish();
        assert_eq!(artifacts.events.len(), 2);
        assert_eq!(artifacts.dropped_events, 3);
        assert_eq!(artifacts.events[0].seq, 3, "most recent events survive");
    }
}
