//! Validated scalar quantities.
//!
//! The paper manipulates several physically distinct scalars — resource
//! capacity `A_v`, per-instance demand `D_f`, packet arrival rate `λ_r`,
//! service rate `μ_f`, delivery probability `P_r` and node utilization — all
//! of which would be bare `f64`s in a careless implementation. Each gets a
//! newtype here with validation at the boundary: values are finite, rates and
//! demands strictly positive, probabilities in `(0, 1]`. Downstream code can
//! therefore rely on these invariants without re-checking.

use std::fmt;
use std::iter::Sum;
use std::ops::Add;

use serde::{Deserialize, Serialize};

use crate::ModelError;

macro_rules! forward_display {
    ($name:ident, $unit:expr) => {
        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{}", $unit), self.0)
            }
        }
    };
}

/// CPU-bounded resource capacity `A_v` of a computing node, in abstract
/// resource units (the paper's unit: 64-byte packets at 10 kpps).
///
/// A capacity is finite and non-negative. **Zero capacity is deliberately
/// constructible** and models a node that is administratively offline; the
/// semantics are fully defined rather than rejected at construction:
/// [`fits`](Self::fits) refuses every positive demand (so placers never
/// select such a node), [`saturating_sub`](Self::saturating_sub) stays at
/// zero, and [`utilization_of`](Self::utilization_of) reports
/// [`Utilization::ZERO`] instead of dividing by zero.
///
/// # Examples
///
/// ```
/// use nfv_model::{Capacity, Demand};
/// # fn main() -> Result<(), nfv_model::ModelError> {
/// let cap = Capacity::new(100.0)?;
/// let demand = Demand::new(30.0)?;
/// assert!(cap.fits(demand));
/// assert_eq!(cap.saturating_sub(demand).value(), 70.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Capacity(f64);

impl Capacity {
    /// Creates a capacity of `units` resource units.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] if `units` is negative, NaN or
    /// infinite.
    pub fn new(units: f64) -> Result<Self, ModelError> {
        if units.is_finite() && units >= 0.0 {
            Ok(Self(units))
        } else {
            Err(ModelError::invalid_quantity("capacity", units))
        }
    }

    /// The capacity in resource units.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Whether `demand` fits entirely within this capacity.
    #[must_use]
    pub fn fits(self, demand: Demand) -> bool {
        demand.value() <= self.0
    }

    /// Remaining capacity after serving `demand`, clamped at zero.
    #[must_use]
    pub fn saturating_sub(self, demand: Demand) -> Self {
        Self((self.0 - demand.value()).max(0.0))
    }

    /// Fraction of this capacity consumed by `demand` (the paper's
    /// per-node utilization term in Eq. (13)).
    ///
    /// Returns [`Utilization::ZERO`] for a zero capacity, which can never
    /// host any demand.
    #[must_use]
    pub fn utilization_of(self, demand: Demand) -> Utilization {
        if self.0 == 0.0 {
            Utilization::ZERO
        } else {
            Utilization::from_ratio(demand.value() / self.0)
        }
    }
}

impl Add for Capacity {
    type Output = Capacity;

    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sum for Capacity {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|c| c.0).sum())
    }
}

forward_display!(Capacity, " units");

/// Resource demand `D_f` of a single service instance of a VNF, in the same
/// abstract units as [`Capacity`].
///
/// Demands are finite and non-negative. A zero demand is permitted (a VNF
/// whose footprint is negligible at the chosen granularity) so that workload
/// generators can produce degenerate corner cases, but most constructors in
/// higher-level crates require positive demand.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Demand(f64);

impl Demand {
    /// Zero demand.
    pub const ZERO: Demand = Demand(0.0);

    /// Creates a demand of `units` resource units.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] if `units` is negative, NaN or
    /// infinite.
    pub fn new(units: f64) -> Result<Self, ModelError> {
        if units.is_finite() && units >= 0.0 {
            Ok(Self(units))
        } else {
            Err(ModelError::invalid_quantity("demand", units))
        }
    }

    /// The demand in resource units.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Total demand of `instances` identical service instances, the paper's
    /// `D_f^sum = M_f · D_f`.
    #[must_use]
    pub fn scaled(self, instances: u32) -> Self {
        Self(self.0 * f64::from(instances))
    }
}

impl Add for Demand {
    type Output = Demand;

    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sum for Demand {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|d| d.0).sum())
    }
}

forward_display!(Demand, " units");

/// Average packet arrival rate `λ_r` of a request, in packets per second.
///
/// Arrival rates are finite and strictly positive: a request that never sends
/// packets is not a request.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct ArrivalRate(f64);

impl ArrivalRate {
    /// Creates an arrival rate of `pps` packets per second.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] if `pps` is not finite and
    /// strictly positive.
    pub fn new(pps: f64) -> Result<Self, ModelError> {
        if pps.is_finite() && pps > 0.0 {
            Ok(Self(pps))
        } else {
            Err(ModelError::invalid_quantity("arrival rate", pps))
        }
    }

    /// The rate in packets per second.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Equivalent arrival rate after loss feedback, the paper's `λ_r / P_r`
    /// (Eq. (7)): lost packets are retransmitted, inflating the effective
    /// load seen by every instance on the chain.
    #[must_use]
    pub fn inflated_by_loss(self, delivery: DeliveryProbability) -> Self {
        Self(self.0 / delivery.value())
    }
}

impl Add for ArrivalRate {
    type Output = ArrivalRate;

    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

forward_display!(ArrivalRate, " pps");

/// Average service rate `μ_f` of one service instance of a VNF, in packets
/// per second. Service times are exponentially distributed with this rate.
///
/// Service rates are finite and strictly positive (`μ_f > 0` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct ServiceRate(f64);

impl ServiceRate {
    /// Creates a service rate of `pps` packets per second.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] if `pps` is not finite and
    /// strictly positive.
    pub fn new(pps: f64) -> Result<Self, ModelError> {
        if pps.is_finite() && pps > 0.0 {
            Ok(Self(pps))
        } else {
            Err(ModelError::invalid_quantity("service rate", pps))
        }
    }

    /// The rate in packets per second.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Mean service time of one packet, `1/μ_f`, in seconds.
    #[must_use]
    pub fn mean_service_time(self) -> f64 {
        1.0 / self.0
    }
}

forward_display!(ServiceRate, " pps");

/// Probability `P_r ∈ (0, 1]` that a packet of a request is received
/// correctly by its destination; `1 − P_r` is the packet loss rate.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct DeliveryProbability(f64);

impl DeliveryProbability {
    /// Lossless delivery, `P = 1`.
    pub const PERFECT: DeliveryProbability = DeliveryProbability(1.0);

    /// Creates a delivery probability.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] unless `0 < p ≤ 1`.
    pub fn new(p: f64) -> Result<Self, ModelError> {
        if p.is_finite() && p > 0.0 && p <= 1.0 {
            Ok(Self(p))
        } else {
            Err(ModelError::invalid_quantity("delivery probability", p))
        }
    }

    /// Creates a delivery probability from a loss rate `1 − P`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] unless `0 ≤ loss < 1`.
    pub fn from_loss_rate(loss: f64) -> Result<Self, ModelError> {
        if loss.is_finite() && (0.0..1.0).contains(&loss) {
            Ok(Self(1.0 - loss))
        } else {
            Err(ModelError::invalid_quantity("loss rate", loss))
        }
    }

    /// The probability value.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The complementary packet loss rate `1 − P`.
    #[must_use]
    pub fn loss_rate(self) -> f64 {
        1.0 - self.0
    }
}

impl fmt::Display for DeliveryProbability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P={}", self.0)
    }
}

/// Fraction of a resource in use. Values are clamped to `[0, ∞)`; a
/// utilization above `1.0` indicates oversubscription and is representable so
/// that infeasible configurations can be reported rather than silently
/// clamped.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Utilization(f64);

impl Utilization {
    /// An idle resource.
    pub const ZERO: Utilization = Utilization(0.0);

    /// A fully utilized resource.
    pub const FULL: Utilization = Utilization(1.0);

    /// Creates a utilization from a raw ratio, clamping negatives and NaN to
    /// zero.
    #[must_use]
    pub fn from_ratio(ratio: f64) -> Self {
        if ratio.is_finite() && ratio > 0.0 {
            Self(ratio)
        } else {
            Self(0.0)
        }
    }

    /// The utilization as a ratio (1.0 = 100%).
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The utilization as a percentage.
    #[must_use]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Whether the resource is oversubscribed (ratio > 1).
    #[must_use]
    pub fn is_oversubscribed(self) -> bool {
        self.0 > 1.0
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}%", self.percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rejects_negative_and_non_finite() {
        assert!(Capacity::new(-1.0).is_err());
        assert!(Capacity::new(f64::NAN).is_err());
        assert!(Capacity::new(f64::INFINITY).is_err());
        assert!(Capacity::new(0.0).is_ok());
    }

    #[test]
    fn capacity_fit_and_subtraction() {
        let cap = Capacity::new(50.0).unwrap();
        assert!(cap.fits(Demand::new(50.0).unwrap()));
        assert!(!cap.fits(Demand::new(50.5).unwrap()));
        assert_eq!(
            cap.saturating_sub(Demand::new(60.0).unwrap()),
            Capacity::new(0.0).unwrap()
        );
    }

    #[test]
    fn capacity_utilization_handles_zero_capacity() {
        let zero = Capacity::new(0.0).unwrap();
        assert_eq!(
            zero.utilization_of(Demand::new(5.0).unwrap()),
            Utilization::ZERO
        );
    }

    /// Pins the decision that `Capacity::new(0.0)` is *defined* (an
    /// administratively offline node), not rejected: every operation has
    /// total, division-free semantics.
    #[test]
    fn zero_capacity_is_an_offline_node_with_total_semantics() {
        let zero = Capacity::new(0.0).unwrap();
        // No positive demand fits, so placers can never select the node.
        assert!(!zero.fits(Demand::new(1e-12).unwrap()));
        assert!(!zero.fits(Demand::new(5.0).unwrap()));
        // Degenerate zero demand trivially fits.
        assert!(zero.fits(Demand::ZERO));
        // Subtraction saturates instead of going negative.
        assert_eq!(zero.saturating_sub(Demand::new(3.0).unwrap()), zero);
        // 0/0 is defined as idle, not NaN.
        assert_eq!(zero.utilization_of(Demand::ZERO), Utilization::ZERO);
        assert!(!zero
            .utilization_of(Demand::new(9.0).unwrap())
            .value()
            .is_nan());
    }

    #[test]
    fn demand_scaling_matches_paper_dsum() {
        let d = Demand::new(12.5).unwrap();
        assert_eq!(d.scaled(4).value(), 50.0);
        assert_eq!(d.scaled(0).value(), 0.0);
    }

    #[test]
    fn demand_sums() {
        let total: Demand = [1.0, 2.0, 3.5]
            .iter()
            .map(|&v| Demand::new(v).unwrap())
            .sum();
        assert_eq!(total.value(), 6.5);
    }

    #[test]
    fn arrival_rate_must_be_positive() {
        assert!(ArrivalRate::new(0.0).is_err());
        assert!(ArrivalRate::new(-3.0).is_err());
        assert!(ArrivalRate::new(1e-9).is_ok());
    }

    #[test]
    fn loss_feedback_inflates_rate() {
        let lam = ArrivalRate::new(98.0).unwrap();
        let p = DeliveryProbability::new(0.98).unwrap();
        let inflated = lam.inflated_by_loss(p);
        assert!((inflated.value() - 100.0).abs() < 1e-9);
        // Perfect delivery leaves the rate unchanged.
        assert_eq!(lam.inflated_by_loss(DeliveryProbability::PERFECT), lam);
    }

    #[test]
    fn delivery_probability_bounds() {
        assert!(DeliveryProbability::new(0.0).is_err());
        assert!(DeliveryProbability::new(1.0 + 1e-12).is_err());
        assert!(DeliveryProbability::new(1.0).is_ok());
        let p = DeliveryProbability::from_loss_rate(0.02).unwrap();
        assert!((p.value() - 0.98).abs() < 1e-12);
        assert!((p.loss_rate() - 0.02).abs() < 1e-12);
        assert!(DeliveryProbability::from_loss_rate(1.0).is_err());
    }

    #[test]
    fn service_rate_mean_time_is_reciprocal() {
        let mu = ServiceRate::new(200.0).unwrap();
        assert!((mu.mean_service_time() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn utilization_clamps_and_reports_oversubscription() {
        assert_eq!(Utilization::from_ratio(-0.5), Utilization::ZERO);
        assert_eq!(Utilization::from_ratio(f64::NAN), Utilization::ZERO);
        assert!(Utilization::from_ratio(1.25).is_oversubscribed());
        assert!(!Utilization::FULL.is_oversubscribed());
        assert_eq!(Utilization::from_ratio(0.42).percent(), 42.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Capacity::new(5.0).unwrap().to_string(), "5 units");
        assert_eq!(ArrivalRate::new(10.0).unwrap().to_string(), "10 pps");
        assert_eq!(DeliveryProbability::PERFECT.to_string(), "P=1");
        assert_eq!(Utilization::from_ratio(0.5).to_string(), "50.00%");
    }
}
