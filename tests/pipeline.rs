//! End-to-end integration tests of the two-phase pipeline across every
//! algorithm combination.

use nfv::model::VnfId;
use nfv::placement::{Bfd, Bfdsu, Ffd, Nah, Placer};
use nfv::scheduling::{Cga, KkForward, Rckk, RoundRobin, Scheduler};
use nfv::topology::{builders, LinkDelay, Topology};
use nfv::workload::{Scenario, ScenarioBuilder};
use nfv::JointOptimizer;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario(seed: u64) -> Scenario {
    ScenarioBuilder::new()
        .vnfs(10)
        .requests(80)
        .seed(seed)
        .build()
        .unwrap()
}

fn fabric(scenario: &Scenario, seed: u64) -> Topology {
    let per_host = scenario.total_demand().value() / 4.0;
    builders::leaf_spine()
        .leaves(2)
        .spines(2)
        .hosts_per_leaf(4)
        .capacity_range(0.7 * per_host, 1.5 * per_host, seed)
        .link_delay(LinkDelay::from_micros(100.0))
        .build()
        .unwrap()
}

fn placers() -> Vec<Box<dyn Placer>> {
    vec![
        Box::new(Bfdsu::new()),
        Box::new(Bfd::new()),
        Box::new(Ffd::new()),
        Box::new(Nah::new()),
    ]
}

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Rckk::new()),
        Box::new(KkForward::new()),
        Box::new(Cga::new()),
        Box::new(RoundRobin::new()),
    ]
}

#[test]
fn every_algorithm_combination_produces_a_consistent_solution() {
    let scenario = scenario(1);
    let topology = fabric(&scenario, 1);
    for placer_proto in placers() {
        for scheduler_proto in schedulers() {
            let name = format!("{}+{}", placer_proto.name(), scheduler_proto.name());
            let optimizer = JointOptimizer::new()
                .with_placer(clone_placer(placer_proto.name()))
                .with_scheduler(clone_scheduler(scheduler_proto.name()));
            let mut rng = StdRng::seed_from_u64(7);
            let solution = optimizer
                .optimize(&scenario, &topology, &mut rng)
                .unwrap_or_else(|e| panic!("{name} failed: {e}"));

            // Eq. (2): every VNF placed exactly once; capacity (Eq. (6))
            // was validated by Placement::new already.
            assert_eq!(
                solution.placement().assignment().len(),
                scenario.vnfs().len()
            );

            // Eq. (5): every request mapped to exactly one instance of
            // every VNF on its chain, and no instance outside M_f.
            for request in scenario.requests() {
                for vnf in request.chain() {
                    let k = solution
                        .instance_serving(request.id(), *vnf)
                        .unwrap_or_else(|| panic!("{name}: {} unscheduled on {vnf}", request.id()));
                    let m = scenario.vnf(*vnf).unwrap().instances() as usize;
                    assert!(k < m, "{name}: instance {k} out of range {m}");
                }
                // And never scheduled on a VNF outside the chain.
                for vnf in scenario.vnfs() {
                    if !request.uses(vnf.id()) {
                        assert!(solution.instance_serving(request.id(), vnf.id()).is_none());
                    }
                }
            }
        }
    }
}

// Boxed trait objects are not Clone; rebuild by name instead.
fn clone_placer(name: &str) -> Box<dyn Placer> {
    match name {
        "bfdsu" => Box::new(Bfdsu::new()),
        "bfd" => Box::new(Bfd::new()),
        "ffd" => Box::new(Ffd::new()),
        "nah" => Box::new(Nah::new()),
        other => panic!("unknown placer {other}"),
    }
}

fn clone_scheduler(name: &str) -> Box<dyn Scheduler> {
    match name {
        "rckk" => Box::new(Rckk::new()),
        "kk-forward" => Box::new(KkForward::new()),
        "cga" => Box::new(Cga::new()),
        "round-robin" => Box::new(RoundRobin::new()),
        other => panic!("unknown scheduler {other}"),
    }
}

#[test]
fn flow_conservation_across_the_pipeline() {
    // The total effective arrival rate over all instances of a VNF equals
    // the sum over its users of λ_r / P_r (Eq. (7) aggregated).
    let scenario = scenario(2);
    let topology = fabric(&scenario, 2);
    let mut rng = StdRng::seed_from_u64(0);
    let solution = JointOptimizer::new()
        .optimize(&scenario, &topology, &mut rng)
        .unwrap();
    let loads = solution.instance_loads();
    for vnf in scenario.vnfs() {
        let expected: f64 = scenario
            .requests_using(vnf.id())
            .map(|r| r.effective_rate().value())
            .sum();
        let actual: f64 = loads[vnf.id().as_usize()]
            .iter()
            .map(|l| l.equivalent_arrival_rate())
            .sum();
        assert!(
            (expected - actual).abs() < 1e-6,
            "{}: expected {expected}, got {actual}",
            vnf.id()
        );
    }
}

#[test]
fn objective_decomposes_and_is_reproducible() {
    let scenario = scenario(3);
    let topology = fabric(&scenario, 3);
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let solution = JointOptimizer::new()
            .optimize(&scenario, &topology, &mut rng)
            .unwrap();
        solution.objective().unwrap()
    };
    let a = run(11);
    let b = run(11);
    assert_eq!(a, b, "same seed must reproduce the identical objective");

    let per_request: f64 = (0..a.requests()).map(|r| a.total_latency_of(r)).sum();
    assert!((per_request - a.total_latency()).abs() < 1e-9);
    assert!(a
        .response_latencies()
        .iter()
        .all(|&w| w > 0.0 && w.is_finite()));
    assert!(a.link_latencies().iter().all(|&l| l >= 0.0));
}

#[test]
fn colocated_chains_pay_no_link_latency() {
    // A scenario small enough to fit on one node: every chain is
    // intra-server (Fig. 1(b)), so the link part of Eq. (16) is zero.
    let scenario = ScenarioBuilder::new()
        .vnfs(5)
        .requests(30)
        .seed(4)
        .build()
        .unwrap();
    let big = scenario.total_demand().value() * 2.0;
    let topology = builders::star()
        .hosts(4)
        .capacities(vec![big, 1.0, 1.0, 1.0])
        .link_delay(LinkDelay::from_micros(500.0))
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let solution = JointOptimizer::new()
        .optimize(&scenario, &topology, &mut rng)
        .unwrap();
    assert_eq!(solution.placement().nodes_in_service(), 1);
    let objective = solution.objective().unwrap();
    assert!(objective.link_latencies().iter().all(|&l| l == 0.0));
    assert_eq!(objective.average_link_latency(), 0.0);
}

#[test]
fn tighter_packing_reduces_link_latency_against_spreading() {
    // BFDSU's consolidation should not traverse more nodes on average than
    // NAH's spreading. On a single draw the two can land within a few
    // hundredths of a node of each other with either sign (see
    // EXPERIMENTS.md, "Shape test tolerances"), so compare means over a
    // handful of scenario/RNG seeds.
    let avg_nodes =
        |placer: Box<dyn Placer>, scenario: &Scenario, topology: &Topology, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let solution = JointOptimizer::new()
                .with_placer(placer)
                .optimize(scenario, topology, &mut rng)
                .unwrap();
            let total: usize = scenario
                .requests()
                .iter()
                .map(|r| solution.nodes_traversed(r.id()).len())
                .sum();
            total as f64 / scenario.requests().len() as f64
        };
    let mut bfdsu_mean = 0.0;
    let mut nah_mean = 0.0;
    let seeds = [6u64, 7, 8, 9, 10];
    for &s in &seeds {
        let scenario = scenario(s);
        let topology = fabric(&scenario, s);
        bfdsu_mean += avg_nodes(Box::new(Bfdsu::new()), &scenario, &topology, s + 3);
        nah_mean += avg_nodes(Box::new(Nah::new()), &scenario, &topology, s + 3);
    }
    bfdsu_mean /= seeds.len() as f64;
    nah_mean /= seeds.len() as f64;
    assert!(
        bfdsu_mean <= nah_mean + 1e-9,
        "bfdsu {bfdsu_mean} > nah {nah_mean}"
    );
}

#[test]
fn instance_loads_match_schedule_assignments() {
    let scenario = scenario(7);
    let topology = fabric(&scenario, 7);
    let mut rng = StdRng::seed_from_u64(1);
    let solution = JointOptimizer::new()
        .optimize(&scenario, &topology, &mut rng)
        .unwrap();
    let loads = solution.instance_loads();
    for vnf in scenario.vnfs() {
        let schedule = solution.schedule_of(vnf.id()).unwrap();
        let sums = schedule.instance_rate_sums();
        for (k, load) in loads[vnf.id().as_usize()].iter().enumerate() {
            assert!(
                (load.external_arrival_rate() - sums[k]).abs() < 1e-9,
                "{} instance {k}",
                vnf.id()
            );
        }
    }
    // Spot-check the reverse lookup.
    let request = &scenario.requests()[0];
    let vnf: VnfId = request.chain().first();
    let k = solution.instance_serving(request.id(), vnf).unwrap();
    assert!(loads[vnf.as_usize()][k].request_count() >= 1);
}
