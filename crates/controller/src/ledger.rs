//! The live load ledger: who is assigned where, at what rate.

use std::collections::BTreeMap;

use nfv_model::{ArrivalRate, DeliveryProbability, RequestId, ServiceRate, VnfId};
use nfv_queueing::InstanceLoad;
use nfv_workload::Scenario;

use crate::ControllerError;

/// Per-VNF slice of the ledger.
#[derive(Debug, Clone, PartialEq)]
struct VnfLedger {
    service: ServiceRate,
    /// Outage depth per instance: 0 means up. Overlapping outage windows
    /// stack, so the first `InstanceUp` of two overlapping outages does
    /// *not* resurrect the instance — only the last one does.
    down: Vec<u32>,
    /// Whole-VNF unavailability: the hosting compute node is dark. Every
    /// instance of the VNF is unavailable regardless of its own
    /// per-instance outage depth.
    host_down: bool,
    /// Members of each instance, keyed by request id. The map (not a
    /// running sum) is the source of truth: sums are recomputed from it in
    /// id order on every mutation, so an `add` followed by a `remove`
    /// restores the previous sums *bit for bit* — a running `+= / -=`
    /// would not, because float subtraction does not undo addition.
    members: Vec<BTreeMap<RequestId, (ArrivalRate, DeliveryProbability)>>,
    /// Cached Kleinrock-merged loss-inflated rate `Λ_k = Σ λ_r/P_r` per
    /// instance, recomputed from `members` after each mutation.
    sums: Vec<f64>,
    /// Which instance each active request of this VNF sits on.
    home: BTreeMap<RequestId, usize>,
}

impl VnfLedger {
    fn instance_up(&self, k: usize) -> bool {
        !self.host_down && self.down.get(k) == Some(&0)
    }

    fn up_instances(&self) -> usize {
        if self.host_down {
            0
        } else {
            self.down.iter().filter(|&&d| d == 0).count()
        }
    }

    fn recompute_sum(&mut self, k: usize) {
        self.sums[k] = self.members[k]
            .values()
            .map(|(rate, delivery)| rate.inflated_by_loss(*delivery).value())
            .sum();
    }
}

/// Load ledger over every VNF of a scenario: tracks, per service instance,
/// the set of assigned requests and their Kleinrock-merged loss-inflated
/// arrival rate `Λ_k^f = Σ λ_r / P_r` (Eq. (7) of the paper), supporting
/// incremental assignment and removal under churn.
///
/// # Examples
///
/// ```
/// use nfv_controller::ControllerState;
/// use nfv_workload::ScenarioBuilder;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scenario = ScenarioBuilder::new().vnfs(4).requests(20).seed(1).build()?;
/// let mut state = ControllerState::new(&scenario);
/// let request = &scenario.requests()[0];
/// let vnf = request.chain().as_slice()[0];
/// let k = state.least_loaded_up(vnf).unwrap();
/// state.add_request(vnf, k, request.id(), request.arrival_rate(), request.delivery())?;
/// assert_eq!(state.home_of(vnf, request.id()), Some(k));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerState {
    vnfs: BTreeMap<VnfId, VnfLedger>,
}

impl ControllerState {
    /// Creates an all-idle, all-up ledger matching a scenario's VNF fleet.
    #[must_use]
    pub fn new(scenario: &Scenario) -> Self {
        let vnfs = scenario
            .vnfs()
            .iter()
            .map(|vnf| {
                let m = vnf.instances() as usize;
                (
                    vnf.id(),
                    VnfLedger {
                        service: vnf.service_rate(),
                        down: vec![0; m],
                        host_down: false,
                        members: vec![BTreeMap::new(); m],
                        sums: vec![0.0; m],
                        home: BTreeMap::new(),
                    },
                )
            })
            .collect();
        Self { vnfs }
    }

    fn ledger(&self, vnf: VnfId) -> Option<&VnfLedger> {
        self.vnfs.get(&vnf)
    }

    fn ledger_mut(&mut self, vnf: VnfId) -> Result<&mut VnfLedger, ControllerError> {
        self.vnfs
            .get_mut(&vnf)
            .ok_or(ControllerError::UnknownVnf { vnf })
    }

    /// Number of instances of a VNF (0 for an unknown VNF).
    #[must_use]
    pub fn instances(&self, vnf: VnfId) -> usize {
        self.ledger(vnf).map_or(0, |l| l.sums.len())
    }

    /// The VNF's service rate `μ_f`, if the VNF exists.
    #[must_use]
    pub fn service_rate(&self, vnf: VnfId) -> Option<ServiceRate> {
        self.ledger(vnf).map(|l| l.service)
    }

    /// Whether an instance is currently up: its own outage depth is zero
    /// *and* its hosting node (if the controller tracks one) is in
    /// service.
    #[must_use]
    pub fn is_up(&self, vnf: VnfId, instance: usize) -> bool {
        self.ledger(vnf).is_some_and(|l| l.instance_up(instance))
    }

    /// Marks an instance up or down — a convenience wrapper over
    /// [`mark_down`](Self::mark_down) / [`mark_up`](Self::mark_up) that
    /// discards the staleness verdict. Out-of-range coordinates are
    /// ignored (a trace may name an instance the scenario doesn't have).
    pub fn set_up(&mut self, vnf: VnfId, instance: usize, up: bool) {
        if up {
            self.mark_up(vnf, instance);
        } else {
            self.mark_down(vnf, instance);
        }
    }

    /// Opens one outage window on an instance (outage depth `+= 1`).
    /// Returns `false` — and changes nothing — when the coordinates don't
    /// name a live instance, so the caller can count the event as stale.
    pub fn mark_down(&mut self, vnf: VnfId, instance: usize) -> bool {
        let Some(depth) = self
            .vnfs
            .get_mut(&vnf)
            .and_then(|l| l.down.get_mut(instance))
        else {
            return false;
        };
        *depth += 1;
        true
    }

    /// Closes one outage window on an instance (outage depth `-= 1`).
    /// Returns `false` — and changes nothing — when the coordinates don't
    /// name a live instance *or* the instance has no open outage window
    /// (a stale recovery for an instance that was re-placed away, or a
    /// duplicate `InstanceUp`).
    pub fn mark_up(&mut self, vnf: VnfId, instance: usize) -> bool {
        let Some(depth) = self
            .vnfs
            .get_mut(&vnf)
            .and_then(|l| l.down.get_mut(instance))
        else {
            return false;
        };
        if *depth == 0 {
            return false;
        }
        *depth -= 1;
        true
    }

    /// Current outage depth of an instance (0 when up or unknown).
    #[must_use]
    pub fn outage_depth(&self, vnf: VnfId, instance: usize) -> u32 {
        self.ledger(vnf)
            .and_then(|l| l.down.get(instance))
            .copied()
            .unwrap_or(0)
    }

    /// Sets or clears whole-VNF unavailability (the hosting node went dark
    /// or returned). Unknown VNFs are ignored.
    pub fn set_host_down(&mut self, vnf: VnfId, down: bool) {
        if let Some(ledger) = self.vnfs.get_mut(&vnf) {
            ledger.host_down = down;
        }
    }

    /// Whether the VNF's hosting node is currently marked dark.
    #[must_use]
    pub fn host_down(&self, vnf: VnfId) -> bool {
        self.ledger(vnf).is_some_and(|l| l.host_down)
    }

    /// Whether every VNF has at least one up instance — the availability
    /// predicate the resilience experiments track over time.
    #[must_use]
    pub fn fully_available(&self) -> bool {
        self.vnfs.values().all(|l| l.up_instances() > 0)
    }

    /// Merged loss-inflated rate `Λ_k^f` of one instance.
    #[must_use]
    pub fn instance_sum(&self, vnf: VnfId, instance: usize) -> f64 {
        self.ledger(vnf)
            .and_then(|l| l.sums.get(instance))
            .copied()
            .unwrap_or(0.0)
    }

    /// All per-instance merged rates of one VNF.
    #[must_use]
    pub fn sums(&self, vnf: VnfId) -> &[f64] {
        self.ledger(vnf).map_or(&[], |l| &l.sums)
    }

    /// The *up* instance with the smallest merged rate (lowest index on
    /// ties — the same rule as the offline crate's `OnlineDispatcher`), or
    /// `None` if every instance is down or the VNF is unknown.
    #[must_use]
    pub fn least_loaded_up(&self, vnf: VnfId) -> Option<usize> {
        let ledger = self.ledger(vnf)?;
        ledger
            .sums
            .iter()
            .enumerate()
            .filter(|&(k, _)| ledger.instance_up(k))
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("sums are finite"))
            .map(|(k, _)| k)
    }

    /// Whether an instance is up and would stay strictly stable
    /// (`Λ + λ/P < μ`, Eq. (9)) after admitting the given traffic.
    #[must_use]
    pub fn can_accept(
        &self,
        vnf: VnfId,
        instance: usize,
        rate: ArrivalRate,
        delivery: DeliveryProbability,
    ) -> bool {
        self.can_accept_within(vnf, instance, rate, delivery, 1.0)
    }

    /// Like [`can_accept`](Self::can_accept), but against a tightened
    /// utilization budget: the merged rate after admission must stay
    /// strictly below `headroom · μ`. `headroom = 1.0` is plain strict
    /// stability; the brownout admission mode passes a smaller fraction
    /// while any node is down.
    #[must_use]
    pub fn can_accept_within(
        &self,
        vnf: VnfId,
        instance: usize,
        rate: ArrivalRate,
        delivery: DeliveryProbability,
        headroom: f64,
    ) -> bool {
        let Some(ledger) = self.ledger(vnf) else {
            return false;
        };
        if !ledger.instance_up(instance) {
            return false;
        }
        ledger.sums[instance] + rate.inflated_by_loss(delivery).value()
            < headroom * ledger.service.value()
    }

    /// Assigns a request to an instance.
    ///
    /// # Errors
    ///
    /// [`ControllerError::UnknownVnf`] / [`ControllerError::NoSuchInstance`]
    /// for bad coordinates, [`ControllerError::DuplicateAssignment`] if the
    /// request already sits on some instance of this VNF.
    pub fn add_request(
        &mut self,
        vnf: VnfId,
        instance: usize,
        id: RequestId,
        rate: ArrivalRate,
        delivery: DeliveryProbability,
    ) -> Result<(), ControllerError> {
        let ledger = self.ledger_mut(vnf)?;
        if instance >= ledger.members.len() {
            return Err(ControllerError::NoSuchInstance { vnf, instance });
        }
        if ledger.home.contains_key(&id) {
            return Err(ControllerError::DuplicateAssignment { vnf, request: id });
        }
        ledger.members[instance].insert(id, (rate, delivery));
        ledger.home.insert(id, instance);
        ledger.recompute_sum(instance);
        Ok(())
    }

    /// Removes a request from whatever instance of `vnf` holds it,
    /// returning that instance, or `None` if the request is not assigned.
    pub fn remove_request(&mut self, vnf: VnfId, id: RequestId) -> Option<usize> {
        let ledger = self.vnfs.get_mut(&vnf)?;
        let instance = ledger.home.remove(&id)?;
        ledger.members[instance].remove(&id);
        ledger.recompute_sum(instance);
        Some(instance)
    }

    /// The instance of `vnf` currently serving `id`.
    #[must_use]
    pub fn home_of(&self, vnf: VnfId, id: RequestId) -> Option<usize> {
        self.ledger(vnf).and_then(|l| l.home.get(&id)).copied()
    }

    /// Ids of every request assigned to any instance of `vnf`, ascending.
    #[must_use]
    pub fn active_ids(&self, vnf: VnfId) -> Vec<RequestId> {
        self.ledger(vnf)
            .map_or_else(Vec::new, |l| l.home.keys().copied().collect())
    }

    /// Ids of the requests on one instance, ascending.
    #[must_use]
    pub fn members_of(&self, vnf: VnfId, instance: usize) -> Vec<RequestId> {
        self.ledger(vnf)
            .and_then(|l| l.members.get(instance))
            .map_or_else(Vec::new, |m| m.keys().copied().collect())
    }

    /// Number of requests on one instance.
    #[must_use]
    pub fn member_count(&self, vnf: VnfId, instance: usize) -> usize {
        self.ledger(vnf)
            .and_then(|l| l.members.get(instance))
            .map_or(0, BTreeMap::len)
    }

    /// Reconstructs the queueing-theoretic [`InstanceLoad`] of an instance
    /// by merging its members in id order.
    #[must_use]
    pub fn instance_load(&self, vnf: VnfId, instance: usize) -> Option<InstanceLoad> {
        let ledger = self.ledger(vnf)?;
        let members = ledger.members.get(instance)?;
        let mut load = InstanceLoad::new(ledger.service);
        for (rate, delivery) in members.values() {
            load.add_request(*rate, *delivery);
        }
        Some(load)
    }

    /// Utilization `ρ = Λ/μ` of one instance.
    #[must_use]
    pub fn utilization(&self, vnf: VnfId, instance: usize) -> f64 {
        self.ledger(vnf)
            .map_or(0.0, |l| l.sums[instance] / l.service.value())
    }

    /// Iterates over the VNF ids in ascending order.
    pub fn vnf_ids(&self) -> impl Iterator<Item = VnfId> + '_ {
        self.vnfs.keys().copied()
    }

    /// Number of *up* instances of a VNF (0 for an unknown VNF or one
    /// whose hosting node is dark).
    #[must_use]
    pub fn up_count(&self, vnf: VnfId) -> usize {
        self.ledger(vnf).map_or(0, VnfLedger::up_instances)
    }

    /// Total Kleinrock-merged loss-inflated rate `Λ_f = Σ_k Λ_k^f` over
    /// every instance of a VNF. Sums the cached per-instance sums in
    /// index order, so the value is bit-stable across clones.
    #[must_use]
    pub fn total_sum(&self, vnf: VnfId) -> f64 {
        self.ledger(vnf).map_or(0.0, |l| l.sums.iter().sum())
    }

    /// Appends a fresh, empty, up instance to a VNF (a scale-out step of
    /// the re-placement phase) and returns its index. Followed by
    /// [`retire_instance`](Self::retire_instance), the ledger is restored
    /// `==` bit-for-bit.
    ///
    /// # Errors
    ///
    /// [`ControllerError::UnknownVnf`] if the VNF does not exist.
    pub fn add_instance(&mut self, vnf: VnfId) -> Result<usize, ControllerError> {
        let ledger = self.ledger_mut(vnf)?;
        ledger.down.push(0);
        ledger.members.push(BTreeMap::new());
        ledger.sums.push(0.0);
        Ok(ledger.sums.len() - 1)
    }

    /// Removes the *last* instance of a VNF (a scale-in step; only the
    /// highest index may retire so surviving indices stay dense and stable)
    /// and returns the removed index. The instance must be empty — drain
    /// its members to siblings first.
    ///
    /// # Errors
    ///
    /// [`ControllerError::UnknownVnf`] for a bad id,
    /// [`ControllerError::LastInstance`] when only one instance remains,
    /// [`ControllerError::InstanceOccupied`] when requests still sit on the
    /// last instance.
    pub fn retire_instance(&mut self, vnf: VnfId) -> Result<usize, ControllerError> {
        let ledger = self.ledger_mut(vnf)?;
        if ledger.sums.len() <= 1 {
            return Err(ControllerError::LastInstance { vnf });
        }
        let last = ledger.sums.len() - 1;
        if !ledger.members[last].is_empty() {
            return Err(ControllerError::InstanceOccupied {
                vnf,
                instance: last,
            });
        }
        ledger.down.pop();
        ledger.members.pop();
        ledger.sums.pop();
        Ok(last)
    }

    /// The predicted average delivery response time *if every VNF's live
    /// load were split evenly across its up instances* — the metric the
    /// re-placement hysteresis gates on. [`predicted_latency`] reflects the
    /// current (possibly lopsided) assignment, under which a freshly added
    /// empty instance changes nothing; the balanced projection credits the
    /// scheduling pass that follows a scale-out within the same tick.
    ///
    /// Per VNF with `m` up instances, total inflated rate `Λ` and total
    /// external rate `λ_ext`: each instance carries `Λ/m`, contributing
    /// `m · ρ/(1−ρ)` expected packets with `ρ = Λ/(m·μ)`; the system-wide
    /// mean is `Σ_f m_f·E[N_f] / Σ_f λ_ext_f` (Little's law over
    /// Eq. (11)), the same aggregation as [`predicted_latency`]. Idle
    /// systems report 0; a VNF with live load and no up instance (or
    /// `ρ ≥ 1`, impossible under strict admission) reports infinity.
    ///
    /// [`predicted_latency`]: Self::predicted_latency
    #[must_use]
    pub fn balanced_latency(&self) -> f64 {
        let mut packets = 0.0;
        let mut total_external = 0.0;
        for ledger in self.vnfs.values() {
            let external: f64 = ledger
                .members
                .iter()
                .flat_map(BTreeMap::values)
                .map(|(rate, _)| rate.value())
                .sum();
            if external == 0.0 {
                continue;
            }
            let m = ledger.up_instances();
            if m == 0 {
                return f64::INFINITY;
            }
            let inflated: f64 = ledger.sums.iter().sum();
            let rho = inflated / (m as f64 * ledger.service.value());
            if rho >= 1.0 {
                return f64::INFINITY;
            }
            packets += m as f64 * rho / (1.0 - rho);
            total_external += external;
        }
        if total_external == 0.0 {
            0.0
        } else {
            packets / total_external
        }
    }

    /// The system-wide predicted average delivery response time: every
    /// instance's `W(f,k)` (Eq. (11)) weighted by its external arrival
    /// rate, divided by the total external rate — i.e. the expected
    /// per-hop-summed latency of a random in-flight packet. Idle systems
    /// report 0; an unstable instance (impossible under strict admission)
    /// reports infinity.
    #[must_use]
    pub fn predicted_latency(&self) -> f64 {
        let mut weighted = 0.0;
        let mut total_external = 0.0;
        for (&vnf, ledger) in &self.vnfs {
            for k in 0..ledger.sums.len() {
                let load = self.instance_load(vnf, k).expect("instance exists");
                if load.request_count() == 0 {
                    continue;
                }
                match load.mean_delivery_response_time() {
                    Ok(w) => {
                        weighted += load.external_arrival_rate() * w;
                        total_external += load.external_arrival_rate();
                    }
                    Err(_) => return f64::INFINITY,
                }
            }
        }
        if total_external == 0.0 {
            0.0
        } else {
            weighted / total_external
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_workload::ScenarioBuilder;

    fn state() -> (Scenario, ControllerState) {
        let scenario = ScenarioBuilder::new()
            .vnfs(4)
            .requests(24)
            .seed(2)
            .build()
            .unwrap();
        let state = ControllerState::new(&scenario);
        (scenario, state)
    }

    #[test]
    fn fresh_ledger_is_idle_and_up() {
        let (scenario, state) = state();
        for vnf in scenario.vnfs() {
            assert_eq!(state.instances(vnf.id()), vnf.instances() as usize);
            for k in 0..state.instances(vnf.id()) {
                assert!(state.is_up(vnf.id(), k));
                assert_eq!(state.instance_sum(vnf.id(), k), 0.0);
                assert_eq!(state.member_count(vnf.id(), k), 0);
            }
        }
    }

    #[test]
    fn add_then_remove_restores_sums_bit_for_bit() {
        let (scenario, mut state) = state();
        // Pre-load a few requests so the removal lands on non-trivial sums.
        for request in &scenario.requests()[..6] {
            for &vnf in request.chain() {
                let k = state.least_loaded_up(vnf).unwrap();
                state
                    .add_request(
                        vnf,
                        k,
                        request.id(),
                        request.arrival_rate(),
                        request.delivery(),
                    )
                    .unwrap();
            }
        }
        let snapshot = state.clone();
        let extra = &scenario.requests()[10];
        for &vnf in extra.chain() {
            let k = state.least_loaded_up(vnf).unwrap();
            state
                .add_request(vnf, k, extra.id(), extra.arrival_rate(), extra.delivery())
                .unwrap();
        }
        assert_ne!(state, snapshot);
        for &vnf in extra.chain() {
            assert!(state.remove_request(vnf, extra.id()).is_some());
        }
        assert_eq!(state, snapshot); // PartialEq compares f64 sums exactly
    }

    #[test]
    fn least_loaded_skips_down_instances() {
        let (scenario, mut state) = state();
        let vnf = scenario
            .vnfs()
            .iter()
            .find(|v| v.instances() >= 2)
            .unwrap()
            .id();
        state.set_up(vnf, 0, false);
        assert_ne!(state.least_loaded_up(vnf), Some(0));
        for k in 0..state.instances(vnf) {
            state.set_up(vnf, k, false);
        }
        assert_eq!(state.least_loaded_up(vnf), None);
    }

    #[test]
    fn overlapping_outages_stack_instead_of_resurrecting() {
        // Regression: two overlapping outage windows on the same instance.
        // The first recovery must NOT bring the instance back; only the
        // last one may.
        let (scenario, mut state) = state();
        let vnf = scenario.vnfs()[0].id();
        assert!(state.mark_down(vnf, 0)); // first outage opens
        assert!(state.mark_down(vnf, 0)); // second overlaps
        assert_eq!(state.outage_depth(vnf, 0), 2);
        assert!(state.mark_up(vnf, 0)); // first outage ends
        assert!(!state.is_up(vnf, 0), "still inside the second outage");
        assert!(state.mark_up(vnf, 0)); // second outage ends
        assert!(state.is_up(vnf, 0));
        // A further recovery is stale, not a resurrection.
        assert!(!state.mark_up(vnf, 0));
        assert!(state.is_up(vnf, 0));
    }

    #[test]
    fn stale_coordinates_are_reported_not_applied() {
        let (scenario, mut state) = state();
        let vnf = scenario.vnfs()[0].id();
        let snapshot = state.clone();
        assert!(!state.mark_down(vnf, 999), "unknown instance");
        assert!(!state.mark_down(VnfId::new(999), 0), "unknown VNF");
        assert!(!state.mark_up(vnf, 0), "instance was never down");
        assert_eq!(state, snapshot, "stale events change nothing");
    }

    #[test]
    fn host_down_blanks_the_whole_vnf() {
        let (scenario, mut state) = state();
        let vnf = scenario.vnfs()[0].id();
        assert!(state.fully_available());
        state.set_host_down(vnf, true);
        assert!(state.host_down(vnf));
        assert_eq!(state.up_count(vnf), 0);
        assert_eq!(state.least_loaded_up(vnf), None);
        assert!(!state.is_up(vnf, 0));
        assert!(!state.fully_available());
        // Per-instance outage depth is preserved underneath.
        state.mark_down(vnf, 0);
        state.set_host_down(vnf, false);
        assert!(!state.is_up(vnf, 0), "its own outage window is still open");
        assert!(state.is_up(vnf, 1));
        assert!(state.fully_available());
    }

    #[test]
    fn can_accept_within_tightens_the_budget() {
        let (scenario, state) = state();
        let vnf = &scenario.vnfs()[0];
        let mu = vnf.service_rate().value();
        let id = vnf.id();
        let near = ArrivalRate::new(mu * 0.9).unwrap();
        assert!(state.can_accept(id, 0, near, DeliveryProbability::PERFECT));
        assert!(!state.can_accept_within(id, 0, near, DeliveryProbability::PERFECT, 0.85));
        let small = ArrivalRate::new(mu * 0.5).unwrap();
        assert!(state.can_accept_within(id, 0, small, DeliveryProbability::PERFECT, 0.85));
    }

    #[test]
    fn can_accept_enforces_strict_stability_and_up() {
        let (scenario, mut state) = state();
        let vnf = &scenario.vnfs()[0];
        let mu = vnf.service_rate().value();
        let id = vnf.id();
        let exact = ArrivalRate::new(mu).unwrap();
        let below = ArrivalRate::new(mu * 0.999).unwrap();
        assert!(!state.can_accept(id, 0, exact, DeliveryProbability::PERFECT));
        assert!(state.can_accept(id, 0, below, DeliveryProbability::PERFECT));
        state.set_up(id, 0, false);
        assert!(!state.can_accept(id, 0, below, DeliveryProbability::PERFECT));
    }

    #[test]
    fn duplicate_and_bad_coordinates_error() {
        let (scenario, mut state) = state();
        let request = &scenario.requests()[0];
        let vnf = request.chain().as_slice()[0];
        state
            .add_request(
                vnf,
                0,
                request.id(),
                request.arrival_rate(),
                request.delivery(),
            )
            .unwrap();
        assert!(matches!(
            state.add_request(
                vnf,
                0,
                request.id(),
                request.arrival_rate(),
                request.delivery()
            ),
            Err(ControllerError::DuplicateAssignment { .. })
        ));
        assert!(matches!(
            state.add_request(
                vnf,
                999,
                RequestId::new(9999),
                request.arrival_rate(),
                request.delivery()
            ),
            Err(ControllerError::NoSuchInstance { .. })
        ));
        assert!(matches!(
            state.add_request(
                VnfId::new(999),
                0,
                RequestId::new(9999),
                request.arrival_rate(),
                request.delivery()
            ),
            Err(ControllerError::UnknownVnf { .. })
        ));
        assert_eq!(state.remove_request(vnf, RequestId::new(4242)), None);
    }

    #[test]
    fn instance_load_matches_sums() {
        let (scenario, mut state) = state();
        for request in &scenario.requests()[..8] {
            for &vnf in request.chain() {
                let k = state.least_loaded_up(vnf).unwrap();
                state
                    .add_request(
                        vnf,
                        k,
                        request.id(),
                        request.arrival_rate(),
                        request.delivery(),
                    )
                    .unwrap();
            }
        }
        for vnf in scenario.vnfs() {
            for k in 0..state.instances(vnf.id()) {
                let load = state.instance_load(vnf.id(), k).unwrap();
                assert!(
                    (load.equivalent_arrival_rate() - state.instance_sum(vnf.id(), k)).abs()
                        < 1e-12
                );
                assert_eq!(load.request_count(), state.member_count(vnf.id(), k));
            }
        }
    }

    #[test]
    fn add_then_retire_instance_restores_ledger_bit_for_bit() {
        let (scenario, mut state) = state();
        for request in &scenario.requests()[..6] {
            for &vnf in request.chain() {
                let k = state.least_loaded_up(vnf).unwrap();
                state
                    .add_request(
                        vnf,
                        k,
                        request.id(),
                        request.arrival_rate(),
                        request.delivery(),
                    )
                    .unwrap();
            }
        }
        let snapshot = state.clone();
        let vnf = scenario.vnfs()[0].id();
        let m = state.instances(vnf);
        let k = state.add_instance(vnf).unwrap();
        assert_eq!(k, m);
        assert!(state.is_up(vnf, k));
        assert_eq!(state.instance_sum(vnf, k), 0.0);
        assert_ne!(state, snapshot);
        assert_eq!(state.retire_instance(vnf).unwrap(), m);
        assert_eq!(state, snapshot);
    }

    #[test]
    fn retire_refuses_occupied_and_last_instances() {
        let (scenario, mut state) = state();
        let vnf = scenario.vnfs()[0].id();
        let request = scenario
            .requests()
            .iter()
            .find(|r| r.uses(vnf))
            .expect("some request uses vnf 0");
        let last = state.instances(vnf) - 1;
        state
            .add_request(
                vnf,
                last,
                request.id(),
                request.arrival_rate(),
                request.delivery(),
            )
            .unwrap();
        assert!(matches!(
            state.retire_instance(vnf),
            Err(ControllerError::InstanceOccupied { .. })
        ));
        state.remove_request(vnf, request.id());
        // Retire down to one instance, then refuse the last.
        while state.instances(vnf) > 1 {
            state.retire_instance(vnf).unwrap();
        }
        assert!(matches!(
            state.retire_instance(vnf),
            Err(ControllerError::LastInstance { .. })
        ));
        assert!(matches!(
            state.retire_instance(VnfId::new(999)),
            Err(ControllerError::UnknownVnf { .. })
        ));
    }

    #[test]
    fn balanced_latency_drops_when_an_instance_is_added() {
        let (scenario, mut state) = state();
        assert_eq!(state.balanced_latency(), 0.0);
        for request in scenario.requests() {
            for &vnf in request.chain() {
                let k = state.least_loaded_up(vnf).unwrap();
                state
                    .add_request(
                        vnf,
                        k,
                        request.id(),
                        request.arrival_rate(),
                        request.delivery(),
                    )
                    .unwrap();
            }
        }
        let before = state.balanced_latency();
        assert!(before > 0.0 && before.is_finite());
        // predicted_latency ignores an empty instance; the balanced
        // projection must credit it.
        let vnf = scenario.vnfs()[0].id();
        let predicted_before = state.predicted_latency();
        state.add_instance(vnf).unwrap();
        assert_eq!(state.predicted_latency(), predicted_before);
        assert!(
            state.balanced_latency() < before,
            "spreading load over one more instance must lower the balanced mean"
        );
        // A loaded VNF with no up instance projects unbounded latency.
        for k in 0..state.instances(vnf) {
            state.set_up(vnf, k, false);
        }
        assert_eq!(state.balanced_latency(), f64::INFINITY);
    }

    #[test]
    fn predicted_latency_is_zero_when_idle_and_positive_under_load() {
        let (scenario, mut state) = state();
        assert_eq!(state.predicted_latency(), 0.0);
        let request = &scenario.requests()[0];
        for &vnf in request.chain() {
            state
                .add_request(
                    vnf,
                    0,
                    request.id(),
                    request.arrival_rate(),
                    request.delivery(),
                )
                .unwrap();
        }
        assert!(state.predicted_latency() > 0.0);
    }
}
