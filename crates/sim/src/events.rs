//! The future-event list.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Event {
    /// A fresh packet of `request` enters the system.
    ExternalArrival {
        /// Index of the emitting request.
        request: usize,
    },
    /// The packet in service at `station` finishes.
    ServiceComplete {
        /// Index of the station.
        station: usize,
    },
}

/// Time-ordered future-event list with deterministic FIFO tie-breaking
/// (events scheduled earlier pop first at equal timestamps), so simulations
/// are reproducible bit-for-bit given a seeded RNG.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

#[derive(Debug)]
struct Entry {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time pops first,
        // and the lowest sequence number on ties.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then(other.seq.cmp(&self.seq))
    }
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute `time`.
    pub(crate) fn schedule(&mut self, time: f64, event: Event) {
        debug_assert!(time.is_finite(), "event time must be finite");
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the next event, earliest first.
    pub(crate) fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Number of pending events.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, Event::ExternalArrival { request: 0 });
        q.schedule(1.0, Event::ServiceComplete { station: 1 });
        q.schedule(2.0, Event::ExternalArrival { request: 2 });
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, Event::ExternalArrival { request: 10 });
        q.schedule(1.0, Event::ExternalArrival { request: 20 });
        let (_, first) = q.pop().unwrap();
        let (_, second) = q.pop().unwrap();
        assert_eq!(first, Event::ExternalArrival { request: 10 });
        assert_eq!(second, Event::ExternalArrival { request: 20 });
    }

    #[test]
    fn len_tracks_pending() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.schedule(1.0, Event::ServiceComplete { station: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }
}
