//! Exact percentiles over retained samples.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A set of retained samples supporting exact quantile queries.
///
/// Percentiles use the linear-interpolation definition (type 7 in the
/// Hyndman–Fan taxonomy, the default of R and NumPy): for `n` sorted samples
/// the `q`-quantile sits at rank `q · (n − 1)` with linear interpolation
/// between neighbors.
///
/// # Examples
///
/// ```
/// use nfv_metrics::SampleSet;
/// let mut s = SampleSet::new();
/// s.extend([4.0, 1.0, 3.0, 2.0]);
/// assert_eq!(s.percentile(0.5), 2.5);
/// assert_eq!(s.percentile(1.0), 4.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SampleSet {
    /// Samples in insertion order (the order matters for batch means).
    samples: Vec<f64>,
    /// Sorted copy, built lazily for quantile queries and invalidated on
    /// push.
    #[serde(skip)]
    sorted: Option<Vec<f64>>,
}

impl SampleSet {
    /// Creates an empty sample set.
    #[must_use]
    pub fn new() -> Self {
        Self {
            samples: Vec::new(),
            sorted: None,
        }
    }

    /// Creates an empty sample set with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            samples: Vec::with_capacity(capacity),
            sorted: None,
        }
    }

    /// Adds one sample; non-finite values are ignored.
    pub fn push(&mut self, x: f64) {
        if x.is_finite() {
            self.samples.push(x);
            self.sorted = None;
        }
    }

    /// Number of retained samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) -> &[f64] {
        if self.sorted.is_none() {
            let mut copy = self.samples.clone();
            copy.sort_unstable_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
            self.sorted = Some(copy);
        }
        self.sorted.as_deref().expect("just populated")
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) with linear interpolation.
    /// Returns 0 for an empty set so sweep tables degrade gracefully.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must lie in [0, 1]");
        if self.samples.is_empty() {
            return 0.0;
        }
        let sorted = self.ensure_sorted();
        let rank = q * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }

    /// The median.
    #[must_use]
    pub fn median(&mut self) -> f64 {
        self.percentile(0.5)
    }

    /// The 99th percentile — the paper's tail-latency statistic (§V.C).
    #[must_use]
    pub fn p99(&mut self) -> f64 {
        self.percentile(0.99)
    }

    /// Arithmetic mean of the retained samples; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// The retained samples in insertion order.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.samples
    }

    /// A ~95% confidence interval for the mean using the *batch means*
    /// method: the samples are split, in insertion order, into `batches`
    /// contiguous batches, and the CI is computed over the batch means.
    /// For autocorrelated streams (e.g. consecutive sojourn times from a
    /// queueing simulation) this is far less optimistic than the iid
    /// normal approximation.
    ///
    /// Returns `(mean, half_width)`, or `None` with fewer than two
    /// samples per batch or fewer than two batches.
    #[must_use]
    pub fn batch_means_ci(&self, batches: usize) -> Option<(f64, f64)> {
        if batches < 2 || self.samples.len() < 2 * batches {
            return None;
        }
        let batch_len = self.samples.len() / batches;
        let means: Vec<f64> = (0..batches)
            .map(|b| {
                let chunk = &self.samples[b * batch_len..(b + 1) * batch_len];
                chunk.iter().sum::<f64>() / chunk.len() as f64
            })
            .collect();
        let grand = means.iter().sum::<f64>() / batches as f64;
        let var = means.iter().map(|m| (m - grand).powi(2)).sum::<f64>() / (batches - 1) as f64;
        // Student-t 97.5% quantiles for small batch counts, converging to
        // the normal 1.96.
        let t = match batches {
            2 => 12.706,
            3 => 4.303,
            4 => 3.182,
            5 => 2.776,
            6 => 2.571,
            7 => 2.447,
            8 => 2.365,
            9 => 2.306,
            10 => 2.262,
            11..=15 => 2.145,
            16..=20 => 2.093,
            21..=30 => 2.045,
            _ => 1.96,
        };
        Some((grand, t * (var / batches as f64).sqrt()))
    }

    /// Appends another set's samples after this one, in their insertion
    /// order — the cross-worker aggregation primitive: folding per-worker
    /// sets in worker-index order yields the same stream a single-pass
    /// collection would have produced.
    pub fn merge(&mut self, other: &SampleSet) {
        if other.samples.is_empty() {
            return;
        }
        self.samples.extend_from_slice(&other.samples);
        self.sorted = None;
    }
}

impl PartialEq for SampleSet {
    fn eq(&self, other: &Self) -> bool {
        // The sorted cache is derived state; equality is over the samples.
        self.samples == other.samples
    }
}

impl Extend<f64> for SampleSet {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for SampleSet {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut set = Self::new();
        set.extend(iter);
        set
    }
}

impl fmt::Display for SampleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} samples", self.samples.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_set_reports_zero() {
        let mut s = SampleSet::new();
        assert!(s.is_empty());
        assert_eq!(s.percentile(0.99), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut s: SampleSet = [7.0].into_iter().collect();
        assert_eq!(s.percentile(0.0), 7.0);
        assert_eq!(s.median(), 7.0);
        assert_eq!(s.percentile(1.0), 7.0);
    }

    #[test]
    fn interpolation_matches_numpy_default() {
        // numpy.percentile([1,2,3,4], 50) == 2.5; 25 -> 1.75.
        let mut s: SampleSet = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.percentile(0.5), 2.5);
        assert!((s.percentile(0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn p99_of_1000_uniform_samples() {
        let mut s: SampleSet = (0..1000).map(f64::from).collect();
        // rank = 0.99 * 999 = 989.01.
        assert!((s.p99() - 989.01).abs() < 1e-9);
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let mut s: SampleSet = [1.0, f64::NAN, 2.0].into_iter().collect();
        assert_eq!(s.len(), 2);
        assert_eq!(s.median(), 1.5);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn percentile_rejects_out_of_range() {
        let mut s: SampleSet = [1.0].into_iter().collect();
        let _ = s.percentile(1.5);
    }

    #[test]
    fn batch_means_ci_basics() {
        let s: SampleSet = (0..100).map(f64::from).collect();
        let (mean, half) = s.batch_means_ci(10).unwrap();
        assert!((mean - 49.5).abs() < 1e-9);
        assert!(half > 0.0);
        // Too few samples or batches -> None.
        assert!(SampleSet::new().batch_means_ci(4).is_none());
        let tiny: SampleSet = [1.0, 2.0, 3.0].into_iter().collect();
        assert!(tiny.batch_means_ci(2).is_none());
        assert!(s.batch_means_ci(1).is_none());
    }

    #[test]
    fn percentile_queries_do_not_disturb_insertion_order() {
        // Regression: quantiles must not reorder the stream that batch
        // means (and as_slice) rely on.
        let mut s: SampleSet = [5.0, 1.0, 9.0, 3.0].into_iter().collect();
        let before = s.as_slice().to_vec();
        let _ = s.median();
        let _ = s.p99();
        assert_eq!(s.as_slice(), before.as_slice());
        let ci_before_sorting_would_differ = s.batch_means_ci(2).unwrap();
        let fresh: SampleSet = [5.0, 1.0, 9.0, 3.0].into_iter().collect();
        assert_eq!(
            fresh.batch_means_ci(2).unwrap(),
            ci_before_sorting_would_differ
        );
    }

    #[test]
    fn batch_means_ci_wider_for_correlated_streams() {
        // A slowly drifting (highly autocorrelated) stream: batch means
        // disagree a lot, so the CI must be wide relative to an iid
        // shuffle of the same values.
        let drifting: SampleSet = (0..400).map(|i| f64::from(i / 100)).collect();
        let (_, wide) = drifting.batch_means_ci(8).unwrap();
        let interleaved: SampleSet = (0..400).map(|i| f64::from(i % 4) / 4.0 * 3.0).collect();
        let (_, narrow) = interleaved.batch_means_ci(8).unwrap();
        assert!(
            wide > 10.0 * narrow,
            "correlated CI {wide} not wider than iid-ish CI {narrow}"
        );
    }

    proptest! {
        #[test]
        fn percentiles_are_monotone_and_bounded(
            xs in prop::collection::vec(-1e6..1e6f64, 1..100),
            q1 in 0.0..0.99f64,
        ) {
            let mut s: SampleSet = xs.iter().copied().collect();
            let q2 = q1 + 0.01;
            let (p1, p2) = (s.percentile(q1), s.percentile(q2));
            prop_assert!(p1 <= p2 + 1e-9);
            prop_assert!(p1 >= s.percentile(0.0) - 1e-9);
            prop_assert!(p2 <= s.percentile(1.0) + 1e-9);
        }

        #[test]
        fn push_order_does_not_matter(mut xs in prop::collection::vec(-1e3..1e3f64, 1..50)) {
            let mut fwd: SampleSet = xs.iter().copied().collect();
            xs.reverse();
            let mut rev: SampleSet = xs.iter().copied().collect();
            prop_assert_eq!(fwd.median(), rev.median());
            prop_assert_eq!(fwd.p99(), rev.p99());
        }
    }
}
