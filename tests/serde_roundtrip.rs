//! Serde contracts for the data-structure types (C-SERDE).
//!
//! The workspace deliberately carries no serialization *format* crate, so
//! these tests lock in the contract at the type level: every artifact an
//! experiment might persist must be `Serialize + DeserializeOwned` (the
//! `assert_serde` bounds fail to compile if an impl is dropped), and the
//! aggregate types must agree with their derived `Clone`/`PartialEq`
//! structure.

use nfv::model::{
    ArrivalRate, Capacity, ComputeNode, DeliveryProbability, Demand, NodeId, Request, RequestId,
    ServiceChain, ServiceRate, Vnf, VnfId, VnfKind,
};
use nfv::workload::{Scenario, ScenarioBuilder};
use serde::de::DeserializeOwned;
use serde::Serialize;

fn assert_serde<T: Serialize + DeserializeOwned>() {}

#[test]
fn model_types_implement_serde() {
    assert_serde::<NodeId>();
    assert_serde::<VnfId>();
    assert_serde::<RequestId>();
    assert_serde::<Capacity>();
    assert_serde::<Demand>();
    assert_serde::<ArrivalRate>();
    assert_serde::<ServiceRate>();
    assert_serde::<DeliveryProbability>();
    assert_serde::<VnfKind>();
    assert_serde::<Vnf>();
    assert_serde::<ComputeNode>();
    assert_serde::<ServiceChain>();
    assert_serde::<Request>();
    assert_serde::<Scenario>();
}

#[test]
fn pipeline_artifact_types_implement_serde() {
    assert_serde::<nfv::topology::Topology>();
    assert_serde::<nfv::topology::LinkDelay>();
    assert_serde::<nfv::queueing::Mm1Queue>();
    assert_serde::<nfv::queueing::InstanceLoad>();
    assert_serde::<nfv::queueing::JacksonNetwork>();
    assert_serde::<nfv::placement::Placement>();
    assert_serde::<nfv::placement::PlacementProblem>();
    assert_serde::<nfv::scheduling::Schedule>();
    assert_serde::<nfv::sim::SimConfig>();
    assert_serde::<nfv::sim::SimReport>();
    assert_serde::<nfv::metrics::Summary>();
    assert_serde::<nfv::metrics::Histogram>();
    assert_serde::<nfv::experiments::Sweep>();
}

#[test]
fn telemetry_artifact_types_implement_serde() {
    assert_serde::<nfv::telemetry::EventKind>();
    assert_serde::<nfv::telemetry::ReoptPhase>();
    assert_serde::<nfv::telemetry::TraceEvent>();
    assert_serde::<nfv::telemetry::Phase>();
    assert_serde::<nfv::telemetry::PhaseProfile>();
    assert_serde::<nfv::telemetry::TickSample>();
    assert_serde::<nfv::telemetry::TickSeries>();
}

#[test]
fn scenario_clone_preserves_everything() {
    let scenario = ScenarioBuilder::new()
        .vnfs(7)
        .requests(50)
        .seed(13)
        .build()
        .unwrap();
    let copy = scenario.clone();
    assert_eq!(scenario, copy);
    assert_eq!(scenario.total_demand(), copy.total_demand());
    for (a, b) in scenario.requests().iter().zip(copy.requests()) {
        assert_eq!(a.chain().as_slice(), b.chain().as_slice());
    }
}
