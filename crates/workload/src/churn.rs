//! Seeded churn traces: timed event streams over a base [`Scenario`].
//!
//! The paper schedules a *static* request set; its §IV.A explicitly defers
//! dynamic arrivals and departures to an online component. This module
//! generates the input for such a component: a deterministic, virtual-time
//! stream of [`ChurnEvent`]s — request arrivals and departures, instance
//! outages and recoveries, and periodic re-optimization ticks — produced
//! from an explicit seed so that every run over the same parameters yields
//! the identical trace. There is no wall clock anywhere: event times are
//! plain `f64` seconds of virtual time.
//!
//! The trace always begins with the base scenario's own requests arriving
//! at `t = 0` in id order, which lets a consumer warm up to exactly the
//! offline problem before churn starts.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use nfv_model::{NodeId, Request, RequestId, VnfId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Scenario, WorkloadError};

/// One event in a churn trace.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnEvent {
    /// A new request enters the system and asks to be admitted.
    Arrival(Request),
    /// An active request leaves the system.
    Departure(RequestId),
    /// A service instance of a VNF fails or is drained.
    InstanceDown {
        /// The VNF whose instance went down.
        vnf: VnfId,
        /// Index of the instance within the VNF (`0..M_f`).
        instance: usize,
    },
    /// A previously-down service instance returns.
    InstanceUp {
        /// The VNF whose instance recovered.
        vnf: VnfId,
        /// Index of the instance within the VNF (`0..M_f`).
        instance: usize,
    },
    /// A whole compute node fails, taking down every instance it hosts at
    /// once. The trace is placement-agnostic: it names only the node, and
    /// the consumer resolves which VNFs are hosted against its live
    /// placement when the event fires.
    NodeDown {
        /// The failed node.
        node: NodeId,
    },
    /// A previously-failed compute node returns to service.
    NodeUp {
        /// The recovered node.
        node: NodeId,
    },
    /// A periodic signal asking the control plane to re-optimize.
    ReoptimizeTick,
}

/// A [`ChurnEvent`] stamped with its virtual-time occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    time: f64,
    event: ChurnEvent,
}

impl TimedEvent {
    /// Creates a timed event (times must be finite and non-negative).
    #[must_use]
    pub fn new(time: f64, event: ChurnEvent) -> Self {
        debug_assert!(time.is_finite() && time >= 0.0);
        Self { time, event }
    }

    /// Virtual occurrence time in seconds.
    #[must_use]
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The event itself.
    #[must_use]
    pub fn event(&self) -> &ChurnEvent {
        &self.event
    }

    /// Decomposes into `(time, event)`, consuming the wrapper — the owned
    /// path replay engines use to move an arrival's request into the
    /// controller without cloning it.
    #[must_use]
    pub fn into_parts(self) -> (f64, ChurnEvent) {
        (self.time, self.event)
    }
}

/// A finite, time-sorted stream of churn events.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnTrace {
    events: Vec<TimedEvent>,
    horizon: f64,
}

impl ChurnTrace {
    /// The events in non-decreasing time order.
    #[must_use]
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The virtual-time horizon the trace was generated for.
    #[must_use]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Iterates over the events in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, TimedEvent> {
        self.events.iter()
    }
}

impl<'a> IntoIterator for &'a ChurnTrace {
    type Item = &'a TimedEvent;
    type IntoIter = std::slice::Iter<'a, TimedEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// Seeded generator of [`ChurnTrace`]s over a base [`Scenario`].
///
/// Churn arrivals form a Poisson process whose requests are cloned (with
/// fresh ids) from uniformly drawn base-scenario requests, so the churned
/// traffic matches the base workload's rate/chain/loss distribution.
/// Holding times, when enabled, are exponential and apply to base and
/// churned requests alike.
///
/// # Examples
///
/// ```
/// use nfv_workload::churn::ChurnTraceBuilder;
/// use nfv_workload::ScenarioBuilder;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scenario = ScenarioBuilder::new().vnfs(4).requests(20).seed(1).build()?;
/// let trace = ChurnTraceBuilder::new()
///     .horizon(100.0)
///     .arrival_rate(0.5)
///     .mean_holding(40.0)
///     .tick_period(25.0)
///     .seed(7)
///     .build(&scenario)?;
/// assert!(trace.len() >= 20); // at least the base arrivals
/// let again = ChurnTraceBuilder::new()
///     .horizon(100.0)
///     .arrival_rate(0.5)
///     .mean_holding(40.0)
///     .tick_period(25.0)
///     .seed(7)
///     .build(&scenario)?;
/// assert_eq!(trace, again); // same seed, same trace
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnTraceBuilder {
    seed: u64,
    horizon: f64,
    arrival_rate: f64,
    mean_holding: Option<f64>,
    tick_period: Option<f64>,
    outage_rate: f64,
    mean_outage: f64,
    node_fleet: usize,
    node_mtbf: Option<f64>,
    node_mttr: f64,
    rack_size: usize,
}

impl ChurnTraceBuilder {
    /// Starts a builder with no churn, no outages and no ticks over a
    /// 100-second horizon.
    #[must_use]
    pub fn new() -> Self {
        Self {
            seed: 0,
            horizon: 100.0,
            arrival_rate: 0.0,
            mean_holding: None,
            tick_period: None,
            outage_rate: 0.0,
            mean_outage: 10.0,
            node_fleet: 0,
            node_mtbf: None,
            node_mttr: 30.0,
            rack_size: 1,
        }
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the virtual-time horizon in seconds.
    #[must_use]
    pub fn horizon(mut self, seconds: f64) -> Self {
        self.horizon = seconds;
        self
    }

    /// Sets the Poisson rate of churn arrivals, in requests per virtual
    /// second. Zero (the default) disables churn arrivals.
    #[must_use]
    pub fn arrival_rate(mut self, per_second: f64) -> Self {
        self.arrival_rate = per_second;
        self
    }

    /// Enables departures: every request (base and churned) holds for an
    /// exponential time with this mean before departing.
    #[must_use]
    pub fn mean_holding(mut self, seconds: f64) -> Self {
        self.mean_holding = Some(seconds);
        self
    }

    /// Enables periodic [`ChurnEvent::ReoptimizeTick`]s with this period.
    #[must_use]
    pub fn tick_period(mut self, seconds: f64) -> Self {
        self.tick_period = Some(seconds);
        self
    }

    /// Sets the Poisson rate of instance outages (events per virtual
    /// second, spread over all instances). Zero (default) disables them.
    #[must_use]
    pub fn outage_rate(mut self, per_second: f64) -> Self {
        self.outage_rate = per_second;
        self
    }

    /// Sets the mean exponential duration of an outage in seconds.
    #[must_use]
    pub fn mean_outage(mut self, seconds: f64) -> Self {
        self.mean_outage = seconds;
        self
    }

    /// Sets the number of compute nodes addressable by node-outage events.
    /// Node outages need both a fleet size and an MTBF
    /// ([`node_mtbf`](Self::node_mtbf)) to be generated.
    #[must_use]
    pub fn node_fleet(mut self, nodes: usize) -> Self {
        self.node_fleet = nodes;
        self
    }

    /// Enables node outages: each fault group (a node, or a rack of
    /// [`rack_size`](Self::rack_size) nodes) alternates between service
    /// and outage, with exponential up-times of this mean.
    #[must_use]
    pub fn node_mtbf(mut self, seconds: f64) -> Self {
        self.node_mtbf = Some(seconds);
        self
    }

    /// Sets the mean exponential repair time of a node outage in seconds.
    #[must_use]
    pub fn node_mttr(mut self, seconds: f64) -> Self {
        self.node_mttr = seconds;
        self
    }

    /// Groups consecutive nodes into correlated fault domains of this size:
    /// all nodes of a "rack" fail and recover together (same timestamps,
    /// consecutive events). The default of 1 keeps nodes independent.
    #[must_use]
    pub fn rack_size(mut self, nodes: usize) -> Self {
        self.rack_size = nodes;
        self
    }

    /// Generates the trace.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if the horizon, rates,
    /// or durations are not finite/positive where required.
    pub fn build(&self, scenario: &Scenario) -> Result<ChurnTrace, WorkloadError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        // (time, generation sequence, event): the sequence breaks time ties
        // deterministically, keeping the sort total despite f64 times.
        let mut events: Vec<(f64, usize, ChurnEvent)> = Vec::new();
        let mut seq = 0usize;
        let mut push = |events: &mut Vec<(f64, usize, ChurnEvent)>, t: f64, e: ChurnEvent| {
            events.push((t, seq, e));
            seq += 1;
        };

        // Base population: the scenario's own requests arrive at t = 0 in
        // id order, then (optionally) hold and depart.
        for request in scenario.requests() {
            push(&mut events, 0.0, ChurnEvent::Arrival(request.clone()));
            if let Some(mean) = self.mean_holding {
                let holding = sample_exp(&mut rng, 1.0 / mean);
                if holding < self.horizon {
                    push(&mut events, holding, ChurnEvent::Departure(request.id()));
                }
            }
        }

        // Churn arrivals: Poisson process of fresh requests cloned from
        // uniformly drawn base requests.
        let mut next_id = scenario
            .requests()
            .iter()
            .map(|r| r.id().as_usize())
            .max()
            .map_or(0, |m| m + 1) as u32;
        if self.arrival_rate > 0.0 {
            let mut t = sample_exp(&mut rng, self.arrival_rate);
            while t < self.horizon {
                let template = &scenario.requests()[rng.gen_range(0..scenario.requests().len())];
                let request = Request::new(
                    RequestId::new(next_id),
                    template.chain().clone(),
                    template.arrival_rate(),
                    template.delivery(),
                );
                next_id += 1;
                push(&mut events, t, ChurnEvent::Arrival(request.clone()));
                if let Some(mean) = self.mean_holding {
                    let departs = t + sample_exp(&mut rng, 1.0 / mean);
                    if departs < self.horizon {
                        push(&mut events, departs, ChurnEvent::Departure(request.id()));
                    }
                }
                t += sample_exp(&mut rng, self.arrival_rate);
            }
        }

        // Instance outages: each picks a uniform (VNF, instance) pair and
        // stays down for an exponential duration. Overlapping outages of
        // the same instance are allowed; consumers treat Down/Up as
        // idempotent state flips.
        if self.outage_rate > 0.0 {
            let mut t = sample_exp(&mut rng, self.outage_rate);
            while t < self.horizon {
                let vnf = &scenario.vnfs()[rng.gen_range(0..scenario.vnfs().len())];
                let instance = rng.gen_range(0..vnf.instances() as usize);
                push(
                    &mut events,
                    t,
                    ChurnEvent::InstanceDown {
                        vnf: vnf.id(),
                        instance,
                    },
                );
                let back = t + sample_exp(&mut rng, 1.0 / self.mean_outage);
                if back < self.horizon {
                    push(
                        &mut events,
                        back,
                        ChurnEvent::InstanceUp {
                            vnf: vnf.id(),
                            instance,
                        },
                    );
                }
                t += sample_exp(&mut rng, self.outage_rate);
            }
        }

        // Node outages: an alternating-renewal process per fault group —
        // single nodes, or consecutive "racks" that fail together. Groups
        // are processed in index order and this stream is drawn *after*
        // the instance-outage stream, so traces without node outages are
        // bit-identical to those of earlier builders. The process is
        // placement-agnostic: whichever VNFs sit on the node when the
        // event fires are the ones affected.
        if let Some(mtbf) = self.node_mtbf {
            if self.node_fleet > 0 {
                let rack = self.rack_size.max(1);
                for first in (0..self.node_fleet).step_by(rack) {
                    let members: Vec<NodeId> = (first..(first + rack).min(self.node_fleet))
                        .map(|n| NodeId::new(n as u32))
                        .collect();
                    let mut t = sample_exp(&mut rng, 1.0 / mtbf);
                    while t < self.horizon {
                        for &node in &members {
                            push(&mut events, t, ChurnEvent::NodeDown { node });
                        }
                        let back = t + sample_exp(&mut rng, 1.0 / self.node_mttr);
                        if back < self.horizon {
                            for &node in &members {
                                push(&mut events, back, ChurnEvent::NodeUp { node });
                            }
                        }
                        t = back + sample_exp(&mut rng, 1.0 / mtbf);
                    }
                }
            }
        }

        // Re-optimization ticks on a fixed period.
        if let Some(period) = self.tick_period {
            let mut t = period;
            while t < self.horizon {
                push(&mut events, t, ChurnEvent::ReoptimizeTick);
                t += period;
            }
        }

        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("times are finite")
                .then(a.1.cmp(&b.1))
        });
        Ok(ChurnTrace {
            events: events
                .into_iter()
                .map(|(t, _, e)| TimedEvent::new(t, e))
                .collect(),
            horizon: self.horizon,
        })
    }

    /// Generates the trace as a lazy stream instead of a materialized
    /// `Vec`: the event sequence is *identical* to
    /// [`build`](Self::build)'s — bit for bit, including every RNG draw —
    /// but only the sparse streams (base population, instance and node
    /// outages, ticks) are held in memory up front. Churn arrivals are
    /// re-derived on demand from a second same-seed RNG and their
    /// departures wait in a small heap of in-flight requests, so a
    /// million-event trace streams at `O(base + sparse + in-flight)`
    /// memory rather than `O(events)`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] exactly as
    /// [`build`](Self::build) would.
    pub fn stream<'a>(&self, scenario: &'a Scenario) -> Result<ChurnStream<'a>, WorkloadError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut fixed: Vec<(f64, usize, ChurnEvent)> = Vec::new();
        let mut seq = 0usize;

        // Base population, materialized (O(scenario requests), tiny next
        // to the churn stream): same draws, same seqs as `build`.
        for request in scenario.requests() {
            fixed.push((0.0, seq, ChurnEvent::Arrival(request.clone())));
            seq += 1;
            if let Some(mean) = self.mean_holding {
                let holding = sample_exp(&mut rng, 1.0 / mean);
                if holding < self.horizon {
                    fixed.push((holding, seq, ChurnEvent::Departure(request.id())));
                    seq += 1;
                }
            }
        }

        // Snapshot the RNG at the head of the churn phase, then advance
        // the primary RNG through the phase drawing exactly what `build`
        // draws — counting sequence numbers without materializing events,
        // so the streams drawn *after* churn land on their exact seqs.
        // Note a horizon-clipped departure consumes a draw but no seq.
        let mut churn_rng = rng.clone();
        let churn_seq = seq;
        if self.arrival_rate > 0.0 {
            let mut t = sample_exp(&mut rng, self.arrival_rate);
            while t < self.horizon {
                let _ = rng.gen_range(0..scenario.requests().len());
                seq += 1;
                if let Some(mean) = self.mean_holding {
                    let departs = t + sample_exp(&mut rng, 1.0 / mean);
                    if departs < self.horizon {
                        seq += 1;
                    }
                }
                t += sample_exp(&mut rng, self.arrival_rate);
            }
        }
        // Re-draw the first inter-arrival gap on the lazy RNG so it sits
        // exactly where `build`'s loop would be after its own first draw.
        let pending_arrival = if self.arrival_rate > 0.0 {
            let t = sample_exp(&mut churn_rng, self.arrival_rate);
            (t < self.horizon).then_some(t)
        } else {
            None
        };

        // Instance outages, materialized (sparse).
        if self.outage_rate > 0.0 {
            let mut t = sample_exp(&mut rng, self.outage_rate);
            while t < self.horizon {
                let vnf = &scenario.vnfs()[rng.gen_range(0..scenario.vnfs().len())];
                let instance = rng.gen_range(0..vnf.instances() as usize);
                fixed.push((
                    t,
                    seq,
                    ChurnEvent::InstanceDown {
                        vnf: vnf.id(),
                        instance,
                    },
                ));
                seq += 1;
                let back = t + sample_exp(&mut rng, 1.0 / self.mean_outage);
                if back < self.horizon {
                    fixed.push((
                        back,
                        seq,
                        ChurnEvent::InstanceUp {
                            vnf: vnf.id(),
                            instance,
                        },
                    ));
                    seq += 1;
                }
                t += sample_exp(&mut rng, self.outage_rate);
            }
        }

        // Node outages per fault group, materialized (sparse).
        if let Some(mtbf) = self.node_mtbf {
            if self.node_fleet > 0 {
                let rack = self.rack_size.max(1);
                for first in (0..self.node_fleet).step_by(rack) {
                    let members: Vec<NodeId> = (first..(first + rack).min(self.node_fleet))
                        .map(|n| NodeId::new(n as u32))
                        .collect();
                    let mut t = sample_exp(&mut rng, 1.0 / mtbf);
                    while t < self.horizon {
                        for &node in &members {
                            fixed.push((t, seq, ChurnEvent::NodeDown { node }));
                            seq += 1;
                        }
                        let back = t + sample_exp(&mut rng, 1.0 / self.node_mttr);
                        if back < self.horizon {
                            for &node in &members {
                                fixed.push((back, seq, ChurnEvent::NodeUp { node }));
                                seq += 1;
                            }
                        }
                        t = back + sample_exp(&mut rng, 1.0 / mtbf);
                    }
                }
            }
        }

        // Ticks, materialized (sparse).
        if let Some(period) = self.tick_period {
            let mut t = period;
            while t < self.horizon {
                fixed.push((t, seq, ChurnEvent::ReoptimizeTick));
                seq += 1;
                t += period;
            }
        }

        fixed.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("times are finite")
                .then(a.1.cmp(&b.1))
        });

        let next_id = scenario
            .requests()
            .iter()
            .map(|r| r.id().as_usize())
            .max()
            .map_or(0, |m| m + 1) as u32;

        Ok(ChurnStream {
            scenario,
            horizon: self.horizon,
            arrival_rate: self.arrival_rate,
            mean_holding: self.mean_holding,
            fixed,
            fixed_pos: 0,
            rng: churn_rng,
            churn_seq,
            pending_arrival,
            next_id,
            departures: BinaryHeap::new(),
        })
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        if !(self.horizon.is_finite() && self.horizon > 0.0) {
            return Err(WorkloadError::InvalidParameter {
                reason: "churn horizon must be finite and positive",
            });
        }
        if !(self.arrival_rate.is_finite() && self.arrival_rate >= 0.0) {
            return Err(WorkloadError::InvalidParameter {
                reason: "churn arrival rate must be finite and non-negative",
            });
        }
        if let Some(mean) = self.mean_holding {
            if !(mean.is_finite() && mean > 0.0) {
                return Err(WorkloadError::InvalidParameter {
                    reason: "mean holding time must be finite and positive",
                });
            }
        }
        if let Some(period) = self.tick_period {
            if !(period.is_finite() && period > 0.0) {
                return Err(WorkloadError::InvalidParameter {
                    reason: "tick period must be finite and positive",
                });
            }
        }
        if !(self.outage_rate.is_finite() && self.outage_rate >= 0.0) {
            return Err(WorkloadError::InvalidParameter {
                reason: "outage rate must be finite and non-negative",
            });
        }
        if !(self.mean_outage.is_finite() && self.mean_outage > 0.0) {
            return Err(WorkloadError::InvalidParameter {
                reason: "mean outage duration must be finite and positive",
            });
        }
        if let Some(mtbf) = self.node_mtbf {
            if !(mtbf.is_finite() && mtbf > 0.0) {
                return Err(WorkloadError::InvalidParameter {
                    reason: "node MTBF must be finite and positive",
                });
            }
        }
        if !(self.node_mttr.is_finite() && self.node_mttr > 0.0) {
            return Err(WorkloadError::InvalidParameter {
                reason: "node MTTR must be finite and positive",
            });
        }
        if self.rack_size == 0 {
            return Err(WorkloadError::InvalidParameter {
                reason: "rack size must be at least 1",
            });
        }
        Ok(())
    }
}

impl Default for ChurnTraceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// A churn departure whose arrival has been emitted but whose departure
/// time lies in the future: the stream's in-flight set. Min-ordered by
/// `(time, seq)` via [`Reverse`] in the heap.
#[derive(Debug, Clone)]
struct PendingDeparture {
    time: f64,
    seq: usize,
    id: RequestId,
}

impl PartialEq for PendingDeparture {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for PendingDeparture {}

impl PartialOrd for PendingDeparture {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PendingDeparture {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Departure times are strictly positive and finite, so total_cmp
        // agrees with the numeric order build() sorts by; unique seqs
        // break ties exactly like the trace sort does.
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// A lazily generated churn trace: yields exactly the [`TimedEvent`]
/// sequence [`ChurnTraceBuilder::build`] would materialize, in the same
/// order, without ever holding the churn arrivals in memory.
///
/// Produced by [`ChurnTraceBuilder::stream`]. Internally a three-way
/// `(time, seq)` merge between the pre-sorted sparse streams, the next
/// not-yet-emitted Poisson arrival, and a min-heap of in-flight
/// departures.
#[derive(Debug, Clone)]
pub struct ChurnStream<'a> {
    scenario: &'a Scenario,
    horizon: f64,
    arrival_rate: f64,
    mean_holding: Option<f64>,
    /// Base population, outages, and ticks — pre-sorted by `(time, seq)`.
    fixed: Vec<(f64, usize, ChurnEvent)>,
    /// Cursor into `fixed`: the next not-yet-emitted sparse event.
    fixed_pos: usize,
    /// Second same-seed RNG, positioned mid-churn-phase: its next draw is
    /// the template index of `pending_arrival`.
    rng: StdRng,
    /// Sequence number the next churn-phase push would receive.
    churn_seq: usize,
    /// Time of the next churn arrival, already known to precede the
    /// horizon; `None` once the Poisson process has run past it.
    pending_arrival: Option<f64>,
    next_id: u32,
    departures: BinaryHeap<Reverse<PendingDeparture>>,
}

/// An owned snapshot of a [`ChurnStream`]'s cursor: the RNG state, the
/// sparse-event position, the next pending Poisson arrival, and the
/// in-flight departure heap. [`ChurnStream::restore`] rewinds a stream
/// built from the *same* builder and scenario to this exact point, after
/// which it yields a bit-identical event suffix — the crash-recovery
/// primitive that lets a replayed tenant resume its trace mid-run without
/// double-pumping events.
#[derive(Debug, Clone)]
pub struct ChurnCursor {
    rng: StdRng,
    fixed_pos: usize,
    churn_seq: usize,
    pending_arrival: Option<f64>,
    next_id: u32,
    departures: BinaryHeap<Reverse<PendingDeparture>>,
}

impl ChurnStream<'_> {
    /// The virtual-time horizon the stream was generated for.
    #[must_use]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Captures the stream's full cursor state. Replaying the remaining
    /// events after a [`restore`](Self::restore) from this cursor yields
    /// the identical suffix bit for bit.
    #[must_use]
    pub fn checkpoint(&self) -> ChurnCursor {
        ChurnCursor {
            rng: self.rng.clone(),
            fixed_pos: self.fixed_pos,
            churn_seq: self.churn_seq,
            pending_arrival: self.pending_arrival,
            next_id: self.next_id,
            departures: self.departures.clone(),
        }
    }

    /// Rewinds (or fast-forwards) the stream to a cursor previously taken
    /// from a stream built by the same builder over the same scenario.
    /// The sparse event table is immutable and shared, so only the cursor
    /// state moves; a cursor from a differently-configured stream yields
    /// a well-formed but meaningless suffix.
    pub fn restore(&mut self, cursor: &ChurnCursor) {
        self.rng = cursor.rng.clone();
        self.fixed_pos = cursor.fixed_pos.min(self.fixed.len());
        self.churn_seq = cursor.churn_seq;
        self.pending_arrival = cursor.pending_arrival;
        self.next_id = cursor.next_id;
        self.departures = cursor.departures.clone();
    }

    /// Emits the pending churn arrival, drawing its template, departure,
    /// and successor exactly as `build`'s churn loop body does.
    fn emit_churn_arrival(&mut self) -> TimedEvent {
        let t = self.pending_arrival.take().expect("a pending arrival");
        let template =
            &self.scenario.requests()[self.rng.gen_range(0..self.scenario.requests().len())];
        let request = Request::new(
            RequestId::new(self.next_id),
            template.chain().clone(),
            template.arrival_rate(),
            template.delivery(),
        );
        self.next_id += 1;
        self.churn_seq += 1; // this arrival's seq
        if let Some(mean) = self.mean_holding {
            let departs = t + sample_exp(&mut self.rng, 1.0 / mean);
            if departs < self.horizon {
                self.departures.push(Reverse(PendingDeparture {
                    time: departs,
                    seq: self.churn_seq,
                    id: request.id(),
                }));
                self.churn_seq += 1;
            }
        }
        let next = t + sample_exp(&mut self.rng, self.arrival_rate);
        if next < self.horizon {
            self.pending_arrival = Some(next);
        }
        TimedEvent::new(t, ChurnEvent::Arrival(request))
    }
}

/// Which of the three merge sources currently holds the minimal event.
#[derive(Clone, Copy)]
enum StreamSource {
    Fixed,
    Arrival,
    Departure,
}

impl Iterator for ChurnStream<'_> {
    type Item = TimedEvent;

    fn next(&mut self) -> Option<TimedEvent> {
        // Every event not yet generated (future churn arrivals and their
        // departures) has a time >= the pending arrival's and a larger
        // seq, so the minimum over these three candidates is the global
        // next event. The comparator mirrors the trace sort: numeric
        // time order, seq as tie-break.
        let lt = |a: (f64, usize), b: (f64, usize)| {
            a.0.partial_cmp(&b.0)
                .expect("times are finite")
                .then(a.1.cmp(&b.1))
                .is_lt()
        };
        let mut best: Option<((f64, usize), StreamSource)> = self
            .fixed
            .get(self.fixed_pos)
            .map(|&(t, s, _)| ((t, s), StreamSource::Fixed));
        if let Some(t) = self.pending_arrival {
            let key = (t, self.churn_seq);
            if best.is_none_or(|(k, _)| lt(key, k)) {
                best = Some((key, StreamSource::Arrival));
            }
        }
        if let Some(Reverse(d)) = self.departures.peek() {
            let key = (d.time, d.seq);
            if best.is_none_or(|(k, _)| lt(key, k)) {
                best = Some((key, StreamSource::Departure));
            }
        }
        match best?.1 {
            StreamSource::Fixed => {
                let (t, _, ref e) = self.fixed[self.fixed_pos];
                self.fixed_pos += 1;
                Some(TimedEvent::new(t, e.clone()))
            }
            StreamSource::Arrival => Some(self.emit_churn_arrival()),
            StreamSource::Departure => {
                let Reverse(d) = self.departures.pop().expect("peeked");
                Some(TimedEvent::new(d.time, ChurnEvent::Departure(d.id)))
            }
        }
    }
}

/// Inverse-CDF exponential sample with the given rate.
fn sample_exp(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioBuilder;

    fn scenario() -> Scenario {
        ScenarioBuilder::new()
            .vnfs(4)
            .requests(25)
            .seed(3)
            .build()
            .unwrap()
    }

    fn full_builder() -> ChurnTraceBuilder {
        ChurnTraceBuilder::new()
            .horizon(200.0)
            .arrival_rate(0.8)
            .mean_holding(50.0)
            .tick_period(40.0)
            .outage_rate(0.05)
            .mean_outage(15.0)
            .seed(11)
    }

    #[test]
    fn base_requests_arrive_first_in_id_order() {
        let s = scenario();
        let trace = ChurnTraceBuilder::new().build(&s).unwrap();
        assert_eq!(trace.len(), s.requests().len());
        for (event, request) in trace.iter().zip(s.requests()) {
            assert_eq!(event.time(), 0.0);
            match event.event() {
                ChurnEvent::Arrival(r) => assert_eq!(r.id(), request.id()),
                other => panic!("expected arrival, got {other:?}"),
            }
        }
    }

    #[test]
    fn same_seed_gives_identical_traces() {
        let s = scenario();
        let a = full_builder().build(&s).unwrap();
        let b = full_builder().build(&s).unwrap();
        assert_eq!(a, b);
        let c = full_builder().seed(12).build(&s).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn events_are_time_sorted_within_horizon() {
        let trace = full_builder().build(&scenario()).unwrap();
        let mut last = 0.0;
        for event in &trace {
            assert!(event.time() >= last);
            assert!(event.time() < trace.horizon());
            last = event.time();
        }
    }

    #[test]
    fn churn_ids_never_collide_with_base_ids() {
        let s = scenario();
        let trace = full_builder().build(&s).unwrap();
        let base_max = s
            .requests()
            .iter()
            .map(|r| r.id().as_usize())
            .max()
            .unwrap();
        let mut churn_arrivals = 0;
        for event in &trace {
            if let ChurnEvent::Arrival(r) = event.event() {
                if event.time() > 0.0 {
                    assert!(r.id().as_usize() > base_max);
                    churn_arrivals += 1;
                }
            }
        }
        assert!(
            churn_arrivals > 0,
            "expected churn arrivals at rate 0.8 over 200s"
        );
    }

    #[test]
    fn departures_reference_known_arrivals() {
        let trace = full_builder().build(&scenario()).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for event in &trace {
            match event.event() {
                ChurnEvent::Arrival(r) => {
                    assert!(seen.insert(r.id()), "duplicate arrival id {:?}", r.id());
                }
                ChurnEvent::Departure(id) => {
                    assert!(seen.contains(id), "departure of unseen {id:?}");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn ticks_land_on_the_period_grid() {
        let trace = ChurnTraceBuilder::new()
            .horizon(100.0)
            .tick_period(30.0)
            .build(&scenario())
            .unwrap();
        let ticks: Vec<f64> = trace
            .iter()
            .filter(|e| matches!(e.event(), ChurnEvent::ReoptimizeTick))
            .map(TimedEvent::time)
            .collect();
        assert_eq!(ticks, vec![30.0, 60.0, 90.0]);
    }

    #[test]
    fn outages_address_real_instances() {
        let s = scenario();
        let trace = full_builder().outage_rate(0.5).build(&s).unwrap();
        for event in &trace {
            if let ChurnEvent::InstanceDown { vnf, instance }
            | ChurnEvent::InstanceUp { vnf, instance } = event.event()
            {
                let v = s.vnf(*vnf).expect("outage names a scenario VNF");
                assert!(*instance < v.instances() as usize);
            }
        }
    }

    #[test]
    fn node_outages_are_bounded_and_alternate() {
        let s = scenario();
        let trace = ChurnTraceBuilder::new()
            .horizon(400.0)
            .node_fleet(6)
            .node_mtbf(60.0)
            .node_mttr(20.0)
            .seed(17)
            .build(&s)
            .unwrap();
        let mut down = [false; 6];
        let mut saw_node_events = false;
        for event in &trace {
            match event.event() {
                ChurnEvent::NodeDown { node } => {
                    saw_node_events = true;
                    let i = node.as_usize();
                    assert!(i < 6, "node index within the fleet");
                    assert!(!down[i], "a node fails only while in service");
                    down[i] = true;
                }
                ChurnEvent::NodeUp { node } => {
                    let i = node.as_usize();
                    assert!(down[i], "a node recovers only while down");
                    down[i] = false;
                }
                _ => {}
            }
        }
        assert!(saw_node_events, "MTBF 60s over 400s yields outages");
    }

    #[test]
    fn rack_members_fail_and_recover_together() {
        let s = scenario();
        let trace = ChurnTraceBuilder::new()
            .horizon(400.0)
            .node_fleet(6)
            .node_mtbf(80.0)
            .node_mttr(25.0)
            .rack_size(3)
            .seed(21)
            .build(&s)
            .unwrap();
        // Collect per-node outage timestamps; rack peers (0-2, 3-5) must
        // share exactly the same down and up times.
        let mut downs: Vec<Vec<f64>> = vec![Vec::new(); 6];
        let mut ups: Vec<Vec<f64>> = vec![Vec::new(); 6];
        for event in &trace {
            match event.event() {
                ChurnEvent::NodeDown { node } => downs[node.as_usize()].push(event.time()),
                ChurnEvent::NodeUp { node } => ups[node.as_usize()].push(event.time()),
                _ => {}
            }
        }
        assert!(downs.iter().any(|d| !d.is_empty()), "some rack failed");
        for rack in [[0usize, 1, 2], [3, 4, 5]] {
            for &peer in &rack[1..] {
                assert_eq!(downs[rack[0]], downs[peer], "correlated failures");
                assert_eq!(ups[rack[0]], ups[peer], "correlated repairs");
            }
        }
    }

    #[test]
    fn node_fleet_without_mtbf_changes_nothing() {
        let s = scenario();
        let plain = full_builder().build(&s).unwrap();
        let with_fleet = full_builder().node_fleet(8).build(&s).unwrap();
        assert_eq!(plain, with_fleet, "node outages need an MTBF to enable");
    }

    #[test]
    fn stream_yields_exactly_the_built_trace() {
        let s = scenario();
        for builder in [
            ChurnTraceBuilder::new(),                           // base arrivals only
            ChurnTraceBuilder::new().arrival_rate(1.5).seed(5), // churn, no departures
            full_builder(),                                     // churn + holding + outages + ticks
            full_builder()
                .node_fleet(6)
                .node_mtbf(45.0)
                .node_mttr(12.0)
                .rack_size(2), // plus correlated node outages
        ] {
            let trace = builder.build(&s).unwrap();
            let streamed: Vec<TimedEvent> = builder.stream(&s).unwrap().collect();
            assert_eq!(streamed.as_slice(), trace.events());
            assert_eq!(builder.stream(&s).unwrap().horizon(), trace.horizon());
        }
    }

    #[test]
    fn cursor_checkpoint_restore_replays_the_identical_suffix() {
        let s = scenario();
        let builder = full_builder()
            .node_fleet(6)
            .node_mtbf(45.0)
            .node_mttr(12.0)
            .rack_size(2);
        let total = builder.build(&s).unwrap().len();
        for taken in [0, 1, total / 3, total / 2, total - 1] {
            let mut stream = builder.stream(&s).unwrap();
            for _ in 0..taken {
                stream.next().unwrap();
            }
            let cursor = stream.checkpoint();
            let suffix: Vec<TimedEvent> = stream.collect();

            // A fresh stream fast-forwarded through the cursor resumes
            // mid-trace with the bit-identical suffix...
            let mut replayed = builder.stream(&s).unwrap();
            replayed.restore(&cursor);
            let replayed: Vec<TimedEvent> = replayed.collect();
            assert_eq!(replayed, suffix, "restore after {taken} events");

            // ...and a drained stream rewinds to the same point.
            let mut rewound = builder.stream(&s).unwrap();
            rewound.by_ref().for_each(drop);
            rewound.restore(&cursor);
            let rewound: Vec<TimedEvent> = rewound.collect();
            assert_eq!(rewound, suffix, "rewind after {taken} events");
        }
    }

    #[test]
    fn stream_validates_like_build() {
        let s = scenario();
        assert!(ChurnTraceBuilder::new().horizon(0.0).stream(&s).is_err());
        assert!(ChurnTraceBuilder::new()
            .arrival_rate(-1.0)
            .stream(&s)
            .is_err());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let s = scenario();
        assert!(ChurnTraceBuilder::new().horizon(0.0).build(&s).is_err());
        assert!(ChurnTraceBuilder::new()
            .horizon(f64::NAN)
            .build(&s)
            .is_err());
        assert!(ChurnTraceBuilder::new()
            .arrival_rate(-1.0)
            .build(&s)
            .is_err());
        assert!(ChurnTraceBuilder::new()
            .mean_holding(0.0)
            .build(&s)
            .is_err());
        assert!(ChurnTraceBuilder::new()
            .tick_period(-2.0)
            .build(&s)
            .is_err());
        assert!(ChurnTraceBuilder::new()
            .outage_rate(f64::INFINITY)
            .build(&s)
            .is_err());
        assert!(ChurnTraceBuilder::new().mean_outage(0.0).build(&s).is_err());
        assert!(ChurnTraceBuilder::new()
            .node_fleet(4)
            .node_mtbf(0.0)
            .build(&s)
            .is_err());
        assert!(ChurnTraceBuilder::new().node_mttr(-1.0).build(&s).is_err());
        assert!(ChurnTraceBuilder::new().rack_size(0).build(&s).is_err());
    }
}
