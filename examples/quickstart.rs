//! Quickstart: the whole pipeline in one page.
//!
//! Generates a small workload, builds a leaf–spine fabric, runs the
//! paper's two-phase optimizer (BFDSU placement + RCKK scheduling) and
//! prints where everything landed and what it costs in latency.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nfv::topology::{builders, LinkDelay};
use nfv::workload::ScenarioBuilder;
use nfv::JointOptimizer;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A workload: 8 VNFs, 60 requests with chains of up to 6 VNFs,
    //    Poisson arrivals in [1, 100] pps and up to 2% packet loss.
    let scenario = ScenarioBuilder::new()
        .vnfs(8)
        .requests(60)
        .seed(7)
        .build()?;
    println!("{scenario}");

    // 2. A fabric: 2x2 leaf-spine with 4 hosts per leaf, heterogeneous
    //    capacities sized so consolidation needs a few hosts, 50us per hop.
    let per_host = scenario.total_demand().value() / 3.0;
    let fabric = builders::leaf_spine()
        .leaves(2)
        .spines(2)
        .hosts_per_leaf(4)
        .capacity_range(0.6 * per_host, 1.4 * per_host, 11)
        .link_delay(LinkDelay::from_micros(50.0))
        .build()?;
    println!("{fabric}");

    // 3. Optimize: phase one places VNFs (BFDSU), phase two schedules
    //    requests onto service instances (RCKK).
    let mut rng = StdRng::seed_from_u64(1);
    let solution = JointOptimizer::new().optimize(&scenario, &fabric, &mut rng)?;

    let placement = solution.placement();
    println!(
        "\nplacement: {} nodes in service, average utilization {}",
        placement.nodes_in_service(),
        placement.average_utilization()
    );
    for node in placement.used_nodes() {
        let vnfs: Vec<String> = placement.vnfs_on(node).map(|v| v.to_string()).collect();
        println!(
            "  {node}: {} ({})",
            vnfs.join(", "),
            placement.utilization_of(node)
        );
    }

    // 4. Evaluate the joint objective of Eq. (16).
    let objective = solution.objective()?;
    println!("\n{objective}");
    let worst = objective
        .response_latencies()
        .iter()
        .zip(objective.link_latencies())
        .map(|(r, l)| r + l)
        .fold(0.0f64, f64::max);
    println!("worst request total latency: {:.6}s", worst);

    // 5. Inspect one request end to end.
    let request = &scenario.requests()[0];
    println!("\nrequest {} traverses:", request.id());
    for vnf in request.chain() {
        let instance = solution
            .instance_serving(request.id(), *vnf)
            .expect("scheduled on every chain VNF");
        let node = solution.node_serving(request.id(), *vnf).expect("placed");
        println!("  {vnf} instance {instance} on {node}");
    }
    Ok(())
}
