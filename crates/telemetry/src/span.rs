//! Wall-clock timing spans around the controller's hot phases.
//!
//! This is the **only** module in the workspace's library code that may
//! read the wall clock (`tests/determinism_audit.rs` allowlists exactly
//! this file). The measurements are strictly observational: span
//! durations feed [`PhaseProfile`] summaries and never flow back into
//! any decision, so results with telemetry on and off stay bit-identical
//! (pinned by the thread-invariance tests).

use std::fmt::Write as _;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use nfv_metrics::Summary;

/// The instrumented hot phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Incremental BFDSU delta-placement (tick re-placement fit loop).
    PlaceDelta,
    /// RCKK re-planning over the live request set.
    RckkPlan,
    /// Try-apply-measure-undo hysteresis probe (plan preview + greedy
    /// move selection).
    HysteresisProbe,
    /// Draining due entries from the retry/backoff queue.
    RetryDrain,
    /// Out-of-tick emergency re-placement after a node failure.
    EmergencyReplace,
    /// One generation of the background refiner's placement search.
    SearchGeneration,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 6] = [
        Phase::PlaceDelta,
        Phase::RckkPlan,
        Phase::HysteresisProbe,
        Phase::RetryDrain,
        Phase::EmergencyReplace,
        Phase::SearchGeneration,
    ];

    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::PlaceDelta => "place-delta",
            Phase::RckkPlan => "rckk-plan",
            Phase::HysteresisProbe => "hysteresis-probe",
            Phase::RetryDrain => "retry-drain",
            Phase::EmergencyReplace => "emergency-replace",
            Phase::SearchGeneration => "search-generation",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::PlaceDelta => 0,
            Phase::RckkPlan => 1,
            Phase::HysteresisProbe => 2,
            Phase::RetryDrain => 3,
            Phase::EmergencyReplace => 4,
            Phase::SearchGeneration => 5,
        }
    }
}

/// An open span. Disabled telemetry hands out empty tokens, so the
/// disabled path never touches the clock.
#[derive(Debug)]
#[must_use = "a span token should be closed with Telemetry::end"]
pub struct SpanToken(Option<Instant>);

impl SpanToken {
    /// Opens a span (reads the clock only when `enabled`).
    pub(crate) fn start(enabled: bool) -> Self {
        Self(enabled.then(Instant::now))
    }

    /// Seconds since the span opened; `None` for a disabled token.
    pub(crate) fn elapsed_seconds(&self) -> Option<f64> {
        self.0.map(|start| start.elapsed().as_secs_f64())
    }
}

/// A plain wall-clock stopwatch for observers outside the controller's
/// span machinery (the fleet loop times its epoch phases with this).
/// It lives here because this module is the workspace's only licensed
/// clock reader; like [`SpanToken`], its measurements are strictly
/// observational and must never flow back into a decision.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Seconds elapsed since [`start`](Self::start).
    #[must_use]
    pub fn elapsed_seconds(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Per-phase duration summaries (seconds), aggregated with the
/// `nfv-metrics` accumulators so cross-worker merging reuses the tested
/// [`Summary::merge`] path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseProfile {
    durations: [Summary; Phase::ALL.len()],
}

impl Default for PhaseProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseProfile {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self {
            durations: std::array::from_fn(|_| Summary::new()),
        }
    }

    /// Records one span duration.
    pub fn record(&mut self, phase: Phase, seconds: f64) {
        self.durations[phase.index()].push(seconds);
    }

    /// The duration summary of one phase.
    #[must_use]
    pub fn summary(&self, phase: Phase) -> &Summary {
        &self.durations[phase.index()]
    }

    /// Spans recorded across all phases.
    #[must_use]
    pub fn total_spans(&self) -> u64 {
        self.durations.iter().map(Summary::count).sum()
    }

    /// Merges another profile (cross-worker aggregation).
    pub fn merge(&mut self, other: &PhaseProfile) {
        for (mine, theirs) in self.durations.iter_mut().zip(&other.durations) {
            mine.merge(theirs);
        }
    }

    /// A fixed-width table of per-phase timings in microseconds. The
    /// numbers are wall-clock and vary run to run; only the row set is
    /// stable.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<18} {:>7} {:>12} {:>12} {:>12} {:>12}",
            "phase", "spans", "total us", "mean us", "min us", "max us"
        );
        for phase in Phase::ALL {
            let s = self.summary(phase);
            let us = 1e6;
            let total: f64 = s.samples().as_slice().iter().sum();
            let _ = writeln!(
                out,
                "{:<18} {:>7} {:>12.1} {:>12.2} {:>12.2} {:>12.2}",
                phase.name(),
                s.count(),
                total * us,
                s.mean() * us,
                s.min().unwrap_or(0.0) * us,
                s.max().unwrap_or(0.0) * us,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_measure_only_when_enabled() {
        assert!(SpanToken::start(false).elapsed_seconds().is_none());
        let token = SpanToken::start(true);
        let elapsed = token.elapsed_seconds().unwrap();
        assert!(elapsed >= 0.0);
    }

    #[test]
    fn profile_records_and_merges_per_phase() {
        let mut a = PhaseProfile::new();
        a.record(Phase::RckkPlan, 0.001);
        a.record(Phase::RckkPlan, 0.003);
        let mut b = PhaseProfile::new();
        b.record(Phase::RckkPlan, 0.002);
        b.record(Phase::RetryDrain, 0.004);
        a.merge(&b);
        assert_eq!(a.summary(Phase::RckkPlan).count(), 3);
        assert_eq!(a.summary(Phase::RetryDrain).count(), 1);
        assert_eq!(a.summary(Phase::PlaceDelta).count(), 0);
        assert_eq!(a.total_spans(), 4);
        assert!((a.summary(Phase::RckkPlan).mean() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn render_lists_every_phase_once() {
        let mut p = PhaseProfile::new();
        p.record(Phase::PlaceDelta, 0.5);
        let table = p.render();
        for phase in Phase::ALL {
            assert_eq!(table.matches(phase.name()).count(), 1, "{table}");
        }
        assert_eq!(table.lines().count(), Phase::ALL.len() + 1);
    }
}
