//! Typed journal records.

use serde::{Deserialize, Serialize};

use nfv_model::{NodeId, RequestId, VnfId};

use crate::json::{self, JsonError, JsonObject};

/// Which controller tick phase a re-optimization record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReoptPhase {
    /// The re-placement phase (instance adds/retirements/relocations via
    /// bounded BFDSU).
    Replacement,
    /// The scheduling phase (request migrations via RCKK).
    Scheduling,
    /// The background refiner phase (searcher-found relocations applied
    /// during quiet ticks).
    Refiner,
}

impl ReoptPhase {
    /// Stable journal name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Replacement => "replacement",
            Self::Scheduling => "scheduling",
            Self::Refiner => "refiner",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "replacement" => Some(Self::Replacement),
            "scheduling" => Some(Self::Scheduling),
            "refiner" => Some(Self::Refiner),
            _ => None,
        }
    }
}

/// What happened, with the ids and magnitudes needed to reconstruct the
/// episode afterwards. Cause fields are short stable slugs (e.g.
/// `"node-down"`, `"would-overload"`, `"hysteresis"`), not prose.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EventKind {
    /// An arrival (or base-population request) was admitted.
    Admit {
        /// The admitted request.
        request: RequestId,
        /// Chain hops placed.
        hops: u64,
    },
    /// An arrival was refused by admission control.
    Reject {
        /// The refused request.
        request: RequestId,
        /// Why (the `RejectReason` slug).
        cause: String,
    },
    /// An active request was dropped (eviction, failed failover, or a
    /// node outage).
    Shed {
        /// The dropped request.
        request: RequestId,
        /// Why it was dropped.
        cause: String,
    },
    /// A refused/shed request was queued for a backoff re-offer.
    RetryScheduled {
        /// The queued request.
        request: RequestId,
        /// 0-based attempt number of the scheduled re-offer.
        attempt: u64,
        /// Virtual due time of the re-offer.
        due: f64,
    },
    /// A queued re-offer succeeded.
    RetryAdmitted {
        /// The re-admitted request.
        request: RequestId,
        /// 0-based attempt number that succeeded.
        attempt: u64,
    },
    /// A request ran out of retry budget (or found the queue full) and is
    /// lost for good.
    RetryAbandoned {
        /// The abandoned request.
        request: RequestId,
        /// Why (the `RetryRefusal` slug).
        cause: String,
    },
    /// One instance went down and its requests were failed over or shed.
    InstanceDown {
        /// The VNF owning the instance.
        vnf: VnfId,
        /// Zero-based instance slot.
        slot: u64,
        /// Requests moved to surviving siblings.
        migrated: u64,
        /// Requests shed because nothing could hold them.
        shed: u64,
    },
    /// One instance came back up.
    InstanceUp {
        /// The VNF owning the instance.
        vnf: VnfId,
        /// Zero-based instance slot.
        slot: u64,
    },
    /// A whole node went dark.
    NodeDown {
        /// The failed node.
        node: NodeId,
        /// VNFs that lost all instances at once.
        vnfs_lost: u64,
        /// Requests shed (each once, however many lost hops).
        shed: u64,
    },
    /// A dark node returned to service.
    NodeUp {
        /// The recovered node.
        node: NodeId,
        /// VNFs still assigned to it that became dispatchable again.
        vnfs_restored: u64,
    },
    /// An out-of-tick emergency re-placement ran after a node failure.
    EmergencyReplace {
        /// The node whose failure triggered it.
        node: NodeId,
        /// Replacement instances added.
        instances_added: u64,
        /// VNFs relocated onto surviving nodes.
        relocations: u64,
    },
    /// A tick phase committed its (bounded) plan.
    ReoptCommit {
        /// Which tick phase.
        phase: ReoptPhase,
        /// Requests moved.
        migrations: u64,
        /// Instances added.
        instances_added: u64,
        /// Instances retired.
        instances_retired: u64,
        /// Instances relocated.
        relocations: u64,
        /// Relative latency gain the preview promised.
        predicted_gain: f64,
        /// Relative latency gain measured right after the commit.
        realized_gain: f64,
    },
    /// A tick phase computed a plan and threw it away.
    ReoptRejected {
        /// Which tick phase.
        phase: ReoptPhase,
        /// Why (`"hysteresis"`, `"empty-plan"`).
        cause: String,
        /// Relative latency gain the preview promised.
        predicted_gain: f64,
        /// The hysteresis threshold the gain failed to clear.
        required_gain: f64,
    },
    /// A fleet supervisor checkpointed one shard at an epoch boundary.
    CheckpointTaken {
        /// The checkpointed shard.
        shard: u64,
        /// Tenants captured in the checkpoint.
        tenants: u64,
    },
    /// The chaos harness injected one control-plane fault.
    FaultInjected {
        /// The fault-kind slug (e.g. `"shard-panic"`, `"channel-drop"`).
        cause: String,
        /// The shard the fault landed on.
        shard: u64,
        /// The tenant the fault targeted (the shard's first tenant for
        /// shard-wide faults).
        tenant: u64,
    },
    /// A faulted shard was restored from its epoch checkpoint and caught
    /// up by replaying the epoch's pumped events.
    ShardRestored {
        /// The restored shard.
        shard: u64,
        /// Events replayed to catch the shard up.
        replayed: u64,
    },
    /// A tenant whose state could not be recovered was retired from the
    /// fleet with its last checkpointed counters frozen into the totals.
    TenantQuarantined {
        /// The retired tenant.
        tenant: u64,
        /// Why recovery was impossible (e.g. `"corrupt-checkpoint"`).
        cause: String,
    },
}

impl EventKind {
    /// Stable journal/CSV label of the variant.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Admit { .. } => "Admit",
            Self::Reject { .. } => "Reject",
            Self::Shed { .. } => "Shed",
            Self::RetryScheduled { .. } => "RetryScheduled",
            Self::RetryAdmitted { .. } => "RetryAdmitted",
            Self::RetryAbandoned { .. } => "RetryAbandoned",
            Self::InstanceDown { .. } => "InstanceDown",
            Self::InstanceUp { .. } => "InstanceUp",
            Self::NodeDown { .. } => "NodeDown",
            Self::NodeUp { .. } => "NodeUp",
            Self::EmergencyReplace { .. } => "EmergencyReplace",
            Self::ReoptCommit { .. } => "ReoptCommit",
            Self::ReoptRejected { .. } => "ReoptRejected",
            Self::CheckpointTaken { .. } => "CheckpointTaken",
            Self::FaultInjected { .. } => "FaultInjected",
            Self::ShardRestored { .. } => "ShardRestored",
            Self::TenantQuarantined { .. } => "TenantQuarantined",
        }
    }
}

/// One journal record: a sequence number (journal order), the virtual
/// time and tick count at emission, and the typed payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Position in the journal (0-based, dense).
    pub seq: u64,
    /// Virtual time of the emission, seconds.
    pub time: f64,
    /// Re-optimization ticks observed when the record was emitted.
    pub tick: u64,
    /// The typed payload.
    pub kind: EventKind,
}

/// Header of the CSV journal shape (one row per event, fixed columns;
/// inapplicable columns stay empty, extra magnitudes go to `Detail`).
pub const CSV_HEADER: &str = "Event,Time,Tick,Request,Vnf,Instance,Node,Cause,Detail";

impl TraceEvent {
    /// Encodes the record as one flat JSON object (one journal line).
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_str("event", self.kind.label())
            .field_u64("seq", self.seq)
            .field_f64("time", self.time)
            .field_u64("tick", self.tick);
        match &self.kind {
            EventKind::Admit { request, hops } => {
                obj.field_u64("request", u64::from(request.index()))
                    .field_u64("hops", *hops);
            }
            EventKind::Reject { request, cause } | EventKind::Shed { request, cause } => {
                obj.field_u64("request", u64::from(request.index()))
                    .field_str("cause", cause);
            }
            EventKind::RetryScheduled {
                request,
                attempt,
                due,
            } => {
                obj.field_u64("request", u64::from(request.index()))
                    .field_u64("attempt", *attempt)
                    .field_f64("due", *due);
            }
            EventKind::RetryAdmitted { request, attempt } => {
                obj.field_u64("request", u64::from(request.index()))
                    .field_u64("attempt", *attempt);
            }
            EventKind::RetryAbandoned { request, cause } => {
                obj.field_u64("request", u64::from(request.index()))
                    .field_str("cause", cause);
            }
            EventKind::InstanceDown {
                vnf,
                slot,
                migrated,
                shed,
            } => {
                obj.field_u64("vnf", u64::from(vnf.index()))
                    .field_u64("slot", *slot)
                    .field_u64("migrated", *migrated)
                    .field_u64("shed", *shed);
            }
            EventKind::InstanceUp { vnf, slot } => {
                obj.field_u64("vnf", u64::from(vnf.index()))
                    .field_u64("slot", *slot);
            }
            EventKind::NodeDown {
                node,
                vnfs_lost,
                shed,
            } => {
                obj.field_u64("node", u64::from(node.index()))
                    .field_u64("vnfs_lost", *vnfs_lost)
                    .field_u64("shed", *shed);
            }
            EventKind::NodeUp {
                node,
                vnfs_restored,
            } => {
                obj.field_u64("node", u64::from(node.index()))
                    .field_u64("vnfs_restored", *vnfs_restored);
            }
            EventKind::EmergencyReplace {
                node,
                instances_added,
                relocations,
            } => {
                obj.field_u64("node", u64::from(node.index()))
                    .field_u64("instances_added", *instances_added)
                    .field_u64("relocations", *relocations);
            }
            EventKind::ReoptCommit {
                phase,
                migrations,
                instances_added,
                instances_retired,
                relocations,
                predicted_gain,
                realized_gain,
            } => {
                obj.field_str("phase", phase.name())
                    .field_u64("migrations", *migrations)
                    .field_u64("instances_added", *instances_added)
                    .field_u64("instances_retired", *instances_retired)
                    .field_u64("relocations", *relocations)
                    .field_f64("predicted_gain", *predicted_gain)
                    .field_f64("realized_gain", *realized_gain);
            }
            EventKind::ReoptRejected {
                phase,
                cause,
                predicted_gain,
                required_gain,
            } => {
                obj.field_str("phase", phase.name())
                    .field_str("cause", cause)
                    .field_f64("predicted_gain", *predicted_gain)
                    .field_f64("required_gain", *required_gain);
            }
            EventKind::CheckpointTaken { shard, tenants } => {
                obj.field_u64("shard", *shard)
                    .field_u64("tenants", *tenants);
            }
            EventKind::FaultInjected {
                cause,
                shard,
                tenant,
            } => {
                obj.field_str("cause", cause)
                    .field_u64("shard", *shard)
                    .field_u64("tenant", *tenant);
            }
            EventKind::ShardRestored { shard, replayed } => {
                obj.field_u64("shard", *shard)
                    .field_u64("replayed", *replayed);
            }
            EventKind::TenantQuarantined { tenant, cause } => {
                obj.field_u64("tenant", *tenant).field_str("cause", cause);
            }
        }
        obj.finish()
    }

    /// Decodes one journal line.
    ///
    /// # Errors
    ///
    /// [`JsonError`] when the line is malformed or misses a field the
    /// labelled variant requires.
    #[allow(clippy::too_many_lines)]
    pub fn from_json(line: &str) -> Result<Self, JsonError> {
        let fields = json::parse_object(line)?;
        let missing = |message| JsonError { message, at: 0 };
        let str_of = |key| {
            json::get_str(&fields, key)
                .map(String::from)
                .ok_or(missing("missing string field"))
        };
        let u64_of = |key| json::get_u64(&fields, key).ok_or(missing("missing integer field"));
        let f64_of = |key| json::get_f64(&fields, key).ok_or(missing("missing float field"));
        let id_u32 = |key| {
            u64_of(key).and_then(|v| u32::try_from(v).map_err(|_| missing("id out of range")))
        };
        let phase_of = || {
            json::get_str(&fields, "phase")
                .and_then(ReoptPhase::from_name)
                .ok_or(missing("missing or unknown phase"))
        };
        let label = json::get_str(&fields, "event").ok_or(missing("missing event label"))?;
        let kind = match label {
            "Admit" => EventKind::Admit {
                request: RequestId::new(id_u32("request")?),
                hops: u64_of("hops")?,
            },
            "Reject" => EventKind::Reject {
                request: RequestId::new(id_u32("request")?),
                cause: str_of("cause")?,
            },
            "Shed" => EventKind::Shed {
                request: RequestId::new(id_u32("request")?),
                cause: str_of("cause")?,
            },
            "RetryScheduled" => EventKind::RetryScheduled {
                request: RequestId::new(id_u32("request")?),
                attempt: u64_of("attempt")?,
                due: f64_of("due")?,
            },
            "RetryAdmitted" => EventKind::RetryAdmitted {
                request: RequestId::new(id_u32("request")?),
                attempt: u64_of("attempt")?,
            },
            "RetryAbandoned" => EventKind::RetryAbandoned {
                request: RequestId::new(id_u32("request")?),
                cause: str_of("cause")?,
            },
            "InstanceDown" => EventKind::InstanceDown {
                vnf: VnfId::new(id_u32("vnf")?),
                slot: u64_of("slot")?,
                migrated: u64_of("migrated")?,
                shed: u64_of("shed")?,
            },
            "InstanceUp" => EventKind::InstanceUp {
                vnf: VnfId::new(id_u32("vnf")?),
                slot: u64_of("slot")?,
            },
            "NodeDown" => EventKind::NodeDown {
                node: NodeId::new(id_u32("node")?),
                vnfs_lost: u64_of("vnfs_lost")?,
                shed: u64_of("shed")?,
            },
            "NodeUp" => EventKind::NodeUp {
                node: NodeId::new(id_u32("node")?),
                vnfs_restored: u64_of("vnfs_restored")?,
            },
            "EmergencyReplace" => EventKind::EmergencyReplace {
                node: NodeId::new(id_u32("node")?),
                instances_added: u64_of("instances_added")?,
                relocations: u64_of("relocations")?,
            },
            "ReoptCommit" => EventKind::ReoptCommit {
                phase: phase_of()?,
                migrations: u64_of("migrations")?,
                instances_added: u64_of("instances_added")?,
                instances_retired: u64_of("instances_retired")?,
                relocations: u64_of("relocations")?,
                predicted_gain: f64_of("predicted_gain")?,
                realized_gain: f64_of("realized_gain")?,
            },
            "ReoptRejected" => EventKind::ReoptRejected {
                phase: phase_of()?,
                cause: str_of("cause")?,
                predicted_gain: f64_of("predicted_gain")?,
                required_gain: f64_of("required_gain")?,
            },
            "CheckpointTaken" => EventKind::CheckpointTaken {
                shard: u64_of("shard")?,
                tenants: u64_of("tenants")?,
            },
            "FaultInjected" => EventKind::FaultInjected {
                cause: str_of("cause")?,
                shard: u64_of("shard")?,
                tenant: u64_of("tenant")?,
            },
            "ShardRestored" => EventKind::ShardRestored {
                shard: u64_of("shard")?,
                replayed: u64_of("replayed")?,
            },
            "TenantQuarantined" => EventKind::TenantQuarantined {
                tenant: u64_of("tenant")?,
                cause: str_of("cause")?,
            },
            _ => return Err(missing("unknown event label")),
        };
        Ok(Self {
            seq: u64_of("seq")?,
            time: f64_of("time")?,
            tick: u64_of("tick")?,
            kind,
        })
    }

    /// Encodes the record as one CSV row under [`CSV_HEADER`] — the
    /// per-event trace shape NFV orchestrators commonly emit (fixed
    /// `Event,Time,...,Reason`-style columns).
    #[must_use]
    pub fn to_csv_row(&self) -> String {
        let mut request = String::new();
        let mut vnf = String::new();
        let mut instance = String::new();
        let mut node = String::new();
        let mut cause = String::new();
        let mut detail = String::new();
        match &self.kind {
            EventKind::Admit { request: r, hops } => {
                request = r.to_string();
                detail = format!("hops={hops}");
            }
            EventKind::Reject {
                request: r,
                cause: c,
            }
            | EventKind::Shed {
                request: r,
                cause: c,
            } => {
                request = r.to_string();
                cause.clone_from(c);
            }
            EventKind::RetryScheduled {
                request: r,
                attempt,
                due,
            } => {
                request = r.to_string();
                detail = format!("attempt={attempt} due={due:.6}");
            }
            EventKind::RetryAdmitted {
                request: r,
                attempt,
            } => {
                request = r.to_string();
                detail = format!("attempt={attempt}");
            }
            EventKind::RetryAbandoned {
                request: r,
                cause: c,
            } => {
                request = r.to_string();
                cause.clone_from(c);
            }
            EventKind::InstanceDown {
                vnf: v,
                slot,
                migrated,
                shed,
            } => {
                vnf = v.to_string();
                instance = format!("{slot}");
                detail = format!("migrated={migrated} shed={shed}");
            }
            EventKind::InstanceUp { vnf: v, slot } => {
                vnf = v.to_string();
                instance = format!("{slot}");
            }
            EventKind::NodeDown {
                node: n,
                vnfs_lost,
                shed,
            } => {
                node = n.to_string();
                detail = format!("vnfs_lost={vnfs_lost} shed={shed}");
            }
            EventKind::NodeUp {
                node: n,
                vnfs_restored,
            } => {
                node = n.to_string();
                detail = format!("vnfs_restored={vnfs_restored}");
            }
            EventKind::EmergencyReplace {
                node: n,
                instances_added,
                relocations,
            } => {
                node = n.to_string();
                detail = format!("added={instances_added} relocated={relocations}");
            }
            EventKind::ReoptCommit {
                phase,
                migrations,
                instances_added,
                instances_retired,
                relocations,
                predicted_gain,
                realized_gain,
            } => {
                cause = phase.name().to_string();
                detail = format!(
                    "migrations={migrations} added={instances_added} retired={instances_retired} \
                     relocated={relocations} predicted={predicted_gain:.6} realized={realized_gain:.6}"
                );
            }
            EventKind::ReoptRejected {
                phase,
                cause: c,
                predicted_gain,
                required_gain,
            } => {
                cause = format!("{}:{c}", phase.name());
                detail = format!("predicted={predicted_gain:.6} required={required_gain:.6}");
            }
            EventKind::CheckpointTaken { shard, tenants } => {
                detail = format!("shard={shard} tenants={tenants}");
            }
            EventKind::FaultInjected {
                cause: c,
                shard,
                tenant,
            } => {
                cause.clone_from(c);
                detail = format!("shard={shard} tenant={tenant}");
            }
            EventKind::ShardRestored { shard, replayed } => {
                detail = format!("shard={shard} replayed={replayed}");
            }
            EventKind::TenantQuarantined { tenant, cause: c } => {
                cause.clone_from(c);
                detail = format!("tenant={tenant}");
            }
        }
        format!(
            "{},{:.6},{},{},{},{},{},{},{}",
            self.kind.label(),
            self.time,
            self.tick,
            request,
            vnf,
            instance,
            node,
            csv_field(&cause),
            csv_field(&detail),
        )
    }
}

/// Quotes a CSV field when it contains a separator or quote.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TraceEvent> {
        let kinds = vec![
            EventKind::Admit {
                request: RequestId::new(7),
                hops: 3,
            },
            EventKind::Reject {
                request: RequestId::new(8),
                cause: "would-overload".into(),
            },
            EventKind::Shed {
                request: RequestId::new(9),
                cause: "node-down".into(),
            },
            EventKind::RetryScheduled {
                request: RequestId::new(9),
                attempt: 2,
                due: 17.25,
            },
            EventKind::RetryAdmitted {
                request: RequestId::new(9),
                attempt: 2,
            },
            EventKind::RetryAbandoned {
                request: RequestId::new(10),
                cause: "budget-exhausted".into(),
            },
            EventKind::InstanceDown {
                vnf: VnfId::new(1),
                slot: 0,
                migrated: 4,
                shed: 1,
            },
            EventKind::InstanceUp {
                vnf: VnfId::new(1),
                slot: 0,
            },
            EventKind::NodeDown {
                node: NodeId::new(2),
                vnfs_lost: 3,
                shed: 11,
            },
            EventKind::NodeUp {
                node: NodeId::new(2),
                vnfs_restored: 2,
            },
            EventKind::EmergencyReplace {
                node: NodeId::new(2),
                instances_added: 2,
                relocations: 1,
            },
            EventKind::ReoptCommit {
                phase: ReoptPhase::Scheduling,
                migrations: 5,
                instances_added: 0,
                instances_retired: 0,
                relocations: 0,
                predicted_gain: 0.125,
                realized_gain: 0.125,
            },
            EventKind::ReoptRejected {
                phase: ReoptPhase::Replacement,
                cause: "hysteresis".into(),
                predicted_gain: -0.5,
                required_gain: 0.01,
            },
            EventKind::ReoptCommit {
                phase: ReoptPhase::Refiner,
                migrations: 0,
                instances_added: 0,
                instances_retired: 0,
                relocations: 3,
                predicted_gain: 0.04,
                realized_gain: 0.04,
            },
            EventKind::ReoptRejected {
                phase: ReoptPhase::Refiner,
                cause: "min-gain".into(),
                predicted_gain: 0.002,
                required_gain: 0.01,
            },
            EventKind::CheckpointTaken {
                shard: 1,
                tenants: 4,
            },
            EventKind::FaultInjected {
                cause: "shard-panic".into(),
                shard: 1,
                tenant: 3,
            },
            EventKind::ShardRestored {
                shard: 1,
                replayed: 17,
            },
            EventKind::TenantQuarantined {
                tenant: 3,
                cause: "corrupt-checkpoint".into(),
            },
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| TraceEvent {
                seq: i as u64,
                time: 0.1 * i as f64,
                tick: i as u64 / 3,
                kind,
            })
            .collect()
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for event in samples() {
            let line = event.to_json();
            let back = TraceEvent::from_json(&line).unwrap();
            assert_eq!(back, event, "journal line {line}");
        }
    }

    #[test]
    fn json_rejects_missing_fields_and_unknown_labels() {
        assert!(TraceEvent::from_json(r#"{"event":"Admit","seq":0,"time":0,"tick":0}"#).is_err());
        assert!(
            TraceEvent::from_json(r#"{"event":"Nonsense","seq":0,"time":0,"tick":0}"#).is_err()
        );
        assert!(TraceEvent::from_json("not json").is_err());
    }

    #[test]
    fn csv_rows_have_the_fixed_column_count() {
        let columns = CSV_HEADER.split(',').count();
        for event in samples() {
            let row = event.to_csv_row();
            // Quoted fields in these samples never contain commas, so a
            // plain split is a valid column count here.
            assert_eq!(row.split(',').count(), columns, "row {row}");
            assert!(row.starts_with(event.kind.label()));
        }
    }

    #[test]
    fn csv_quotes_embedded_separators() {
        let event = TraceEvent {
            seq: 0,
            time: 1.0,
            tick: 0,
            kind: EventKind::Shed {
                request: RequestId::new(1),
                cause: "a,b\"c".into(),
            },
        };
        assert!(event.to_csv_row().contains("\"a,b\"\"c\""));
    }

    #[test]
    fn non_finite_gains_survive_the_journal() {
        let event = TraceEvent {
            seq: 0,
            time: 1.0,
            tick: 1,
            kind: EventKind::ReoptRejected {
                phase: ReoptPhase::Scheduling,
                cause: "hysteresis".into(),
                predicted_gain: f64::NEG_INFINITY,
                required_gain: 0.01,
            },
        };
        let back = TraceEvent::from_json(&event.to_json()).unwrap();
        assert_eq!(back, event);
    }
}
