//! Versioned checkpoint snapshots of a [`Controller`]'s dynamic state.
//!
//! A [`ControllerSnapshot`] captures everything a controller mutates
//! while consuming a churn trace — the ledger's member runs and outage
//! depths, the active-request set, the retry wheel, the counters, the
//! latency integrals and sample streams, the archived report snapshots
//! and the cluster's dynamic assignment — but none of the static shape
//! (scenario, config, node fleet), which the restoring side already has.
//! [`Controller::restore`] applied to a controller built from the same
//! scenario and config rewinds it bit-for-bit: every subsequent event
//! produces the same outcome, journal record and report as the original
//! would have.
//!
//! The serialized form is hand-rolled (the vendored `serde` is
//! marker-only, matching `bench/report.rs`): a line-oriented document of
//! flat JSON objects. Line 1 is a versioned header carrying the section
//! lengths, so the parser is strictly positional; floats that must
//! round-trip bit-exactly travel either through the journal's
//! shortest-round-trip formatting (scalars) or as hexadecimal IEEE-754
//! bit patterns (sample streams and rate fields). Unknown versions and
//! shape mismatches are refused with a typed [`SnapshotError`], never a
//! panic — a corrupt checkpoint must degrade gracefully.
//!
//! [`Controller`]: crate::Controller
//! [`Controller::restore`]: crate::Controller::restore

use std::fmt::Write as _;

use nfv_model::{ArrivalRate, DeliveryProbability, Request, RequestId, ServiceChain, VnfId};
use nfv_telemetry::json::{self, JsonObject, JsonValue};

use crate::ledger::SlabExport;
use crate::ControllerReport;

/// Format version written by [`ControllerSnapshot::to_jsonl`]; decoding
/// refuses any other version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot could not be decoded or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The document declares a version this build does not understand.
    UnsupportedVersion {
        /// The version the document declared.
        found: u64,
    },
    /// A line of the document failed to parse.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// What the decoder objected to.
        reason: &'static str,
    },
    /// The decoded snapshot does not fit the controller it was applied
    /// to (different scenario shape, cluster presence, or counter set).
    Mismatch {
        /// What did not match.
        reason: &'static str,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            Self::Malformed { line, reason } => {
                write!(f, "malformed snapshot at line {line}: {reason}")
            }
            Self::Mismatch { reason } => {
                write!(f, "snapshot does not fit this controller: {reason}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A point-in-time capture of a controller's dynamic state. Produced by
/// [`Controller::checkpoint`], applied by [`Controller::restore`], and
/// (de)serialized by [`to_jsonl`](Self::to_jsonl) /
/// [`from_jsonl`](Self::from_jsonl).
///
/// [`Controller::checkpoint`]: crate::Controller::checkpoint
/// [`Controller::restore`]: crate::Controller::restore
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerSnapshot {
    /// Virtual clock at capture time.
    pub(crate) clock: f64,
    /// `∫ L(t) dt` accumulated so far.
    pub(crate) latency_integral: f64,
    /// Predicted latency after the last handled event.
    pub(crate) current_latency: f64,
    /// The counter block as `(name, value)` pairs in declaration order;
    /// restore refuses a pair set that does not exactly match the
    /// build's counter names (the versioning story for counters).
    pub(crate) counters: Vec<(String, u64)>,
    /// Latency samples in insertion order.
    pub(crate) latency_samples: Vec<f64>,
    /// Utilization samples in insertion order.
    pub(crate) utilization_samples: Vec<f64>,
    /// Archived per-tick report snapshots.
    pub(crate) reports: Vec<ControllerReport>,
    /// The ledger's dynamic state per VNF.
    pub(crate) slabs: Vec<SlabExport>,
    /// Active requests in ascending id order.
    pub(crate) active: Vec<Request>,
    /// The retry queue's next sequence number.
    pub(crate) retry_seq: u64,
    /// Pending retries in key order as
    /// `(due_bits, entry_seq, attempt, request)`.
    pub(crate) retry_entries: Vec<(u64, u64, u32, Request)>,
    /// Dynamic cluster state `(assignment node ids, node outage
    /// depths)`; `None` when the controller runs without a cluster.
    pub(crate) cluster: Option<(Vec<u32>, Vec<u32>)>,
}

impl ControllerSnapshot {
    /// Serializes the snapshot as a line-oriented JSON document (see the
    /// module docs for the format).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut push = |line: String| {
            out.push_str(&line);
            out.push('\n');
        };
        let mut header = JsonObject::new();
        header
            .field_u64("snapshot_version", u64::from(SNAPSHOT_VERSION))
            .field_f64("clock", self.clock)
            .field_f64("latency_integral", self.latency_integral)
            .field_f64("current_latency", self.current_latency)
            .field_u64("retry_seq", self.retry_seq)
            .field_u64("latency_samples", self.latency_samples.len() as u64)
            .field_u64("utilization_samples", self.utilization_samples.len() as u64)
            .field_u64("reports", self.reports.len() as u64)
            .field_u64("slabs", self.slabs.len() as u64)
            .field_u64("active", self.active.len() as u64)
            .field_u64("retry_entries", self.retry_entries.len() as u64)
            .field_u64("cluster", u64::from(self.cluster.is_some()));
        push(header.finish());

        let mut counters = JsonObject::new();
        for (name, value) in &self.counters {
            counters.field_u64(name, *value);
        }
        push(counters.finish());

        let mut latency = JsonObject::new();
        latency.field_str("bits", &bits_list(&self.latency_samples));
        push(latency.finish());
        let mut utilization = JsonObject::new();
        utilization.field_str("bits", &bits_list(&self.utilization_samples));
        push(utilization.finish());

        for report in &self.reports {
            push(report.to_json());
        }
        for slab in &self.slabs {
            let mut obj = JsonObject::new();
            obj.field_u64("vnf", u64::from(slab.vnf))
                .field_u64("host_down", u64::from(slab.host_down))
                .field_str("down", &u32_list(&slab.down))
                .field_str("members", &member_runs(&slab.members));
            push(obj.finish());
        }
        for request in &self.active {
            push(request_line(request, None));
        }
        for (due_bits, seq, attempt, request) in &self.retry_entries {
            push(request_line(request, Some((*due_bits, *seq, *attempt))));
        }
        if let Some((assignment, node_down)) = &self.cluster {
            let mut obj = JsonObject::new();
            obj.field_str("assignment", &u32_list(assignment))
                .field_str("node_down", &u32_list(node_down));
            push(obj.finish());
        }
        out
    }

    /// Decodes a document produced by [`to_jsonl`](Self::to_jsonl).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnsupportedVersion`] for a foreign version,
    /// [`SnapshotError::Malformed`] (with the 1-based line number) for
    /// anything that fails to parse or carries an out-of-domain value.
    pub fn from_jsonl(document: &str) -> Result<Self, SnapshotError> {
        let mut lines = document.lines().enumerate();
        let mut next = |section: &'static str| -> Result<(usize, &str), SnapshotError> {
            let _ = section;
            lines
                .next()
                .map(|(at, line)| (at + 1, line))
                .ok_or(SnapshotError::Malformed {
                    line: 0,
                    reason: "document truncated",
                })
        };
        let parse = |at: usize, line: &str| -> Result<Vec<(String, JsonValue)>, SnapshotError> {
            json::parse_object(line).map_err(|_| SnapshotError::Malformed {
                line: at,
                reason: "invalid JSON object",
            })
        };

        let (at, line) = next("header")?;
        let header = parse(at, line)?;
        let header_u64 = |key: &'static str| {
            json::get_u64(&header, key).ok_or(SnapshotError::Malformed {
                line: at,
                reason: "missing header integer",
            })
        };
        let header_f64 = |key: &'static str| {
            json::get_f64(&header, key).ok_or(SnapshotError::Malformed {
                line: at,
                reason: "missing header float",
            })
        };
        let version = header_u64("snapshot_version")?;
        if version != u64::from(SNAPSHOT_VERSION) {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let clock = header_f64("clock")?;
        let latency_integral = header_f64("latency_integral")?;
        let current_latency = header_f64("current_latency")?;
        let retry_seq = header_u64("retry_seq")?;
        let count = |key: &'static str| -> Result<usize, SnapshotError> {
            usize::try_from(header_u64(key)?).map_err(|_| SnapshotError::Malformed {
                line: at,
                reason: "section length overflows usize",
            })
        };
        let n_latency = count("latency_samples")?;
        let n_utilization = count("utilization_samples")?;
        let n_reports = count("reports")?;
        let n_slabs = count("slabs")?;
        let n_active = count("active")?;
        let n_retry = count("retry_entries")?;
        let has_cluster = header_u64("cluster")? != 0;

        let (at, line) = next("counters")?;
        let counters = parse(at, line)?
            .into_iter()
            .map(|(key, value)| match value {
                JsonValue::Raw(raw) => {
                    raw.parse::<u64>()
                        .map(|v| (key, v))
                        .map_err(|_| SnapshotError::Malformed {
                            line: at,
                            reason: "counter value is not a u64",
                        })
                }
                JsonValue::Str(_) => Err(SnapshotError::Malformed {
                    line: at,
                    reason: "counter value is not a u64",
                }),
            })
            .collect::<Result<Vec<_>, _>>()?;

        let mut samples = |expected: usize| -> Result<Vec<f64>, SnapshotError> {
            let (at, line) = next("samples")?;
            let fields = parse(at, line)?;
            let bits = json::get_str(&fields, "bits").ok_or(SnapshotError::Malformed {
                line: at,
                reason: "missing sample bits",
            })?;
            let values = parse_bits_list(bits)
                .map_err(|reason| SnapshotError::Malformed { line: at, reason })?;
            if values.len() != expected {
                return Err(SnapshotError::Malformed {
                    line: at,
                    reason: "sample count disagrees with header",
                });
            }
            Ok(values)
        };
        let latency_samples = samples(n_latency)?;
        let utilization_samples = samples(n_utilization)?;

        let mut reports = Vec::with_capacity(n_reports);
        for _ in 0..n_reports {
            let (at, line) = next("report")?;
            reports.push(ControllerReport::from_json(line).map_err(|_| {
                SnapshotError::Malformed {
                    line: at,
                    reason: "invalid report line",
                }
            })?);
        }

        let mut slabs = Vec::with_capacity(n_slabs);
        for _ in 0..n_slabs {
            let (at, line) = next("slab")?;
            let fields = parse(at, line)?;
            let bad = |reason| SnapshotError::Malformed { line: at, reason };
            let vnf = json::get_u64(&fields, "vnf")
                .and_then(|v| u32::try_from(v).ok())
                .ok_or(bad("missing slab vnf id"))?;
            let host_down = json::get_u64(&fields, "host_down").ok_or(bad("missing host_down"))?;
            let down =
                parse_u32_list(json::get_str(&fields, "down").ok_or(bad("missing down depths"))?)
                    .map_err(bad)?;
            let members = parse_member_runs(
                json::get_str(&fields, "members").ok_or(bad("missing member runs"))?,
            )
            .map_err(bad)?;
            slabs.push(SlabExport {
                vnf,
                down,
                host_down: host_down != 0,
                members,
            });
        }

        let mut active = Vec::with_capacity(n_active);
        for _ in 0..n_active {
            let (at, line) = next("active request")?;
            let (request, key) = parse_request_line(at, &parse(at, line)?)?;
            if key.is_some() {
                return Err(SnapshotError::Malformed {
                    line: at,
                    reason: "active request carries retry keys",
                });
            }
            active.push(request);
        }

        let mut retry_entries = Vec::with_capacity(n_retry);
        for _ in 0..n_retry {
            let (at, line) = next("retry entry")?;
            let (request, key) = parse_request_line(at, &parse(at, line)?)?;
            let (due_bits, seq, attempt) = key.ok_or(SnapshotError::Malformed {
                line: at,
                reason: "retry entry misses its wheel key",
            })?;
            retry_entries.push((due_bits, seq, attempt, request));
        }

        let cluster = if has_cluster {
            let (at, line) = next("cluster")?;
            let fields = parse(at, line)?;
            let bad = |reason| SnapshotError::Malformed { line: at, reason };
            let assignment = parse_u32_list(
                json::get_str(&fields, "assignment").ok_or(bad("missing assignment"))?,
            )
            .map_err(bad)?;
            let node_down = parse_u32_list(
                json::get_str(&fields, "node_down").ok_or(bad("missing node_down depths"))?,
            )
            .map_err(bad)?;
            Some((assignment, node_down))
        } else {
            None
        };

        if lines.next().is_some() {
            return Err(SnapshotError::Malformed {
                line: 0,
                reason: "trailing lines after the declared sections",
            });
        }

        Ok(Self {
            clock,
            latency_integral,
            current_latency,
            counters,
            latency_samples,
            utilization_samples,
            reports,
            slabs,
            active,
            retry_seq,
            retry_entries,
            cluster,
        })
    }
}

/// Finite floats as space-separated hexadecimal IEEE-754 bit patterns —
/// exact by construction, no text-float round-trip involved.
fn bits_list(values: &[f64]) -> String {
    let mut out = String::new();
    for (i, value) in values.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{:x}", value.to_bits());
    }
    out
}

fn parse_bits_list(text: &str) -> Result<Vec<f64>, &'static str> {
    text.split_ascii_whitespace()
        .map(|word| {
            u64::from_str_radix(word, 16)
                .map(f64::from_bits)
                .map_err(|_| "invalid sample bit pattern")
        })
        .collect()
}

fn u32_list(values: &[u32]) -> String {
    let mut out = String::new();
    for (i, value) in values.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{value}");
    }
    out
}

fn parse_u32_list(text: &str) -> Result<Vec<u32>, &'static str> {
    text.split_ascii_whitespace()
        .map(|word| word.parse::<u32>().map_err(|_| "invalid u32 list entry"))
        .collect()
}

/// Per-instance member runs: runs joined by `;`, members within a run by
/// spaces, one member as `id:rate_bits:delivery_bits` (bits hexadecimal).
fn member_runs(runs: &[Vec<(u32, f64, f64)>]) -> String {
    let mut out = String::new();
    for (k, run) in runs.iter().enumerate() {
        if k > 0 {
            out.push(';');
        }
        for (i, (id, rate, delivery)) in run.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{id}:{:x}:{:x}", rate.to_bits(), delivery.to_bits());
        }
    }
    out
}

/// One decoded ledger run: `(request id, rate bits, delivery bits)` per
/// member, in ledger order.
type MemberRun = Vec<(u32, f64, f64)>;

fn parse_member_runs(text: &str) -> Result<Vec<MemberRun>, &'static str> {
    text.split(';')
        .map(|run| {
            run.split_ascii_whitespace()
                .map(|member| {
                    let mut parts = member.split(':');
                    let id = parts
                        .next()
                        .and_then(|p| p.parse::<u32>().ok())
                        .ok_or("invalid member id")?;
                    let rate = parts
                        .next()
                        .and_then(|p| u64::from_str_radix(p, 16).ok())
                        .map(f64::from_bits)
                        .ok_or("invalid member rate bits")?;
                    let delivery = parts
                        .next()
                        .and_then(|p| u64::from_str_radix(p, 16).ok())
                        .map(f64::from_bits)
                        .ok_or("invalid member delivery bits")?;
                    if parts.next().is_some() {
                        return Err("trailing member fields");
                    }
                    Ok((id, rate, delivery))
                })
                .collect()
        })
        .collect()
}

/// One request as a flat object; retry entries append their wheel key.
fn request_line(request: &Request, key: Option<(u64, u64, u32)>) -> String {
    let mut chain = String::new();
    for (i, vnf) in request.chain().as_slice().iter().enumerate() {
        if i > 0 {
            chain.push(' ');
        }
        let _ = write!(chain, "{}", vnf.index());
    }
    let mut obj = JsonObject::new();
    obj.field_u64("id", u64::from(request.id().index()))
        .field_u64("rate_bits", request.arrival_rate().value().to_bits())
        .field_u64("delivery_bits", request.delivery().value().to_bits())
        .field_str("chain", &chain);
    if let Some((due_bits, seq, attempt)) = key {
        obj.field_u64("due_bits", due_bits)
            .field_u64("entry_seq", seq)
            .field_u64("attempt", u64::from(attempt));
    }
    obj.finish()
}

type ParsedRequest = (Request, Option<(u64, u64, u32)>);

fn parse_request_line(
    at: usize,
    fields: &[(String, JsonValue)],
) -> Result<ParsedRequest, SnapshotError> {
    let bad = |reason| SnapshotError::Malformed { line: at, reason };
    let id = json::get_u64(fields, "id")
        .and_then(|v| u32::try_from(v).ok())
        .ok_or(bad("missing request id"))?;
    let rate = ArrivalRate::new(f64::from_bits(
        json::get_u64(fields, "rate_bits").ok_or(bad("missing rate bits"))?,
    ))
    .map_err(|_| bad("request rate out of domain"))?;
    let delivery = DeliveryProbability::new(f64::from_bits(
        json::get_u64(fields, "delivery_bits").ok_or(bad("missing delivery bits"))?,
    ))
    .map_err(|_| bad("request delivery out of domain"))?;
    let chain = json::get_str(fields, "chain")
        .ok_or(bad("missing chain"))?
        .split_ascii_whitespace()
        .map(|word| word.parse::<u32>().map(VnfId::new))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|_| bad("invalid chain entry"))?;
    let chain = ServiceChain::new(chain).map_err(|_| bad("invalid service chain"))?;
    let request = Request::new(RequestId::new(id), chain, rate, delivery);
    let key = match (
        json::get_u64(fields, "due_bits"),
        json::get_u64(fields, "entry_seq"),
        json::get_u64(fields, "attempt"),
    ) {
        (Some(due_bits), Some(seq), Some(attempt)) => Some((
            due_bits,
            seq,
            u32::try_from(attempt).map_err(|_| bad("attempt overflows u32"))?,
        )),
        (None, None, None) => None,
        _ => return Err(bad("partial retry wheel key")),
    };
    Ok((request, key))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> ControllerSnapshot {
        let chain = ServiceChain::new(vec![VnfId::new(0), VnfId::new(2)]).unwrap();
        let request = |id: u32| {
            Request::new(
                RequestId::new(id),
                chain.clone(),
                ArrivalRate::new(0.1 + f64::from(id)).unwrap(),
                DeliveryProbability::new(0.97).unwrap(),
            )
        };
        ControllerSnapshot {
            clock: 12.75,
            latency_integral: 1.0 / 3.0,
            current_latency: 0.125,
            counters: vec![("admitted".into(), 7), ("rejected".into(), 2)],
            latency_samples: vec![0.1, 1.0 / 7.0, 3e-9],
            utilization_samples: vec![0.5],
            reports: vec![ControllerReport {
                time: 1.0,
                admitted: 1,
                rejected: 0,
                departed: 0,
                shed: 0,
                migrated_failover: 0,
                migrated_reopt: 0,
                migrated_replace: 0,
                ticks: 1,
                reopts_applied: 0,
                reopts_skipped: 1,
                instances_added: 0,
                instances_retired: 0,
                relocations: 0,
                replaces_applied: 0,
                replaces_aborted: 0,
                node_downs: 0,
                node_ups: 0,
                stale_outage_events: 0,
                emergency_replaces: 0,
                retries_attempted: 0,
                retry_admitted: 0,
                retry_abandoned: 0,
                refines_applied: 0,
                refines_rejected: 0,
                retry_pending: 0,
                active: 1,
                mean_latency: 0.25,
                current_latency: 0.25,
                peak_utilization: 0.5,
            }],
            slabs: vec![
                SlabExport {
                    vnf: 0,
                    down: vec![0, 2],
                    host_down: false,
                    members: vec![vec![(1, 1.1, 0.97), (4, 2.3, 1.0)], vec![]],
                },
                SlabExport {
                    vnf: 2,
                    down: vec![0],
                    host_down: true,
                    members: vec![vec![(1, 1.1, 0.97)]],
                },
            ],
            active: vec![request(1), request(4)],
            retry_seq: 9,
            retry_entries: vec![(3.5f64.to_bits(), 2, 1, request(6))],
            cluster: Some((vec![0, 1, 0], vec![0, 3, 0])),
        }
    }

    #[test]
    fn jsonl_round_trips_bit_for_bit() {
        let snapshot = sample_snapshot();
        let text = snapshot.to_jsonl();
        let decoded = ControllerSnapshot::from_jsonl(&text).unwrap();
        assert_eq!(decoded, snapshot);
        // Bit-exactness of the float carriers, explicitly.
        for (a, b) in decoded
            .latency_samples
            .iter()
            .zip(&snapshot.latency_samples)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(decoded.to_jsonl(), text, "re-encoding is stable");
    }

    #[test]
    fn cluster_free_snapshot_round_trips() {
        let mut snapshot = sample_snapshot();
        snapshot.cluster = None;
        snapshot.retry_entries.clear();
        let decoded = ControllerSnapshot::from_jsonl(&snapshot.to_jsonl()).unwrap();
        assert_eq!(decoded, snapshot);
    }

    #[test]
    fn foreign_versions_and_corruption_are_typed_errors() {
        let snapshot = sample_snapshot();
        let text = snapshot.to_jsonl();
        let bumped = text.replacen("\"snapshot_version\":1", "\"snapshot_version\":99", 1);
        assert_eq!(
            ControllerSnapshot::from_jsonl(&bumped),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        );
        let truncated: String = text
            .lines()
            .take(3)
            .flat_map(|l| [l, "\n"])
            .collect::<String>();
        assert!(matches!(
            ControllerSnapshot::from_jsonl(&truncated),
            Err(SnapshotError::Malformed { .. })
        ));
        let trailing = format!("{text}{{}}\n");
        assert!(matches!(
            ControllerSnapshot::from_jsonl(&trailing),
            Err(SnapshotError::Malformed { .. })
        ));
        let garbled = text.replacen("\"bits\":\"", "\"bits\":\"zz ", 1);
        assert!(matches!(
            ControllerSnapshot::from_jsonl(&garbled),
            Err(SnapshotError::Malformed { .. })
        ));
    }
}
