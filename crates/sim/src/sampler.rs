//! Exponential variate sampling.

use rand::Rng;

/// An exponential distribution with rate `λ`, sampled by inversion:
/// `−ln(U)/λ` for `U ~ Uniform(0, 1]`.
///
/// Used for both Poisson inter-arrival times and exponential service times;
/// implemented here (rather than pulling in `rand_distr`) because inversion
/// is all the simulator needs and keeps the dependency set minimal.
///
/// # Examples
///
/// ```
/// use nfv_sim::Exponential;
/// use rand::SeedableRng;
/// let exp = Exponential::new(4.0).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let x = exp.sample(&mut rng);
/// assert!(x > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// Returns `None` unless the rate is finite and strictly positive.
    #[must_use]
    pub fn new(rate: f64) -> Option<Self> {
        (rate.is_finite() && rate > 0.0).then_some(Self { rate })
    }

    /// The distribution's rate parameter.
    #[must_use]
    pub const fn rate(&self) -> f64 {
        self.rate
    }

    /// The distribution's mean, `1/λ`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // gen::<f64>() yields [0, 1); use 1 − u to avoid ln(0).
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_rates() {
        assert!(Exponential::new(0.0).is_none());
        assert!(Exponential::new(-1.0).is_none());
        assert!(Exponential::new(f64::NAN).is_none());
        assert!(Exponential::new(f64::INFINITY).is_none());
    }

    #[test]
    fn samples_are_positive_and_finite() {
        let exp = Exponential::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = exp.sample(&mut rng);
            assert!(x.is_finite() && x > 0.0);
        }
    }

    #[test]
    fn empirical_mean_matches_reciprocal_rate() {
        let exp = Exponential::new(5.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.2).abs() < 0.005, "empirical mean {mean}");
        assert_eq!(exp.mean(), 0.2);
        assert_eq!(exp.rate(), 5.0);
    }

    #[test]
    fn memoryless_tail_fraction() {
        // P(X > mean) = e^{-1} ≈ 0.368.
        let exp = Exponential::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let above = (0..n).filter(|_| exp.sample(&mut rng) > 1.0).count();
        let frac = above as f64 / f64::from(n);
        assert!(
            (frac - (-1.0f64).exp()).abs() < 0.01,
            "tail fraction {frac}"
        );
    }
}
