//! Error type for queueing analytics.

use std::error::Error;
use std::fmt;

/// Error returned when a queueing quantity is undefined for the given load.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QueueingError {
    /// The station is not strictly stable: the equivalent total arrival rate
    /// reaches or exceeds the service rate (`ρ ≥ 1`), so steady-state
    /// quantities like `E[N]` and `E[T]` diverge. The admission-control
    /// mechanism (paper §I, §III.B) exists precisely to prevent this state.
    Unstable {
        /// Equivalent total arrival rate `Λ` at the station (pps).
        arrival: f64,
        /// Service rate `μ` of the station (pps).
        service: f64,
    },
    /// A chain response was requested for a VNF with no assigned instance.
    MissingAssignment,
    /// An open Jackson network definition was malformed (dimension
    /// mismatch, invalid probabilities, or a routing structure under which
    /// packets never leave, making the traffic equations singular).
    InvalidNetwork {
        /// Description of the violated requirement.
        reason: &'static str,
    },
}

impl fmt::Display for QueueingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Unstable { arrival, service } => write!(
                f,
                "station unstable: arrival rate {arrival} pps >= service rate {service} pps"
            ),
            Self::MissingAssignment => {
                write!(
                    f,
                    "request traverses a VNF with no assigned service instance"
                )
            }
            Self::InvalidNetwork { reason } => write!(f, "invalid jackson network: {reason}"),
        }
    }
}

impl Error for QueueingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_reports_rates() {
        let err = QueueingError::Unstable {
            arrival: 120.0,
            service: 100.0,
        };
        let s = err.to_string();
        assert!(s.contains("120") && s.contains("100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueueingError>();
    }
}
