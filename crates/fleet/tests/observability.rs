//! The observability plane's contract: everything except span *timings*
//! is a pure function of the deterministic virtual-time run — the
//! registry dump, the per-tenant percentiles, the SLO counter, and the
//! flight-recorder postmortems are byte-identical run to run — and the
//! whole plane can be switched off without perturbing the run itself.

use nfv_fleet::{run, run_with_faults, FaultKind, FaultPlan, FleetSpec};
use nfv_telemetry::Postmortem;
use nfv_workload::TenantId;

fn spec() -> FleetSpec {
    FleetSpec {
        seed: 42,
        ..FleetSpec::smoke()
    }
}

#[test]
fn registry_and_percentiles_are_byte_identical_run_to_run() {
    let a = run(&spec()).unwrap();
    let b = run(&spec()).unwrap();
    assert!(!a.registry.is_empty(), "smoke spec enables observability");
    assert_eq!(a.registry.to_text(), b.registry.to_text());
    assert_eq!(a.registry.to_prometheus(), b.registry.to_prometheus());
    assert_eq!(a.registry.to_json(), b.registry.to_json());
    assert_eq!(a.report.tenant_latency, b.report.tenant_latency);
    assert_eq!(a.report.slo_violations, b.report.slo_violations);
    // One latency row per tenant, sorted by tenant id.
    let tenants: Vec<TenantId> = a.report.tenant_latency.iter().map(|s| s.tenant).collect();
    let mut sorted = tenants.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(tenants, sorted);
    assert_eq!(tenants.len(), spec().tenants);
}

#[test]
fn disabling_observability_changes_nothing_but_the_obs_fields() {
    let on = run(&spec()).unwrap();
    let off = run(&FleetSpec {
        observability: false,
        ..spec()
    })
    .unwrap();
    // The run itself is untouched…
    assert_eq!(on.epoch_records, off.epoch_records);
    assert_eq!(on.migrations, off.migrations);
    assert_eq!(on.tenant_reports, off.tenant_reports);
    assert_eq!(
        on.artifacts.journal_jsonl(),
        off.artifacts.journal_jsonl(),
        "journal unaffected by the observability flag"
    );
    // …while the plane itself is empty when off.
    assert!(off.registry.is_empty());
    assert!(off.spans.is_empty());
    assert!(off.postmortems.is_empty());
    assert!(off.report.tenant_latency.is_empty());
    assert_eq!(off.report.slo_violations, 0);
    assert!(!on.spans.is_empty());
}

#[test]
fn span_tree_phase_totals_sum_to_the_measured_epoch_time() {
    let outcome = run(&spec()).unwrap();
    let spans = &outcome.spans;
    let roots = spans.roots();
    assert_eq!(roots.len(), 1, "one fleet-run root");
    let root = roots[0];
    assert_eq!(spans.label(root), "fleet run");
    let mut epochs_seen = 0;
    for epoch in spans.children(root) {
        if !spans.label(epoch).starts_with("epoch ") {
            continue;
        }
        epochs_seen += 1;
        let children: f64 = spans
            .children(epoch)
            .iter()
            .map(|&c| spans.seconds(c))
            .sum();
        // Children plus the residual reconstruct the measured epoch
        // time exactly (the residual is defined as the difference,
        // clamped at zero — so children never exceed the parent by more
        // than float round-off).
        let total = children + spans.residual(epoch);
        assert!(
            (total - spans.seconds(epoch)).abs() <= 1e-9 * spans.seconds(epoch).max(1.0),
            "epoch attribution must sum to the measured epoch time"
        );
        let labels: Vec<&str> = spans
            .children(epoch)
            .iter()
            .map(|&c| spans.label(c))
            .collect();
        assert!(labels.contains(&"pump"), "every epoch pumps: {labels:?}");
        assert!(
            labels.iter().any(|l| l.starts_with("drain shard ")),
            "every epoch drains: {labels:?}"
        );
    }
    assert_eq!(epochs_seen as u64, spec().epochs(), "one span per epoch");
    // The render carries the attribution table used by `figures profile`.
    let table = spans.render();
    assert!(table.contains("fleet run"));
    assert!(table.contains("(other)"));
}

#[test]
fn quarantine_dumps_a_deterministic_flight_recorder_postmortem() {
    let spec = spec();
    let plan = FaultPlan::none().with_fault(1, FaultKind::CorruptCheckpoint { tenant: 1 });
    let a = run_with_faults(&spec, &plan).unwrap();
    let b = run_with_faults(&spec, &plan).unwrap();
    assert_eq!(a.postmortems.len(), 1, "one quarantine, one postmortem");
    let postmortem = &a.postmortems[0];
    assert_eq!(postmortem.tenant, 1);
    assert_eq!(postmortem.epoch, 1);
    assert_eq!(postmortem.cause, "corrupt_checkpoint");
    let dump = postmortem.render();
    assert!(!dump.is_empty(), "postmortems are never empty");
    assert!(dump.starts_with("postmortem tenant=1 epoch=1 cause=corrupt_checkpoint"));
    assert!(dump.contains("counter "), "checkpoint counters dumped");
    assert_eq!(
        a.postmortems
            .iter()
            .map(Postmortem::render)
            .collect::<Vec<_>>(),
        b.postmortems
            .iter()
            .map(Postmortem::render)
            .collect::<Vec<_>>(),
        "postmortem dumps are deterministic"
    );
}
