//! The flight recorder: bounded post-mortem windows for chaos failures.
//!
//! When the fleet quarantines a tenant, the operator's first question is
//! "what happened right before?". The journal ring already retains the
//! most recent events per tenant; a [`Postmortem`] freezes the tail of
//! that ring (at most [`FLIGHT_RECORDER_WINDOW`] events) together with
//! the tenant's counter registry deltas at checkpoint time, and renders
//! them as one deterministic text dump. Because every input derives from
//! the deterministic virtual-time run, two runs of the same seeded fault
//! plan produce byte-identical dumps at any thread count.

use std::fmt::Write as _;

use crate::event::TraceEvent;

/// Maximum journal events a [`Postmortem`] retains (the tail of the
/// tenant's journal ring at capture time).
pub const FLIGHT_RECORDER_WINDOW: usize = 32;

/// A frozen post-mortem window for one failed tenant (see the module
/// docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Postmortem {
    /// The tenant the window belongs to.
    pub tenant: u64,
    /// The epoch whose boundary sweep captured the window.
    pub epoch: u64,
    /// The failure cause slug (e.g. `corrupt_checkpoint`).
    pub cause: String,
    /// The last journal events before capture, oldest first, at most
    /// [`FLIGHT_RECORDER_WINDOW`].
    pub events: Vec<TraceEvent>,
    /// The tenant's counter values at capture time, declaration order.
    pub counters: Vec<(&'static str, u64)>,
}

impl Postmortem {
    /// Builds a window, truncating `events` to the most recent
    /// [`FLIGHT_RECORDER_WINDOW`] entries.
    #[must_use]
    pub fn new(
        tenant: u64,
        epoch: u64,
        cause: impl Into<String>,
        mut events: Vec<TraceEvent>,
        counters: Vec<(&'static str, u64)>,
    ) -> Self {
        let excess = events.len().saturating_sub(FLIGHT_RECORDER_WINDOW);
        events.drain(..excess);
        Self {
            tenant,
            epoch,
            cause: cause.into(),
            events,
            counters,
        }
    }

    /// Journal events retained in the window.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// The deterministic text dump: a header line, one `counter` line
    /// per non-zero counter, then one JSON journal line per retained
    /// event. Never empty — the header and counters are present even
    /// for a tenant that journalled nothing.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "postmortem tenant={} epoch={} cause={} events={}",
            self.tenant,
            self.epoch,
            self.cause,
            self.events.len()
        );
        for (name, value) in &self.counters {
            if *value > 0 {
                let _ = writeln!(out, "counter {name} {value}");
            }
        }
        for event in &self.events {
            let _ = writeln!(out, "event {}", event.to_json());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use nfv_model::RequestId;

    fn admit(seq: u64) -> TraceEvent {
        TraceEvent {
            seq,
            time: seq as f64,
            tick: 0,
            kind: EventKind::Admit {
                request: RequestId::new(seq as u32),
                hops: 1,
            },
        }
    }

    #[test]
    fn window_keeps_the_most_recent_events() {
        let events: Vec<TraceEvent> = (0..(FLIGHT_RECORDER_WINDOW as u64 + 10))
            .map(admit)
            .collect();
        let pm = Postmortem::new(3, 2, "corrupt_checkpoint", events, vec![("admitted", 42)]);
        assert_eq!(pm.event_count(), FLIGHT_RECORDER_WINDOW);
        assert_eq!(pm.events.first().unwrap().seq, 10, "oldest surviving");
        assert_eq!(
            pm.events.last().unwrap().seq,
            FLIGHT_RECORDER_WINDOW as u64 + 9
        );
    }

    #[test]
    fn render_is_never_empty_and_deterministic() {
        let quiet = Postmortem::new(
            7,
            1,
            "corrupt_checkpoint",
            Vec::new(),
            vec![("admitted", 0)],
        );
        let dump = quiet.render();
        assert!(!dump.is_empty());
        assert!(dump.starts_with("postmortem tenant=7 epoch=1 cause=corrupt_checkpoint events=0"));
        assert!(!dump.contains("counter admitted"), "zero counters elided");
        assert_eq!(dump, quiet.render());
    }

    #[test]
    fn render_lists_counters_then_events() {
        let pm = Postmortem::new(
            1,
            0,
            "corrupt_checkpoint",
            vec![admit(5)],
            vec![("admitted", 3), ("shed", 0)],
        );
        let dump = pm.render();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], "counter admitted 3");
        assert!(lines[2].starts_with("event {"));
        assert!(lines[2].contains("\"event\":\"Admit\""));
    }
}
