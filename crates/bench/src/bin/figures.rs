//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run -p nfv-bench --bin figures --release -- <command> [--reps N] [--seed S] [--threads T]
//! ```
//!
//! Commands: `fig5` … `fig16`, `tail`, `joint`, `churn`, `anytime`,
//! `validate`, `ablation`, `all`, `bench`. Each prints the series the
//! corresponding
//! paper figure plots (`churn` prints the online control-plane
//! comparison), plus a shape-check summary (who wins, by how much) for
//! comparison with `EXPERIMENTS.md`.
//!
//! Three observability commands close the `all` list; their output is
//! wall-clock- or journal-shaped rather than a paper figure: `trace`
//! replays the resilience scenario with an enabled telemetry session and
//! reconstructs the outage episodes from the serialized JSONL journal
//! (with `--csv DIR` it also writes the JSONL/CSV journal and the
//! per-tick series there), `profile` prints the controller's hot-phase
//! timing spans plus the fleet's causal span tree (`--tenants N` picks
//! the fleet point, default 256), and `obs` dumps the fleet's
//! deterministic metrics registry, per-tenant latency percentiles, and
//! exporter output.
//!
//! Every command runs on the deterministic worker pool of `nfv-parallel`:
//! `--threads T` caps the pool (default: all available cores) and cannot
//! change any number in the output, only how fast it appears. `all`
//! additionally fans the figures themselves out across the pool and prints
//! the buffered outputs in command order. `bench` times every figure at
//! one thread and at the configured count and writes the wall-clock
//! comparison to `BENCH_pipeline.json`.

use std::env;
use std::fmt::Write as _;
use std::io::BufWriter;
use std::process::ExitCode;
use std::time::Instant;

use nfv_bench::{
    scaled_reps, BenchReport, FigureTiming, FleetPointBench, ObsBench, RecoveryBench, ReplayReport,
    SearchReport, TelemetryReport,
};
use nfv_controller::{Controller, ControllerConfig};
use nfv_core::experiments::{
    anytime, chaos, churn, fleet, joint, placement, replay, resilience, scheduling, validation,
    Sweep,
};
use nfv_core::CoreError;
use nfv_metrics::{enhancement_ratio, Table};
use nfv_parallel::{available_threads, default_threads, par_map_indexed, set_default_threads};
use nfv_placement::{Bfd, Bfdsu, Ffd, Placer};
use nfv_scheduling::{Cga, KkForward, Rckk, RoundRobin, Scheduler};
use nfv_search::SearchConfig;
use nfv_telemetry::{CsvSink, EventKind, JsonlSink, Telemetry, TraceEvent};
use rand::SeedableRng;

struct Options {
    command: String,
    reps_placement: u64,
    reps_scheduling: u64,
    seed: u64,
    csv_dir: Option<std::path::PathBuf>,
    threads: Option<usize>,
    tenants: usize,
}

fn parse_args() -> Result<Options, String> {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() {
        return Err(usage());
    }
    let mut options = Options {
        command: args[0].clone(),
        reps_placement: 10,
        reps_scheduling: 200,
        seed: 42,
        csv_dir: None,
        threads: None,
        tenants: 256,
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--reps" => {
                let value: u64 = args
                    .get(i + 1)
                    .ok_or("--reps needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --reps: {e}"))?;
                options.reps_placement = value;
                options.reps_scheduling = value;
                i += 2;
            }
            "--seed" => {
                options.seed = args
                    .get(i + 1)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --seed: {e}"))?;
                i += 2;
            }
            "--csv" => {
                options.csv_dir = Some(args.get(i + 1).ok_or("--csv needs a directory")?.into());
                i += 2;
            }
            "--threads" => {
                let value: usize = args
                    .get(i + 1)
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --threads: {e}"))?;
                if value == 0 {
                    return Err("--threads must be at least 1".to_owned());
                }
                options.threads = Some(value);
                i += 2;
            }
            "--tenants" => {
                let value: usize = args
                    .get(i + 1)
                    .ok_or("--tenants needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --tenants: {e}"))?;
                if value == 0 {
                    return Err("--tenants must be at least 1".to_owned());
                }
                options.tenants = value;
                i += 2;
            }
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
    }
    Ok(options)
}

fn usage() -> String {
    "usage: figures <fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|tail|fig15|fig16|headline|online|quality|anytime|joint|churn|resilience|fleet|chaos|validate|ablation|trace|profile|obs|all|bench> [--reps N] [--seed S] [--csv DIR] [--threads T] [--tenants N]".to_owned()
}

/// The `all` command list: the paper figures in paper order, then the
/// observability commands. `ci.sh` asserts this list matches the
/// dispatch table below.
const ALL_COMMANDS: [&str; 27] = [
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "tail",
    "fig15",
    "fig16",
    "headline",
    "online",
    "quality",
    "anytime",
    "joint",
    "churn",
    "resilience",
    "fleet",
    "chaos",
    "validate",
    "ablation",
    "trace",
    "profile",
    "obs",
];

/// Directory for CSV output, set once from the CLI before dispatch.
static CSV_DIR: std::sync::OnceLock<std::path::PathBuf> = std::sync::OnceLock::new();

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(threads) = options.threads {
        set_default_threads(threads);
    }
    // The chaos figure and the recovery bench inject shard-worker panics
    // that the supervised drain catches and repairs; the default hook
    // would still print a backtrace per injection. Silence exactly those
    // and delegate everything else untouched.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected shard-worker panic"));
        if !injected {
            default_hook(info);
        }
    }));
    if let Some(dir) = &options.csv_dir {
        if let Err(err) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create csv directory {}: {err}", dir.display());
            return ExitCode::FAILURE;
        }
        let _ = CSV_DIR.set(dir.clone());
    }
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

fn run(options: &Options) -> Result<(), CoreError> {
    if options.command == "bench" {
        return run_bench(options);
    }
    if options.command != "all" {
        let output = dispatch(&options.command, options)?;
        print!("{output}");
        println!();
        return Ok(());
    }
    // `all`: fan the figures themselves out over the pool. Each figure's
    // inner sweeps then run with `threads / outer` workers so the total
    // stays at the configured count; outputs are buffered and printed in
    // command order, so the rendering is identical to a serial run.
    let threads = default_threads();
    let outer = threads.min(ALL_COMMANDS.len()).max(1);
    set_default_threads((threads / outer).max(1));
    let outputs = par_map_indexed(outer, ALL_COMMANDS.to_vec(), |_, command| {
        dispatch(command, options)
    });
    set_default_threads(threads);
    for output in outputs.map_err(CoreError::from)? {
        print!("{}", output?);
        println!();
    }
    Ok(())
}

/// Times every figure once at one thread and — when the host actually has
/// more than one worker — once at the configured count, then writes
/// `BENCH_pipeline.json` with the wall-clock per figure. On a single-core
/// host the parallel pass is skipped and recorded as `null`: re-running
/// the same serial workload and labelling it "parallel" would fabricate a
/// speedup of exactly 1.0 from two identical runs.
fn run_bench(options: &Options) -> Result<(), CoreError> {
    let threads = options.threads.unwrap_or_else(available_threads);
    let mut serial = Vec::with_capacity(ALL_COMMANDS.len());
    set_default_threads(1);
    for command in ALL_COMMANDS {
        let started = Instant::now();
        dispatch(command, options)?;
        let seconds = started.elapsed().as_secs_f64();
        println!("bench: {command} at 1 thread: {seconds:.3}s");
        serial.push(seconds);
    }
    let parallel = if threads > 1 {
        let mut timings = Vec::with_capacity(ALL_COMMANDS.len());
        set_default_threads(threads);
        for command in ALL_COMMANDS {
            let started = Instant::now();
            dispatch(command, options)?;
            let seconds = started.elapsed().as_secs_f64();
            println!("bench: {command} at {threads} threads: {seconds:.3}s");
            timings.push(seconds);
        }
        Some(timings)
    } else {
        println!(
            "bench: only one worker available ({} host cores); skipping the parallel pass",
            available_threads()
        );
        None
    };
    set_default_threads(0);

    // Telemetry overhead: the same single-threaded churn replay through
    // the plain entry point, the traced entry point with a disabled
    // session, and an enabled session. One churn replay takes tens of
    // milliseconds — far too short for a percentage comparison, where
    // scheduler noise at that scale swamps a single-digit overhead — so
    // the workload is repeated back to back until one measurement spans
    // at least MEASUREMENT_FLOOR seconds. Min-of-N over those scaled
    // measurements, so the numbers are noise floors rather than
    // averages; the disabled overhead is the price every un-instrumented
    // caller pays for the telemetry layer existing at all, and ci.sh
    // gates it.
    let (scenario, trace) = churn::setup(&churn::ChurnPoint::base(), options.seed)?;
    const OVERHEAD_RUNS: u32 = 7;
    const MEASUREMENT_FLOOR: f64 = 0.25;
    // Probe with a min-of-3 so the rep count is sized from steady-state
    // speed: a single cold probe over-estimates the replay cost and the
    // scaled min-of-N then lands just *under* the floor.
    let one_replay = min_seconds(3, || {
        let mut controller = Controller::new(&scenario, ControllerConfig::periodic_reopt());
        let _ = controller.run_trace(&trace);
    });
    // Cap the auto-scaling: a spuriously ~0s probe must not schedule
    // hundreds of millions of repetitions (`scaled_reps` also clamps
    // the probe itself at 100 µs).
    const MAX_REPLAY_REPS: u64 = 100_000;
    let replay_reps = scaled_reps(MEASUREMENT_FLOOR, one_replay, MAX_REPLAY_REPS);
    let replay_plain = min_seconds(OVERHEAD_RUNS, || {
        for _ in 0..replay_reps {
            let mut controller = Controller::new(&scenario, ControllerConfig::periodic_reopt());
            let _ = controller.run_trace(&trace);
        }
    });
    let replay_disabled = min_seconds(OVERHEAD_RUNS, || {
        for _ in 0..replay_reps {
            let mut controller = Controller::new(&scenario, ControllerConfig::periodic_reopt());
            let _ = controller.run_trace_traced(&trace, &mut Telemetry::disabled());
        }
    });
    let replay_enabled = min_seconds(OVERHEAD_RUNS, || {
        for _ in 0..replay_reps {
            let mut controller = Controller::new(&scenario, ControllerConfig::periodic_reopt());
            let mut tel = Telemetry::enabled();
            let _ = controller.run_trace_traced(&trace, &mut tel);
            let _ = tel.finish();
        }
    });
    let overhead_pct = |with: f64| (with - replay_plain) / replay_plain * 100.0;
    println!(
        "bench: telemetry replay ({replay_reps} reps/measurement) {replay_plain:.3}s plain, \
         {replay_disabled:.3}s disabled ({:+.2}%), {replay_enabled:.3}s enabled ({:+.2}%), \
         min of {OVERHEAD_RUNS}",
        overhead_pct(replay_disabled),
        overhead_pct(replay_enabled),
    );

    // Replay-engine throughput: the streamed million-event trace through
    // the exact per-event path and the batched path, single-threaded.
    // ci.sh gates events_per_second against the committed figure.
    let replay_throughput = replay::measure(&replay::ReplayPoint::million(), options.seed, 3)?;
    println!(
        "bench: replay {} events / {:.0}s virtual: {:.3}s streamed ({:.0} ev/s), \
         {:.3}s batched ({:.0} ev/s); {} admitted, {} rejected",
        replay_throughput.events,
        replay_throughput.horizon,
        replay_throughput.streamed_seconds,
        replay_throughput.streamed_events_per_second(),
        replay_throughput.batched_seconds,
        replay_throughput.events_per_second(),
        replay_throughput.admitted,
        replay_throughput.rejected,
    );

    // Fleet throughput: the sharded multi-tenant loop at 8/64/256
    // tenants, timed at the configured thread count — the parallel drain
    // phase is the whole point of the fleet. Events, migrations and
    // rebalance latency are virtual-clock counters (identical at any
    // thread count); only the wall-clock varies. ci.sh gates the largest
    // point's events/sec against the committed figure.
    set_default_threads(threads);
    let mut fleet_points = Vec::new();
    for (tenants, shards) in fleet::fleet_sizes() {
        let outcome = fleet::run_fleet_point(tenants, shards, options.seed).map_err(|_| {
            CoreError::Inconsistent {
                reason: "fleet bench point failed",
            }
        })?;
        let seconds = min_seconds(3, || {
            let _ = fleet::run_fleet_point(tenants, shards, options.seed);
        });
        let report = &outcome.report;
        let events_per_second = report.events as f64 / seconds.max(1e-9);
        println!(
            "bench: fleet {tenants} tenants / {shards} shards at {threads} threads: \
             {} events in {seconds:.3}s ({events_per_second:.0} ev/s), \
             {} migrations carrying {} requests, {:.1}s mean rebalance latency",
            report.events, report.migrations, report.migration_cost, report.mean_rebalance_latency,
        );
        fleet_points.push(FleetPointBench {
            tenants: tenants as u64,
            shards: shards as u64,
            events: report.events,
            seconds,
            events_per_second,
            migrations: report.migrations,
            migration_cost: report.migration_cost,
            mean_rebalance_latency_seconds: report.mean_rebalance_latency,
        });
    }

    // Recovery throughput: the chaos fleet point undisturbed vs disturbed
    // by a seeded plan of recoverable faults with checkpoint/restore +
    // replay repairing the damage. The counters and the byte-identity
    // verdict are deterministic; the wall-clock pair prices the recovery
    // machinery. ci.sh gates the faulted throughput relative to the
    // undisturbed run.
    const RECOVERY_FAULT_RATE: f64 = 0.3;
    let recovery_spec = chaos::chaos_spec(options.seed);
    let recovery_plan = nfv_fleet::FaultPlan::seeded(
        options.seed,
        recovery_spec.epochs() as usize,
        recovery_spec.shards,
        recovery_spec.tenants as u32,
        &nfv_fleet::FaultRates::recoverable(RECOVERY_FAULT_RATE),
    );
    let undisturbed = nfv_fleet::run(&recovery_spec).map_err(|_| CoreError::Inconsistent {
        reason: "recovery bench baseline failed",
    })?;
    let faulted = nfv_fleet::run_with_faults(&recovery_spec, &recovery_plan).map_err(|_| {
        CoreError::Inconsistent {
            reason: "recovery bench faulted run failed",
        }
    })?;
    let byte_identical = faulted.report == undisturbed.report
        && faulted.epoch_records == undisturbed.epoch_records
        && faulted.tenant_reports == undisturbed.tenant_reports
        && faulted.artifacts.journal_jsonl() == undisturbed.artifacts.journal_jsonl();
    let undisturbed_seconds = min_seconds(3, || {
        let _ = nfv_fleet::run(&recovery_spec);
    });
    let faulted_seconds = min_seconds(3, || {
        let _ = nfv_fleet::run_with_faults(&recovery_spec, &recovery_plan);
    });
    let recovery = &faulted.recovery;
    let tenant_epochs = (faulted.report.tenants as u64 * faulted.report.epochs).max(1);
    let disturbed =
        (recovery.shard_restores + recovery.tenant_restores + recovery.tenants_quarantined)
            .min(tenant_epochs);
    let recovery_bench = RecoveryBench {
        fault_rate: RECOVERY_FAULT_RATE,
        faults_injected: recovery.faults_injected,
        checkpoints: recovery.checkpoints,
        restores: recovery.shard_restores + recovery.tenant_restores,
        events_replayed: recovery.events_replayed,
        availability: 1.0 - disturbed as f64 / tenant_epochs as f64,
        byte_identical,
        undisturbed_seconds,
        faulted_seconds,
        faulted_events_per_second: faulted.report.events as f64 / faulted_seconds.max(1e-9),
        recovery_overhead_pct: (faulted_seconds - undisturbed_seconds)
            / undisturbed_seconds.max(1e-9)
            * 100.0,
    };
    println!(
        "bench: recovery at fault rate {RECOVERY_FAULT_RATE}: {} faults fired, {} restores, \
         {} events replayed, byte-identical: {}; {undisturbed_seconds:.3}s undisturbed vs \
         {faulted_seconds:.3}s faulted ({:.0} ev/s, {:+.1}% overhead)",
        recovery_bench.faults_injected,
        recovery_bench.restores,
        recovery_bench.events_replayed,
        byte_identical,
        recovery_bench.faulted_events_per_second,
        recovery_bench.recovery_overhead_pct,
    );

    // Observability overhead: the largest fleet point with the plane off
    // (plain) and on — spans, registry, percentiles, flight recorder.
    // One fleet run is milliseconds, so runs are repeated back to back
    // until a batch clears the floor. Unlike the telemetry section, the
    // two batches alternate and the overhead is the *median* of the
    // per-round enabled/plain ratios: on a busy host the load drifts
    // between two separated min-of-N sweeps and the ratio of their mins
    // swings by more than the budget itself, while adjacent batches see
    // the same load and their ratios converge. ci.sh gates the enabled
    // overhead at ≤ 5%.
    const OBS_TENANTS: usize = 256;
    let obs_shards = fleet::shards_for(OBS_TENANTS);
    let obs_outcome = fleet::run_fleet_point_observed(OBS_TENANTS, obs_shards, options.seed, true)
        .map_err(|_| CoreError::Inconsistent {
            reason: "obs bench point failed",
        })?;
    let one_fleet_run = min_seconds(3, || {
        let _ = fleet::run_fleet_point_observed(OBS_TENANTS, obs_shards, options.seed, false);
    });
    let obs_reps = scaled_reps(MEASUREMENT_FLOOR, one_fleet_run, MAX_REPLAY_REPS);
    // More rounds than the telemetry section's min-of-N: the gate reads
    // a median, whose step-to-step wobble shrinks with round count.
    const OBS_ROUNDS: u32 = 11;
    let mut obs_plain = f64::INFINITY;
    let mut obs_enabled = f64::INFINITY;
    let mut obs_ratios = Vec::with_capacity(OBS_ROUNDS as usize);
    for _ in 0..OBS_ROUNDS {
        let plain = min_seconds(1, || {
            for _ in 0..obs_reps {
                let _ =
                    fleet::run_fleet_point_observed(OBS_TENANTS, obs_shards, options.seed, false);
            }
        });
        let enabled = min_seconds(1, || {
            for _ in 0..obs_reps {
                let _ =
                    fleet::run_fleet_point_observed(OBS_TENANTS, obs_shards, options.seed, true);
            }
        });
        obs_plain = obs_plain.min(plain);
        obs_enabled = obs_enabled.min(enabled);
        obs_ratios.push(enabled / plain.max(1e-9));
    }
    obs_ratios.sort_unstable_by(f64::total_cmp);
    let obs_overhead_pct = (obs_ratios[obs_ratios.len() / 2] - 1.0) * 100.0;
    let obs_events = obs_outcome.report.events;
    let obs_run_events = obs_events as f64 * obs_reps as f64;
    let obs_bench = ObsBench {
        tenants: OBS_TENANTS as u64,
        shards: obs_shards as u64,
        reps: obs_reps,
        events: obs_events,
        plain_seconds: obs_plain,
        enabled_seconds: obs_enabled,
        plain_events_per_second: obs_run_events / obs_plain.max(1e-9),
        enabled_events_per_second: obs_run_events / obs_enabled.max(1e-9),
        enabled_overhead_pct: obs_overhead_pct,
        registry_metrics: obs_outcome.registry.len() as u64,
        slo_violations: obs_outcome.report.slo_violations,
    };
    println!(
        "bench: observability on fleet {OBS_TENANTS}/{obs_shards} ({obs_reps} runs/measurement): \
         {obs_plain:.3}s plain vs {obs_enabled:.3}s enabled ({:+.2}%), {} registry metrics, \
         {} slo violations",
        obs_bench.enabled_overhead_pct, obs_bench.registry_metrics, obs_bench.slo_violations,
    );
    set_default_threads(0);

    // Search throughput: GA generations/second on the anytime Pareto
    // instance (single-threaded, min-of-N), plus the quality delta of the
    // searched placement against BFDSU on the same problem.
    set_default_threads(1);
    let problem = anytime::bench_problem(options.seed)?;
    let search_config = SearchConfig::ga(options.seed);
    const SEARCH_GENERATIONS: usize = 20;
    let search_seconds = min_seconds(OVERHEAD_RUNS, || {
        let _ = nfv_search::search(&problem, &search_config, SEARCH_GENERATIONS);
    });
    let generations_per_second = SEARCH_GENERATIONS as f64 / search_seconds;
    let outcome = nfv_search::search(&problem, &search_config, SEARCH_GENERATIONS)
        .map_err(CoreError::from)?;
    let mut bfdsu_rng = rand::rngs::StdRng::seed_from_u64(options.seed);
    let bfdsu_objective = Bfdsu::new().place(&problem, &mut bfdsu_rng).ok().map(|o| {
        nfv_search::objective(&problem, o.placement().assignment(), &search_config.weights)
    });
    set_default_threads(0);
    let objective_delta = bfdsu_objective.map(|b| outcome.best_fitness() - b);
    println!(
        "bench: search (ga, pop {}) {generations_per_second:.1} generations/s at 1 thread, \
         best objective {:.4} vs bfdsu {} (delta {})",
        search_config.population,
        outcome.best_fitness(),
        fmt_or(bfdsu_objective, "n/a"),
        fmt_or(objective_delta, "n/a"),
    );

    let total_serial: f64 = serial.iter().sum();
    let total_parallel = parallel.as_ref().map(|p| p.iter().sum::<f64>());
    let report = BenchReport {
        host_threads: available_threads() as u64,
        bench_threads: threads as u64,
        reps_placement: options.reps_placement,
        reps_scheduling: options.reps_scheduling,
        seed: options.seed,
        search: SearchReport {
            engine: "ga".to_owned(),
            population: search_config.population as u64,
            generations: SEARCH_GENERATIONS as u64,
            generations_per_second,
            best_objective: outcome.best_fitness(),
            bfdsu_objective,
            objective_delta_vs_bfdsu: objective_delta,
        },
        telemetry: TelemetryReport {
            replay_reps,
            measurement_floor_seconds: MEASUREMENT_FLOOR,
            replay_plain_seconds: replay_plain,
            replay_disabled_seconds: replay_disabled,
            replay_enabled_seconds: replay_enabled,
            disabled_overhead_pct: overhead_pct(replay_disabled),
            enabled_overhead_pct: overhead_pct(replay_enabled),
        },
        replay: ReplayReport {
            events: replay_throughput.events,
            horizon_seconds: replay_throughput.horizon,
            streamed_seconds: replay_throughput.streamed_seconds,
            batched_seconds: replay_throughput.batched_seconds,
            streamed_events_per_second: replay_throughput.streamed_events_per_second(),
            events_per_second: replay_throughput.events_per_second(),
            admitted: replay_throughput.admitted,
            rejected: replay_throughput.rejected,
        },
        fleet: fleet_points,
        recovery: recovery_bench,
        obs: obs_bench,
        figures: ALL_COMMANDS
            .iter()
            .enumerate()
            .map(|(i, command)| FigureTiming {
                name: (*command).to_owned(),
                serial_seconds: serial[i],
                parallel_seconds: parallel.as_ref().map(|p| p[i]),
            })
            .collect(),
        total_serial_seconds: total_serial,
        total_parallel_seconds: total_parallel,
    };
    std::fs::write("BENCH_pipeline.json", report.to_json()).map_err(|_| {
        CoreError::Inconsistent {
            reason: "cannot write BENCH_pipeline.json",
        }
    })?;
    match total_parallel {
        Some(total_parallel) => println!(
            "bench: total {total_serial:.3}s at 1 thread, {total_parallel:.3}s at {threads} \
             threads ({} host cores); written to BENCH_pipeline.json",
            available_threads()
        ),
        None => println!(
            "bench: total {total_serial:.3}s at 1 thread, parallel pass skipped \
             ({} host cores); written to BENCH_pipeline.json",
            available_threads()
        ),
    }
    Ok(())
}

/// `value` with four decimals, or `fallback` when absent.
fn fmt_or(value: Option<f64>, fallback: &str) -> String {
    value.map_or_else(|| fallback.to_owned(), |v| format!("{v:.4}"))
}

/// The fastest of `runs` executions of `f`, in seconds. Minima converge
/// on the true cost of the code path; means smear scheduler noise in.
fn min_seconds<F: FnMut()>(runs: u32, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let started = Instant::now();
        f();
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}

fn dispatch(command: &str, options: &Options) -> Result<String, CoreError> {
    let (rp, rs, seed) = (
        options.reps_placement,
        options.reps_scheduling,
        options.seed,
    );
    let mut out = String::new();
    match command {
        "fig5" => print_sweep(
            &mut out,
            "Fig. 5 - average resource utilization (%) of 10 nodes vs #requests",
            &placement::fig5_utilization_vs_requests(rp, seed)?,
            2,
            Some(("bfdsu", "nah", "utilization")),
        ),
        "fig6" => print_sweep(
            &mut out,
            "Fig. 6 - average utilization (%) of used nodes, 1000 requests, scaling VNFs 6-30 with nodes 4-20",
            &placement::fig6_utilization_vs_scale(rp, seed)?,
            2,
            Some(("bfdsu", "nah", "utilization")),
        ),
        "fig7" => print_sweep(
            &mut out,
            "Fig. 7 - average utilization (%) placing 15 VNFs vs #nodes",
            &placement::fig7_utilization_vs_nodes(rp, seed)?,
            2,
            Some(("bfdsu", "nah", "utilization")),
        ),
        "fig8" => print_sweep(
            &mut out,
            "Fig. 8 - average number of nodes in service placing 15 VNFs",
            &placement::fig8_nodes_in_service(rp, seed)?,
            2,
            None,
        ),
        "fig9" => print_sweep(
            &mut out,
            "Fig. 9 - average resource occupation (units) placing 15 VNFs",
            &placement::fig9_resource_occupation(rp, seed)?,
            0,
            None,
        ),
        "fig10" => print_sweep(
            &mut out,
            "Fig. 10 - executions until first feasible solution (tight capacities)",
            &placement::fig10_iterations_vs_requests(rp, seed)?,
            2,
            None,
        ),
        "fig11" => print_sweep(
            &mut out,
            "Fig. 11 - average response time W (s), 5 instances, P = 0.98",
            &scheduling::fig11_12_response_vs_requests(0.98, rs, seed)?,
            6,
            None,
        ),
        "fig12" => print_sweep(
            &mut out,
            "Fig. 12 - average response time W (s), 5 instances, P = 1.00",
            &scheduling::fig11_12_response_vs_requests(1.0, rs, seed)?,
            6,
            None,
        ),
        "fig13" => print_sweep(
            &mut out,
            "Fig. 13 - average response time W (s), 50 requests, instances 2-10, P = 0.98",
            &scheduling::fig13_14_response_vs_instances(0.98, rs, seed)?,
            6,
            None,
        ),
        "fig14" => print_sweep(
            &mut out,
            "Fig. 14 - average response time W (s), 50 requests, instances 2-10, P = 1.00",
            &scheduling::fig13_14_response_vs_instances(1.0, rs, seed)?,
            6,
            None,
        ),
        "tail" => print_sweep(
            &mut out,
            "Tail (Sec. V-C) - 99th-percentile of per-run W (s), 5 instances, P = 0.98",
            &scheduling::tail_p99_vs_requests(rs, seed)?,
            6,
            None,
        ),
        "fig15" => print_sweep(
            &mut out,
            "Fig. 15 - average job rejection rate (%), P = 0.997",
            &scheduling::fig15_16_rejection_vs_requests(0.997, rs, seed)?,
            3,
            None,
        ),
        "fig16" => print_sweep(
            &mut out,
            "Fig. 16 - average job rejection rate (%), P = 0.984",
            &scheduling::fig15_16_rejection_vs_requests(0.984, rs, seed)?,
            3,
            None,
        ),
        "joint" => print_joint(&mut out, rp, seed)?,
        "headline" => print_headline(&mut out, rs, seed)?,
        "quality" => print_sweep(
            &mut out,
            "Quality extension - nodes used / optimal nodes (exact oracle, small instances)",
            &placement::quality_vs_oracle(rp, seed)?,
            3,
            None,
        ),
        "online" => print_sweep(
            &mut out,
            "Online extension - price of one-at-a-time arrival vs offline RCKK (P = 0.98)",
            &scheduling::online_price_vs_requests(rs, seed)?,
            6,
            None,
        ),
        "anytime" => print_anytime(&mut out, rp, seed)?,
        "churn" => print_churn(&mut out, seed)?,
        "resilience" => print_resilience(&mut out, seed)?,
        "fleet" => print_fleet(&mut out, seed)?,
        "chaos" => print_chaos(&mut out, seed)?,
        "trace" => print_trace(&mut out, seed)?,
        "profile" => print_profile(&mut out, options)?,
        "obs" => print_obs(&mut out, options)?,
        "validate" => print_validation(&mut out, seed)?,
        "ablation" => print_ablation(&mut out, rp, rs, seed)?,
        other => {
            let _ = writeln!(out, "unknown command `{other}`");
            let _ = writeln!(out, "{}", usage());
        }
    }
    Ok(out)
}

fn print_sweep(
    out: &mut String,
    title: &str,
    sweep: &Sweep,
    precision: usize,
    gain: Option<(&str, &str, &str)>,
) {
    let _ = writeln!(out, "== {title} ==");
    let _ = write!(out, "{}", sweep.to_table(precision));
    if let Some(dir) = CSV_DIR.get() {
        let name: String = title
            .split(" - ")
            .next()
            .unwrap_or("sweep")
            .chars()
            .filter(|c| c.is_alphanumeric())
            .collect::<String>()
            .to_lowercase();
        let path = dir.join(format!("{name}.csv"));
        match std::fs::write(&path, sweep.to_csv()) {
            Ok(()) => {
                let _ = writeln!(out, "csv written to {}", path.display());
            }
            Err(err) => eprintln!("csv write failed: {err}"),
        }
    }
    if let Some((ours, baseline, metric)) = gain {
        if let (Some(a), Some(b)) = (sweep.series_mean(ours), sweep.series_mean(baseline)) {
            if b > 0.0 {
                let _ = writeln!(
                    out,
                    "shape check: {ours} improves mean {metric} over {baseline} by {:.1}%",
                    (a - b) / b * 100.0
                );
            }
        }
    }
    if let (Some(rckk), Some(cga)) = (sweep.series_mean("rckk"), sweep.series_mean("cga")) {
        if cga > 0.0 {
            let _ = writeln!(
                out,
                "shape check: rckk improves mean over cga by {:.1}%",
                enhancement_ratio(cga, rckk) * 100.0
            );
        }
    }
}

fn print_joint(out: &mut String, reps: u64, seed: u64) -> Result<(), CoreError> {
    let _ = writeln!(
        out,
        "== Joint pipeline (Eq. 16) - avg total latency per request =="
    );
    let stats = joint::run_comparison(&joint::JointConfig::base(), reps, seed)?;
    let mut table = Table::new(vec![
        "pipeline",
        "total(s)",
        "response(s)",
        "link(s)",
        "nodes",
        "util%",
        "failures",
    ]);
    for s in &stats {
        table.row(vec![
            s.name.clone(),
            format!("{:.6}", s.avg_total_latency),
            format!("{:.6}", s.avg_response_latency),
            format!("{:.6}", s.avg_link_latency),
            format!("{:.2}", s.avg_nodes_in_service),
            format!("{:.2}", s.avg_utilization * 100.0),
            s.failures.to_string(),
        ]);
    }
    let _ = write!(out, "{table}");
    let ours = stats.iter().find(|s| s.name == "bfdsu+rckk");
    let base = stats.iter().find(|s| s.name == "ffd+cga");
    if let (Some(ours), Some(base)) = (ours, base) {
        let _ = writeln!(
            out,
            "shape check: bfdsu+rckk vs ffd+cga - total latency {:.1}% lower, link latency {:.1}% lower, {:.1} fewer nodes",
            enhancement_ratio(base.avg_total_latency, ours.avg_total_latency) * 100.0,
            enhancement_ratio(base.avg_link_latency, ours.avg_link_latency) * 100.0,
            base.avg_nodes_in_service - ours.avg_nodes_in_service
        );
        let _ = writeln!(
            out,
            "note: μ_f is scaled to each VNF's own load, so the response part is dominated by the\n\
             shared base queueing delay; the paper's 19.9% headline is the per-instance scheduling\n\
             improvement — see `figures headline`"
        );
    }
    Ok(())
}

fn print_headline(out: &mut String, reps: u64, seed: u64) -> Result<(), CoreError> {
    let _ = writeln!(
        out,
        "== Headline - RCKK's mean response-time enhancement over CGA (paper: 19.9%) =="
    );
    // The paper's 19.9% averages RCKK's improvement across its W
    // experiments; aggregate the same four sweeps.
    let sweeps = [
        (
            "fig11 (P=0.98, req sweep)",
            scheduling::fig11_12_response_vs_requests(0.98, reps, seed)?,
        ),
        (
            "fig12 (P=1.00, req sweep)",
            scheduling::fig11_12_response_vs_requests(1.0, reps, seed)?,
        ),
        (
            "fig13 (P=0.98, inst sweep)",
            scheduling::fig13_14_response_vs_instances(0.98, reps, seed)?,
        ),
        (
            "fig14 (P=1.00, inst sweep)",
            scheduling::fig13_14_response_vs_instances(1.0, reps, seed)?,
        ),
    ];
    let mut table = Table::new(vec!["sweep", "mean enhancement%"]);
    let mut overall = 0.0;
    for (name, sweep) in &sweeps {
        let mean = sweep.series_mean("enhancement%").unwrap_or(0.0);
        overall += mean;
        table.row(vec![(*name).to_owned(), format!("{mean:.1}")]);
    }
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "overall mean: {:.1}% (paper: 19.9%)",
        overall / sweeps.len() as f64
    );
    Ok(())
}

/// `figures anytime`: the metaheuristic search evaluation — the
/// quality-vs-generations Pareto front against the greedy placers, the
/// exact-oracle match on small instances, and the background-refiner
/// churn replay.
fn print_anytime(out: &mut String, reps: u64, seed: u64) -> Result<(), CoreError> {
    let front = anytime::quality_vs_generations(reps, seed)?;
    print_sweep(
        out,
        "Anytime search - mean nodes in service vs GA/PSO generations (greedy placers constant)",
        &front,
        2,
        None,
    );
    let best_greedy = ["bfdsu", "ffd", "nah"]
        .iter()
        .filter_map(|name| front.series_values(name))
        .filter_map(|values| values.first().copied())
        .fold(f64::INFINITY, f64::min);
    if let Some(ga) = front.series_values("ga") {
        let crossover = anytime::GENERATION_CHECKPOINTS
            .iter()
            .zip(&ga)
            .find(|(_, &nodes)| nodes <= best_greedy + 1e-9);
        let _ = match crossover {
            Some((generation, _)) => writeln!(
                out,
                "shape check: GA matches the best greedy placer ({best_greedy:.2} nodes) \
                 by generation {generation}, ending at {:.2}",
                ga.last().copied().unwrap_or(f64::NAN)
            ),
            None => writeln!(
                out,
                "shape check: GA never reaches the best greedy placer ({best_greedy:.2} nodes) \
                 within {} generations",
                anytime::GENERATION_CHECKPOINTS.last().copied().unwrap_or(0)
            ),
        };
    }
    let _ = writeln!(out);
    print_sweep(
        out,
        &format!(
            "Anytime search - nodes used / optimal nodes after {} generations (exact oracle)",
            anytime::ORACLE_GENERATIONS
        ),
        &anytime::oracle_ratio(reps, seed)?,
        3,
        None,
    );

    let point = churn::ChurnPoint::base();
    let _ = writeln!(
        out,
        "== Refiner - churn replay with the background searcher \
         ({:.0}s trace, ticks every {:.0}s) ==",
        point.horizon, point.tick_period
    );
    let comparison = anytime::refiner_replay(seed)?;
    let _ = write!(out, "{}", comparison.to_table());
    let baseline = &comparison.outcome("resilient").expect("policy ran").report;
    let refined = &comparison.outcome("refined").expect("policy ran").report;
    let _ = writeln!(
        out,
        "shape check: the refiner commits {} searched plans ({} rejected by hysteresis) \
         and changes mean W by {:+.2}% vs the refiner-free resilient policy",
        refined.refines_applied,
        refined.refines_rejected,
        (refined.mean_latency - baseline.mean_latency) / baseline.mean_latency * 100.0,
    );
    Ok(())
}

fn print_churn(out: &mut String, seed: u64) -> Result<(), CoreError> {
    let point = churn::ChurnPoint::base();
    let _ = writeln!(
        out,
        "== Churn - online control plane over a {:.0}s trace ({} base requests, \
         {:.1}/s churn arrivals, ticks every {:.0}s) ==",
        point.horizon, point.base_requests, point.arrival_rate, point.tick_period
    );
    let comparison = churn::run(&point, seed)?;
    let _ = write!(out, "{}", comparison.to_table());
    let online = &comparison
        .outcome("online-only")
        .expect("policy ran")
        .report;
    let reopt = &comparison
        .outcome("periodic-reopt")
        .expect("policy ran")
        .report;
    let oracle = &comparison
        .outcome("offline-oracle")
        .expect("policy ran")
        .report;
    let _ = writeln!(
        out,
        "shape check: periodic-reopt cuts mean W by {:.1}% vs online-only \
         with {:.1}% of the oracle's migrations",
        (online.mean_latency - reopt.mean_latency) / online.mean_latency * 100.0,
        reopt.migrated() as f64 / oracle.migrated() as f64 * 100.0,
    );

    // At ~3x the frozen fleet's capacity, request scheduling alone cannot
    // help; only the joint policy (bounded BFDSU re-placement) can.
    let point = churn::ChurnPoint::saturated();
    let _ = writeln!(
        out,
        "== Churn (saturated) - offered load ~3x the frozen fleet \
         ({:.1}/s churn arrivals, ticks every {:.0}s, fill {:.2}) ==",
        point.arrival_rate, point.tick_period, point.fill
    );
    let comparison = churn::run(&point, seed)?;
    let _ = write!(out, "{}", comparison.to_table());
    let reopt = &comparison
        .outcome("periodic-reopt")
        .expect("policy ran")
        .report;
    let joint = &comparison
        .outcome("joint-reopt")
        .expect("policy ran")
        .report;
    let _ = writeln!(
        out,
        "shape check: joint-reopt cuts mean W by {:.1}% vs periodic-reopt \
         and rejects {:.1}% vs {:.1}%, using {} instance ops \
         ({} added, {} retired, {} relocated) over {} re-placements",
        (reopt.mean_latency - joint.mean_latency) / reopt.mean_latency * 100.0,
        joint.rejection_rate() * 100.0,
        reopt.rejection_rate() * 100.0,
        joint.instance_ops(),
        joint.instances_added,
        joint.instances_retired,
        joint.relocations,
        joint.replaces_applied,
    );
    Ok(())
}

fn print_resilience(out: &mut String, seed: u64) -> Result<(), CoreError> {
    let point = resilience::ResiliencePoint::base();
    let _ = writeln!(
        out,
        "== Resilience - node failure domains over a {:.0}s trace \
         ({} nodes, MTBF {:.0}s, MTTR {:.0}s, ticks every {:.0}s) ==",
        point.horizon, point.nodes, point.node_mtbf, point.node_mttr, point.tick_period
    );
    let comparison = resilience::run(&point, seed)?;
    let _ = write!(out, "{}", comparison.to_table());
    let worst = comparison
        .outcome("tick-only/no-retry")
        .expect("policy ran");
    let best = comparison.outcome("emergency/retry").expect("policy ran");
    let _ = writeln!(
        out,
        "shape check: emergency/retry holds {:.3}% availability vs {:.3}% \
         tick-only, recovers in {:.2}s vs {:.2}s mean, and loses {} requests \
         vs {} ({} re-admitted by retries)",
        best.availability * 100.0,
        worst.availability * 100.0,
        best.mean_recovery,
        worst.mean_recovery,
        best.report.lost(),
        worst.report.lost(),
        best.report.retry_admitted,
    );

    // Correlated failures: racks of two nodes die together, doubling the
    // blast radius of every outage event.
    let point = resilience::ResiliencePoint::racked();
    let _ = writeln!(
        out,
        "== Resilience (racked) - correlated failure domains of {} nodes ==",
        point.rack_size
    );
    let comparison = resilience::run(&point, seed)?;
    let _ = write!(out, "{}", comparison.to_table());
    let worst = comparison
        .outcome("tick-only/no-retry")
        .expect("policy ran");
    let best = comparison.outcome("emergency/retry").expect("policy ran");
    let _ = writeln!(
        out,
        "shape check: under rack failures emergency/retry loses {} requests \
         vs {} tick-only at {:.3}% vs {:.3}% availability",
        best.report.lost(),
        worst.report.lost(),
        best.availability * 100.0,
        worst.availability * 100.0,
    );
    Ok(())
}

/// `figures trace`: one emergency/retry resilience run under an enabled
/// telemetry session. The outage timeline below is reconstructed from
/// the *serialized* JSONL journal — every line is parsed back through
/// `TraceEvent::from_json` first — so the command also proves the
/// journal round-trips with causality intact.
fn print_trace(out: &mut String, seed: u64) -> Result<(), CoreError> {
    let point = resilience::ResiliencePoint::base();
    let _ = writeln!(
        out,
        "== Trace - emergency/retry journal over a {:.0}s outage trace \
         ({} nodes, MTBF {:.0}s, MTTR {:.0}s, ticks every {:.0}s) ==",
        point.horizon, point.nodes, point.node_mtbf, point.node_mttr, point.tick_period
    );
    let mut tel = Telemetry::enabled();
    if let Some(dir) = CSV_DIR.get() {
        match std::fs::File::create(dir.join("trace_resilience.jsonl")) {
            Ok(file) => tel.add_sink(Box::new(JsonlSink::new(BufWriter::new(file)))),
            Err(err) => eprintln!("jsonl sink failed: {err}"),
        }
        match std::fs::File::create(dir.join("trace_resilience.csv")) {
            Ok(file) => tel.add_sink(Box::new(CsvSink::new(BufWriter::new(file)))),
            Err(err) => eprintln!("csv sink failed: {err}"),
        }
    }
    let outcome = resilience::trace_run(&point, seed, &mut tel)?;
    let artifacts = tel.finish();

    // Re-read the journal from its serialized form: a journal that
    // cannot be parsed back is not a journal.
    let mut events = Vec::with_capacity(artifacts.events.len());
    for line in artifacts.journal_jsonl().lines() {
        events.push(
            TraceEvent::from_json(line).map_err(|_| CoreError::Inconsistent {
                reason: "journal JSONL line failed to round-trip",
            })?,
        );
    }

    let mut counts: Vec<(&'static str, u64)> = Vec::new();
    for event in &events {
        let label = event.kind.label();
        match counts.iter_mut().find(|(name, _)| *name == label) {
            Some((_, n)) => *n += 1,
            None => counts.push((label, 1)),
        }
    }
    let mut table = Table::new(vec!["event", "count"]);
    for (label, n) in &counts {
        table.row(vec![(*label).to_string(), n.to_string()]);
    }
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "{} events journaled ({} dropped by the ring), {} tick samples; \
         availability {:.3}% over {} outage episodes, mean recovery {:.2}s",
        events.len(),
        artifacts.dropped_events,
        artifacts.series.len(),
        outcome.availability * 100.0,
        outcome.episodes,
        outcome.mean_recovery,
    );

    // One outage episode end to end: the NodeDown record, its
    // consequences, and the NodeUp that closes it. Prefer an episode
    // that actually shed requests so the full ladder
    // (down -> shed -> retry -> emergency re-placement -> up) shows.
    let Some(down_at) = events
        .iter()
        .position(|e| matches!(&e.kind, EventKind::NodeDown { shed, .. } if *shed > 0))
        .or_else(|| {
            events
                .iter()
                .position(|e| matches!(e.kind, EventKind::NodeDown { .. }))
        })
    else {
        let _ = writeln!(out, "no node outage in this trace; try another --seed");
        return Ok(());
    };
    let node = match &events[down_at].kind {
        EventKind::NodeDown { node, .. } => *node,
        _ => unreachable!("position() found a NodeDown"),
    };
    let up_at = events[down_at..]
        .iter()
        .position(|e| matches!(&e.kind, EventKind::NodeUp { node: n, .. } if *n == node))
        .map(|offset| down_at + offset);
    let _ = writeln!(
        out,
        "episode: node {node}, t={:.1}s to {}",
        events[down_at].time,
        up_at.map_or_else(
            || "the horizon (no recovery before the trace ended)".to_owned(),
            |i| format!("t={:.1}s", events[i].time)
        ),
    );
    let end = up_at.unwrap_or(events.len() - 1);
    const EPISODE_LINES: usize = 30;
    let mut shown = 0usize;
    let mut elided = 0usize;
    for event in &events[down_at..=end] {
        let Some(line) = timeline_line(event) else {
            continue;
        };
        if shown < EPISODE_LINES {
            let _ = writeln!(out, "  [{:>9.3}s] {line}", event.time);
            shown += 1;
        } else {
            elided += 1;
        }
    }
    if elided > 0 {
        let _ = writeln!(
            out,
            "  ... {elided} more episode records (see the JSONL journal)"
        );
    }

    // Causality check over the reconstructed slice: everything the
    // outage caused sits between its NodeDown and NodeUp records.
    let episode = &events[down_at..=end];
    let sheds = episode
        .iter()
        .filter(|e| matches!(&e.kind, EventKind::Shed { .. }))
        .count();
    let retries = episode
        .iter()
        .filter(|e| matches!(&e.kind, EventKind::RetryScheduled { .. }))
        .count();
    // Sheds are re-admitted by later retries, often only after the node
    // returns; follow the shed ids through the rest of the journal.
    let shed_ids: Vec<_> = episode
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Shed { request, .. } => Some(*request),
            _ => None,
        })
        .collect();
    let readmits = events[down_at..]
        .iter()
        .filter(
            |e| matches!(&e.kind, EventKind::RetryAdmitted { request, .. } if shed_ids.contains(request)),
        )
        .count();
    let replace = episode
        .iter()
        .find(|e| matches!(&e.kind, EventKind::EmergencyReplace { node: n, .. } if *n == node));
    let _ = writeln!(
        out,
        "shape check: NodeDown -> {sheds} shed -> {retries} retries queued -> {} -> {} -> \
         {readmits}/{sheds} shed requests re-admitted by retries",
        replace.map_or_else(
            || "no emergency re-placement".to_owned(),
            |e| format!("emergency re-placement at t={:.1}s", e.time)
        ),
        if up_at.is_some() { "NodeUp" } else { "horizon" },
    );

    if let Some(dir) = CSV_DIR.get() {
        let series_path = dir.join("trace_series.csv");
        match std::fs::write(&series_path, artifacts.series.to_csv()) {
            Ok(()) => {
                let _ = writeln!(
                    out,
                    "journal written to {} (jsonl) and {} (csv), per-tick series to {}",
                    dir.join("trace_resilience.jsonl").display(),
                    dir.join("trace_resilience.csv").display(),
                    series_path.display()
                );
            }
            Err(err) => eprintln!("series csv write failed: {err}"),
        }
    }
    Ok(())
}

/// A human-readable timeline line for the journal records that belong to
/// an outage episode; `None` for background traffic (plain admits,
/// rejects and tick records keep flowing during an outage).
fn timeline_line(event: &TraceEvent) -> Option<String> {
    Some(match &event.kind {
        EventKind::NodeDown {
            node,
            vnfs_lost,
            shed,
        } => format!(
            "node {node} went dark: {vnfs_lost} vnfs lost all instances, {shed} requests to shed"
        ),
        EventKind::Shed { request, cause } => format!("shed request {request} ({cause})"),
        EventKind::RetryScheduled {
            request,
            attempt,
            due,
        } => format!("retry #{attempt} of request {request} queued, due t={due:.1}s"),
        EventKind::RetryAdmitted { request, attempt } => {
            format!("retry #{attempt} of request {request} re-admitted")
        }
        EventKind::RetryAbandoned { request, cause } => {
            format!("request {request} abandoned ({cause})")
        }
        EventKind::EmergencyReplace {
            node,
            instances_added,
            relocations,
        } => format!(
            "emergency re-placement after node {node}: {instances_added} instances added, \
             {relocations} vnfs relocated"
        ),
        EventKind::InstanceDown {
            vnf,
            slot,
            migrated,
            shed,
        } => format!("instance {vnf}/{slot} down: {migrated} migrated, {shed} shed"),
        EventKind::InstanceUp { vnf, slot } => format!("instance {vnf}/{slot} back up"),
        EventKind::NodeUp {
            node,
            vnfs_restored,
        } => format!("node {node} restored: {vnfs_restored} vnfs dispatchable again"),
        _ => return None,
    })
}

/// `figures profile`: the controller's hot-phase wall-clock spans from
/// one instrumented resilience comparison (all four policies, so every
/// phase fires at least once), followed by the fleet's causal span tree
/// at the `--tenants` point — run → epoch → phase attribution with a
/// per-parent `(other)` residual, so every epoch's children sum exactly
/// to its measured wall-clock time.
fn print_profile(out: &mut String, options: &Options) -> Result<(), CoreError> {
    let seed = options.seed;
    let point = resilience::ResiliencePoint::base();
    let _ = writeln!(
        out,
        "== Profile - controller hot-phase timings over the resilience \
         comparison (wall-clock; rows are stable, numbers are not) =="
    );
    let (_, artifacts) = resilience::run_instrumented(&point, seed)?;
    let _ = write!(out, "{}", artifacts.profile.render());
    let _ = writeln!(
        out,
        "{} spans across {} journaled events and {} tick samples",
        artifacts.profile.total_spans(),
        artifacts.events.len(),
        artifacts.series.len(),
    );
    let tenants = options.tenants;
    let shards = fleet::shards_for(tenants);
    let outcome =
        fleet::run_fleet_point(tenants, shards, seed).map_err(|_| CoreError::Inconsistent {
            reason: "fleet profile point failed",
        })?;
    let _ = writeln!(
        out,
        "\n== Profile - fleet causal span tree ({tenants} tenants / {shards} shards; \
         wall-clock; tree shape is stable, numbers are not) =="
    );
    let spans = &outcome.spans;
    let _ = write!(out, "{}", spans.render());
    // Verify the attribution inline: per epoch, phase children plus the
    // residual must reconstruct the measured epoch time.
    let mut worst = 0.0f64;
    let mut epochs = 0u64;
    for root in spans.roots() {
        for epoch in spans.children(root) {
            if !spans.label(epoch).starts_with("epoch ") {
                continue;
            }
            epochs += 1;
            let attributed: f64 = spans
                .children(epoch)
                .iter()
                .map(|&child| spans.seconds(child))
                .sum::<f64>()
                + spans.residual(epoch);
            worst = worst.max((attributed - spans.seconds(epoch)).abs());
        }
    }
    let _ = writeln!(
        out,
        "shape check: phase children + (other) reconstruct each of the {epochs} measured \
         epoch times (worst absolute error {worst:.1e}s)"
    );
    if worst > 1e-6 {
        return Err(CoreError::Inconsistent {
            reason: "span attribution does not sum to the measured epoch time",
        });
    }
    Ok(())
}

/// `figures obs`: the fleet observability plane at the `--tenants` point
/// — the deterministic registry dump's fleet-level lines, per-tenant
/// latency percentiles with the SLO-violation count, and the size of
/// each exporter's output. With `--csv DIR`, the full registry dump,
/// Prometheus exposition, and JSON export are written there.
fn print_obs(out: &mut String, options: &Options) -> Result<(), CoreError> {
    let tenants = options.tenants;
    let shards = fleet::shards_for(tenants);
    let spec = fleet::fleet_spec(tenants, shards, options.seed);
    let outcome = fleet::run_fleet_point(tenants, shards, options.seed).map_err(|_| {
        CoreError::Inconsistent {
            reason: "fleet obs point failed",
        }
    })?;
    let _ = writeln!(
        out,
        "== Observability - deterministic registry and per-tenant latency \
         ({tenants} tenants / {shards} shards; all numbers virtual-clock-derived) =="
    );
    let registry = &outcome.registry;
    let text = registry.to_text();
    // The fleet-level lines (unlabeled gauges/counters) are few and
    // deterministic; per-tenant/per-shard series stay in the dump files.
    for line in text.lines().filter(|l| l.contains(" fleet_")) {
        let _ = writeln!(out, "{line}");
    }
    const SHOWN: usize = 8;
    let mut table = Table::new(vec!["tenant", "samples", "p50 (s)", "p95 (s)", "p99 (s)"]);
    for stats in outcome.report.tenant_latency.iter().take(SHOWN) {
        table.row(vec![
            stats.tenant.as_u32().to_string(),
            stats.samples.to_string(),
            format!("{:.6}", stats.p50),
            format!("{:.6}", stats.p95),
            format!("{:.6}", stats.p99),
        ]);
    }
    let _ = write!(out, "{table}");
    if outcome.report.tenant_latency.len() > SHOWN {
        let _ = writeln!(
            out,
            "... and {} more tenants",
            outcome.report.tenant_latency.len() - SHOWN
        );
    }
    let worst = outcome
        .report
        .tenant_latency
        .iter()
        .max_by(|a, b| a.p99.total_cmp(&b.p99));
    if let Some(worst) = worst {
        let _ = writeln!(
            out,
            "worst p99: tenant {} at {:.6}s",
            worst.tenant.as_u32(),
            worst.p99
        );
    }
    let _ = writeln!(
        out,
        "slo violations (balanced latency > {}s): {}",
        spec.slo_latency, outcome.report.slo_violations
    );
    let prometheus = registry.to_prometheus();
    let json = registry.to_json();
    let _ = writeln!(
        out,
        "exports: registry dump {} lines / {} bytes, prometheus {} lines / {} bytes, \
         json {} bytes; {} postmortems",
        text.lines().count(),
        text.len(),
        prometheus.lines().count(),
        prometheus.len(),
        json.len(),
        outcome.postmortems.len(),
    );
    if let Some(dir) = CSV_DIR.get() {
        for (name, contents) in [
            ("registry.txt", &text),
            ("registry.prom", &prometheus),
            ("registry.json", &json),
        ] {
            std::fs::write(dir.join(name), contents).map_err(|_| CoreError::Inconsistent {
                reason: "cannot write registry export",
            })?;
            let _ = writeln!(out, "wrote {}", dir.join(name).display());
        }
    }
    Ok(())
}

/// `figures fleet`: the deterministic side of the multi-tenant fleet —
/// per-size event totals, migration cost and rebalance latency. All
/// virtual-clock counters, so the table is bit-identical at any thread
/// count; the wall-clock throughput lives in `figures bench`.
fn print_fleet(out: &mut String, seed: u64) -> Result<(), CoreError> {
    let sweep = fleet::fleet_sweep(seed).map_err(|_| CoreError::Inconsistent {
        reason: "fleet sweep failed",
    })?;
    print_sweep(
        out,
        "Fleet - sharded tenant controllers under one virtual clock (8/64/256 tenants)",
        &sweep,
        2,
        None,
    );
    let migrations = sweep.series_values("migrations").unwrap_or_default();
    let latency = sweep
        .series_values("rebalance latency (s)")
        .unwrap_or_default();
    let _ = writeln!(
        out,
        "shape check: every fleet size completes cross-shard migrations \
         (per size: {:?}) at a one-epoch rebalance latency ({:?}s)",
        migrations, latency,
    );
    Ok(())
}

/// `figures chaos`: crash recovery under seeded fault injection — the
/// fleet disturbed at increasing per-epoch fault rates, recovered
/// through epoch checkpoints + event replay, scored on replay overhead
/// and availability. The `identical` column verifies inline that every
/// recovered run matches the fault-free baseline byte for byte; all
/// columns are deterministic counters, so the table is bit-identical at
/// any thread count.
fn print_chaos(out: &mut String, seed: u64) -> Result<(), CoreError> {
    let sweep = chaos::chaos_sweep(seed).map_err(|_| CoreError::Inconsistent {
        reason: "chaos sweep failed",
    })?;
    print_sweep(
        out,
        "Chaos - checkpoint/restore recovery under seeded control-plane faults",
        &sweep,
        3,
        None,
    );
    let identical = sweep.series_values("identical").unwrap_or_default();
    let availability = sweep.series_values("availability").unwrap_or_default();
    let all_identical = identical.iter().all(|&v| v == 1.0);
    let _ = writeln!(
        out,
        "shape check: every recovered run byte-identical to the undisturbed baseline \
         ({}), availability falling with the fault rate ({:?})",
        if all_identical { "yes" } else { "NO" },
        availability,
    );
    if !all_identical {
        return Err(CoreError::Inconsistent {
            reason: "a recovered chaos run diverged from the undisturbed baseline",
        });
    }
    Ok(())
}

fn print_validation(out: &mut String, seed: u64) -> Result<(), CoreError> {
    let _ = writeln!(
        out,
        "== Validation - Jackson analytics vs discrete-event simulation =="
    );
    let rows = validation::standard_suite(seed)?;
    let mut table = Table::new(vec![
        "configuration",
        "analytic(s)",
        "simulated(s)",
        "rel.err%",
    ]);
    let mut worst = 0.0f64;
    for row in &rows {
        worst = worst.max(row.relative_error());
        table.row(vec![
            row.label.clone(),
            format!("{:.6}", row.analytic),
            format!("{:.6}", row.simulated),
            format!("{:.2}", row.relative_error() * 100.0),
        ]);
    }
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "shape check: worst relative error {:.2}% (expect < ~8%)",
        worst * 100.0
    );
    Ok(())
}

fn print_ablation(out: &mut String, rp: u64, rs: u64, seed: u64) -> Result<(), CoreError> {
    let _ = writeln!(
        out,
        "== Ablation A - BFDSU's weighted-random choice vs deterministic best fit =="
    );
    // Tight capacities so deterministic best fit dead-ends where BFDSU's
    // restarts recover.
    let point = placement::PlacementPoint {
        fill: 0.93,
        requests: 600,
        ..placement::PlacementPoint::base()
    };
    let placers: Vec<Box<dyn Placer>> = vec![
        Box::new(Bfdsu::new()),
        Box::new(Bfd::new()),
        Box::new(Ffd::new()),
    ];
    let stats = placement::run_point(&point, &placers, rp, seed)?;
    let mut table = Table::new(vec!["placer", "util%", "nodes", "iterations", "failures"]);
    for (name, s) in &stats {
        table.row(vec![
            name.clone(),
            format!("{:.2}", s.utilization * 100.0),
            format!("{:.2}", s.nodes_in_service),
            format!("{:.2}", s.iterations),
            s.failures.to_string(),
        ]);
    }
    let _ = write!(out, "{table}");

    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "== Ablation B - RCKK's reverse combination vs forward order and round-robin =="
    );
    // Pairwise comparisons: μ is calibrated to the worst makespan of the
    // compared pair, so each alternative is judged under its own
    // near-saturation regime rather than under a μ inflated by the worst
    // variant in the pool.
    let sched_point = scheduling::SchedulingPoint::base();
    let mut table = Table::new(vec!["pair", "rckk W(s)", "other W(s)", "rckk better by"]);
    let alternatives: Vec<Box<dyn Scheduler>> = vec![
        Box::new(KkForward::new()),
        Box::new(Cga::new()),
        Box::new(RoundRobin::new()),
    ];
    for alt in alternatives {
        let alt_name = alt.name();
        let pair: Vec<Box<dyn Scheduler>> = vec![Box::new(Rckk::new()), alt];
        let outcomes = scheduling::run_response_point(&sched_point, &pair, rs, seed)?;
        let (rckk_w, other_w) = (outcomes[0].w.mean(), outcomes[1].w.mean());
        table.row(vec![
            format!("rckk vs {alt_name}"),
            format!("{rckk_w:.6}"),
            format!("{other_w:.6}"),
            format!("{:.1}%", enhancement_ratio(other_w, rckk_w) * 100.0),
        ]);
    }
    let _ = write!(out, "{table}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_list_has_no_duplicates_and_usage_names_every_command() {
        let usage = usage();
        for (i, command) in ALL_COMMANDS.iter().enumerate() {
            assert!(
                !ALL_COMMANDS[..i].contains(command),
                "duplicate command {command}"
            );
            assert!(usage.contains(command), "usage line is missing {command}");
        }
    }

    #[test]
    fn every_listed_command_reaches_a_dispatch_arm() {
        // The unknown-command arm echoes the usage line; a listed command
        // must never land there. Parsing the dispatch source would be
        // brittle in a unit test (ci.sh does that cross-check); here the
        // contract is checked behaviorally on the cheapest figure inputs.
        let source = include_str!("figures.rs");
        for command in ALL_COMMANDS {
            assert!(
                source.contains(&format!("\"{command}\" =>")),
                "dispatch table is missing an arm for {command}"
            );
        }
    }
}
