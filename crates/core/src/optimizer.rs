//! The two-phase joint optimizer.

use std::sync::Arc;

use nfv_model::{ArrivalRate, Demand, RequestId, ServiceChain};
use nfv_placement::{Bfdsu, PlacementProblem, Placer};
use nfv_scheduling::{Rckk, Scheduler};
use nfv_topology::Topology;
use nfv_workload::replicate::{self, ReplicaMap};
use nfv_workload::Scenario;
use rand::RngCore;

use crate::{CoreError, JointSolution};

/// The paper's hierarchical two-phase solver: a [`Placer`] for VNF chain
/// placement followed by a [`Scheduler`] applied independently to each
/// VNF's requests.
///
/// Defaults to the paper's proposal (BFDSU + RCKK); swap either phase to
/// reproduce the baselines:
///
/// ```
/// use nfv_core::JointOptimizer;
/// use nfv_placement::Ffd;
/// use nfv_scheduling::Cga;
/// let baseline = JointOptimizer::new()
///     .with_placer(Box::new(Ffd::new()))
///     .with_scheduler(Box::new(Cga::new()));
/// ```
pub struct JointOptimizer {
    placer: Box<dyn Placer>,
    scheduler: Box<dyn Scheduler>,
}

impl JointOptimizer {
    /// Creates the optimizer with the paper's algorithms: [`Bfdsu`]
    /// placement and [`Rckk`] scheduling.
    #[must_use]
    pub fn new() -> Self {
        Self {
            placer: Box::new(Bfdsu::new()),
            scheduler: Box::new(Rckk::new()),
        }
    }

    /// Replaces the placement algorithm.
    #[must_use]
    pub fn with_placer(mut self, placer: Box<dyn Placer>) -> Self {
        self.placer = placer;
        self
    }

    /// Replaces the scheduling algorithm.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: Box<dyn Scheduler>) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The configured placer's name.
    #[must_use]
    pub fn placer_name(&self) -> &'static str {
        self.placer.name()
    }

    /// The configured scheduler's name.
    #[must_use]
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Runs both phases on a scenario over a topology.
    ///
    /// Convenience wrapper over [`optimize_shared`](Self::optimize_shared)
    /// that copies the inputs once so the returned solution can own
    /// shared handles to them. Hot paths that solve many trials (or run
    /// several pipelines over the same trial) should build
    /// `Arc<Scenario>` / `Arc<Topology>` up front and call
    /// `optimize_shared` directly — that path never deep-copies either
    /// input.
    ///
    /// # Errors
    ///
    /// Propagates validation, placement and scheduling failures as
    /// [`CoreError`].
    pub fn optimize(
        &self,
        scenario: &Scenario,
        topology: &Topology,
        rng: &mut dyn RngCore,
    ) -> Result<JointSolution, CoreError> {
        self.optimize_shared(
            &Arc::new(scenario.clone()),
            &Arc::new(topology.clone()),
            rng,
        )
    }

    /// Runs both phases on a shared scenario over a shared topology,
    /// without deep-copying either: the returned [`JointSolution`] holds
    /// clones of the `Arc` handles.
    ///
    /// # Errors
    ///
    /// Propagates validation, placement and scheduling failures as
    /// [`CoreError`].
    pub fn optimize_shared(
        &self,
        scenario: &Arc<Scenario>,
        topology: &Arc<Topology>,
        rng: &mut dyn RngCore,
    ) -> Result<JointSolution, CoreError> {
        scenario.validate()?;

        // Phase one: place every VNF (with all its instances) on a node.
        let chains: Vec<ServiceChain> = scenario
            .requests()
            .iter()
            .map(|r| r.chain().clone())
            .collect();
        let problem = PlacementProblem::with_chains(
            topology.compute_nodes().to_vec(),
            scenario.vnfs().to_vec(),
            chains,
        )?;
        let outcome = self.placer.place(&problem, rng)?;

        // Phase two: schedule each VNF's requests over its instances.
        // One pass over the requests builds every VNF's user and rate
        // vectors at once — the old per-VNF `requests_using` scan was
        // O(|F| · |R|) with a `scenario.request(id)` lookup per user.
        // Chains reject duplicate VNFs, so pushing once per chain hop
        // visits each (request, VNF) pair exactly once, in the same
        // request order the filtering scan produced.
        let vnf_count = scenario.vnfs().len();
        let mut users: Vec<Vec<RequestId>> = vec![Vec::new(); vnf_count];
        let mut rates: Vec<Vec<ArrivalRate>> = vec![Vec::new(); vnf_count];
        for request in scenario.requests() {
            for vnf in request.chain() {
                users[vnf.as_usize()].push(request.id());
                rates[vnf.as_usize()].push(request.arrival_rate());
            }
        }
        let mut schedules = Vec::with_capacity(vnf_count);
        for (vnf, vnf_rates) in scenario.vnfs().iter().zip(&rates) {
            schedules.push(
                self.scheduler
                    .schedule(vnf_rates, vnf.instances() as usize)?,
            );
        }

        JointSolution::new(
            Arc::clone(scenario),
            Arc::clone(topology),
            outcome.placement().clone(),
            outcome.iterations(),
            schedules,
            users,
        )
    }

    /// Like [`optimize`](Self::optimize), but first splits any VNF whose
    /// total demand exceeds the largest node's capacity into replica VNFs
    /// (the paper's replica rule, §III.A), then optimizes the rewritten
    /// scenario. The returned solution is expressed in replica ids; the
    /// [`ReplicaMap`] translates back to the original VNFs.
    ///
    /// # Errors
    ///
    /// Propagates replication failures (a single instance larger than
    /// every node) and all [`optimize`](Self::optimize) errors.
    pub fn optimize_with_replication(
        &self,
        scenario: &Scenario,
        topology: &Topology,
        rng: &mut dyn RngCore,
    ) -> Result<(JointSolution, ReplicaMap), CoreError> {
        let max_node = topology
            .compute_nodes()
            .iter()
            .map(|n| n.capacity().value())
            .fold(0.0f64, f64::max);
        let budget = Demand::new(max_node).map_err(|_| CoreError::Inconsistent {
            reason: "topology has no usable capacity",
        })?;
        let (rewritten, map) = replicate::split_oversized(scenario, budget)?;
        let solution = self.optimize(&rewritten, topology, rng)?;
        Ok((solution, map))
    }
}

impl Default for JointOptimizer {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for JointOptimizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JointOptimizer")
            .field("placer", &self.placer.name())
            .field("scheduler", &self.scheduler.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_topology::builders;
    use nfv_workload::ScenarioBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scenario() -> Scenario {
        ScenarioBuilder::new()
            .vnfs(6)
            .requests(40)
            .seed(5)
            .build()
            .unwrap()
    }

    fn topology() -> Topology {
        builders::star()
            .hosts(8)
            .capacity_range(1000.0, 5000.0, 3)
            .build()
            .unwrap()
    }

    #[test]
    fn default_pipeline_produces_consistent_solution() {
        let scenario = scenario();
        let topology = topology();
        let mut rng = StdRng::seed_from_u64(0);
        let solution = JointOptimizer::new()
            .optimize(&scenario, &topology, &mut rng)
            .unwrap();

        // Every request is scheduled on every VNF of its chain, and the
        // placement hosts every VNF.
        for request in scenario.requests() {
            for vnf in request.chain() {
                assert!(solution.instance_serving(request.id(), *vnf).is_some());
                assert!(solution.node_serving(request.id(), *vnf).is_some());
            }
        }
        assert!(solution.placement().nodes_in_service() >= 1);
        assert!(solution.placement_iterations() >= 1);
    }

    #[test]
    fn objective_is_finite_and_decomposes() {
        let scenario = scenario();
        let topology = topology();
        let mut rng = StdRng::seed_from_u64(1);
        let solution = JointOptimizer::new()
            .optimize(&scenario, &topology, &mut rng)
            .unwrap();
        let objective = solution.objective().unwrap();
        assert_eq!(objective.requests(), scenario.requests().len());
        assert!(objective.total_latency().is_finite());
        let sum_parts = objective.average_response_latency() + objective.average_link_latency();
        assert!((objective.average_total_latency() - sum_parts).abs() < 1e-12);
    }

    #[test]
    fn swapping_algorithms_changes_names_not_contract() {
        use nfv_placement::Ffd;
        use nfv_scheduling::RoundRobin;
        let optimizer = JointOptimizer::new()
            .with_placer(Box::new(Ffd::new()))
            .with_scheduler(Box::new(RoundRobin::new()));
        assert_eq!(optimizer.placer_name(), "ffd");
        assert_eq!(optimizer.scheduler_name(), "round-robin");
        let mut rng = StdRng::seed_from_u64(2);
        let solution = optimizer
            .optimize(&scenario(), &topology(), &mut rng)
            .unwrap();
        assert!(solution.objective().is_ok());
    }

    #[test]
    fn infeasible_topology_surfaces_placement_error() {
        let scenario = scenario();
        let tiny = builders::star()
            .hosts(2)
            .uniform_capacity(1.0)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let err = JointOptimizer::new()
            .optimize(&scenario, &tiny, &mut rng)
            .unwrap_err();
        assert!(matches!(err, CoreError::Placement(_)));
    }

    #[test]
    fn solution_instance_loads_cover_all_requests() {
        let scenario = scenario();
        let mut rng = StdRng::seed_from_u64(4);
        let solution = JointOptimizer::new()
            .optimize(&scenario, &topology(), &mut rng)
            .unwrap();
        let loads = solution.instance_loads();
        for vnf in scenario.vnfs() {
            let total: usize = loads[vnf.id().as_usize()]
                .iter()
                .map(|l| l.request_count())
                .sum();
            assert_eq!(total, scenario.users_of(vnf.id()));
        }
    }

    #[test]
    fn replication_makes_oversized_scenarios_feasible() {
        // Nodes far smaller than the biggest VNF: plain optimize fails,
        // replication splits and succeeds.
        let scenario = ScenarioBuilder::new()
            .vnfs(4)
            .requests(60)
            .instance_policy(nfv_workload::InstancePolicy::PerUsers {
                requests_per_instance: 3,
            })
            .seed(8)
            .build()
            .unwrap();
        let max_vnf = scenario
            .vnfs()
            .iter()
            .map(|v| v.total_demand().value())
            .fold(0.0f64, f64::max);
        let topology = builders::star()
            .hosts(12)
            .uniform_capacity(max_vnf * 0.6)
            .build()
            .unwrap();

        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            JointOptimizer::new().optimize(&scenario, &topology, &mut rng),
            Err(CoreError::Placement(_))
        ));

        let (solution, map) = JointOptimizer::new()
            .optimize_with_replication(&scenario, &topology, &mut rng)
            .unwrap();
        assert!(scenario.vnfs().iter().any(|v| map.was_split(v.id())));
        // Every replica of every original VNF is placed.
        for vnf in scenario.vnfs() {
            for &replica in map.replicas_of(vnf.id()) {
                assert!(solution.schedule_of(replica).is_some());
            }
        }
        assert!(solution.objective().unwrap().total_latency().is_finite());
    }

    #[test]
    fn replication_is_identity_when_everything_fits() {
        let scenario = scenario();
        let topology = topology();
        let mut rng = StdRng::seed_from_u64(1);
        let (solution, map) = JointOptimizer::new()
            .optimize_with_replication(&scenario, &topology, &mut rng)
            .unwrap();
        assert!(scenario.vnfs().iter().all(|v| !map.was_split(v.id())));
        assert_eq!(solution.scenario().vnfs().len(), scenario.vnfs().len());
    }

    #[test]
    fn debug_format_names_phases() {
        let dbg = format!("{:?}", JointOptimizer::new());
        assert!(dbg.contains("bfdsu") && dbg.contains("rckk"));
    }
}
