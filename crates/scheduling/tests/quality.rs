//! Scheduling quality against complete searches on small instances, and
//! cross-algorithm invariants on larger ones.

use nfv_model::ArrivalRate;
use nfv_scheduling::{Cga, Ckk, KkForward, OnlineLeastLoaded, Rckk, RoundRobin, Scheduler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rates(values: &[f64]) -> Vec<ArrivalRate> {
    values
        .iter()
        .map(|&v| ArrivalRate::new(v).unwrap())
        .collect()
}

fn random_rates(n: usize, seed: u64) -> Vec<ArrivalRate> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| ArrivalRate::new(rng.gen_range(1.0..=100.0)).unwrap())
        .collect()
}

#[test]
fn rckk_approximation_ratio_vs_exact_on_small_instances() {
    // Exhaustive CGA is the optimum oracle for n <= 12.
    let mut worst_ratio = 1.0f64;
    for seed in 0..25u64 {
        let n = 6 + (seed % 7) as usize;
        let m = 2 + (seed % 3) as usize;
        let input = random_rates(n, seed);
        let exact = Cga::new()
            .with_leaf_budget(5_000_000)
            .schedule(&input, m)
            .unwrap();
        let rckk = Rckk::new().schedule(&input, m).unwrap();
        assert!(
            rckk.makespan() >= exact.makespan() - 1e-9,
            "oracle beaten?!"
        );
        worst_ratio = worst_ratio.max(rckk.makespan() / exact.makespan());
    }
    // KK differencing stays close to optimal on uniform random inputs.
    assert!(worst_ratio < 1.35, "worst RCKK/OPT ratio {worst_ratio}");
}

#[test]
fn ckk_search_converges_to_cga_search() {
    // Two different complete searches must agree on the optimal makespan.
    for seed in 0..10u64 {
        let input = random_rates(8, seed ^ 0xA5);
        let m = 3;
        let via_cga = Cga::new()
            .with_leaf_budget(5_000_000)
            .schedule(&input, m)
            .unwrap();
        let via_ckk = Ckk::new()
            .with_leaf_budget(5_000_000)
            .schedule(&input, m)
            .unwrap();
        assert!(
            (via_cga.makespan() - via_ckk.makespan()).abs() < 1e-9,
            "seed {seed}: cga {} vs ckk {}",
            via_cga.makespan(),
            via_ckk.makespan()
        );
    }
}

#[test]
fn algorithm_quality_ordering_on_random_inputs() {
    // Mean imbalance over many draws must order: RCKK <= CGA(greedy)
    // <= round-robin, with the forward-KK ablation clearly worst-of-the-
    // informed and online between CGA and round-robin.
    let m = 5;
    let mut sums = [0.0f64; 5];
    for seed in 0..40u64 {
        let input = random_rates(50, seed ^ 0x77);
        let algos: [&dyn Scheduler; 5] = [
            &Rckk::new(),
            &Cga::new(),
            &OnlineLeastLoaded::new(),
            &RoundRobin::new(),
            &KkForward::new(),
        ];
        for (i, algo) in algos.iter().enumerate() {
            sums[i] += algo.schedule(&input, m).unwrap().imbalance();
        }
    }
    let [rckk, cga, online, rr, forward] = sums;
    assert!(rckk <= cga, "rckk {rckk} vs cga {cga}");
    assert!(cga <= online, "cga {cga} vs online {online}");
    assert!(online <= rr, "online {online} vs round-robin {rr}");
    assert!(
        forward > 5.0 * rckk,
        "forward combination not clearly worse"
    );
}

#[test]
fn identical_rates_are_perfectly_balanced_by_everyone_informed() {
    let input = rates(&[10.0; 20]);
    for algo in [
        &Rckk::new() as &dyn Scheduler,
        &Cga::new(),
        &OnlineLeastLoaded::new(),
    ] {
        let schedule = algo.schedule(&input, 5).unwrap();
        assert_eq!(schedule.imbalance(), 0.0, "{}", algo.name());
        assert_eq!(schedule.makespan(), 40.0, "{}", algo.name());
    }
}

#[test]
fn one_giant_request_dominates_every_makespan() {
    let mut values = vec![1.0; 10];
    values.push(500.0);
    let input = rates(&values);
    for algo in [
        &Rckk::new() as &dyn Scheduler,
        &Cga::new(),
        &OnlineLeastLoaded::new(),
        &KkForward::new(),
    ] {
        let schedule = algo.schedule(&input, 4).unwrap();
        assert!(
            schedule.makespan() >= 500.0,
            "{} beat the single-item lower bound",
            algo.name()
        );
        assert!(
            schedule.makespan() <= 510.0 + 1e-9,
            "{} stacked onto the giant",
            algo.name()
        );
    }
}

#[test]
fn scaling_rates_scales_makespan_linearly() {
    let input = random_rates(30, 3);
    let doubled: Vec<ArrivalRate> = input
        .iter()
        .map(|r| ArrivalRate::new(r.value() * 2.0).unwrap())
        .collect();
    let a = Rckk::new().schedule(&input, 4).unwrap();
    let b = Rckk::new().schedule(&doubled, 4).unwrap();
    assert!((b.makespan() - 2.0 * a.makespan()).abs() < 1e-9);
    assert_eq!(
        a.assignment(),
        b.assignment(),
        "scaling must not change the partition"
    );
}
