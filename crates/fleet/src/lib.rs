//! A deterministic multi-tenant fleet loop: N independent tenant
//! controllers, sharded over the shared `nfv-parallel` pool, driven by
//! one virtual clock.
//!
//! The paper optimizes a single cluster; a fleet serving many users runs
//! *hundreds* of such optimizations concurrently in one process. This
//! crate multiplexes them without surrendering the repo's core contract:
//! same seed, same results, **bit for bit, at any thread count**.
//!
//! The moving parts:
//!
//! - **Tenants** — each an isolated world: its own scenario, its own
//!   lazy churn stream (seeded via
//!   [`tenant_seed`](nfv_workload::tenancy::tenant_seed)), its own
//!   [`Controller`](nfv_controller::Controller).
//! - **Channels** ([`EventChannel`]) — bounded SPSC-style buffers between
//!   the trace streams and the shards. The serial *pump* phase fills
//!   them (shard order, tenant order, stalling on a full channel); the
//!   parallel *drain* phase empties them. Backpressure is part of the
//!   deterministic schedule, not an accident of timing.
//! - **Shards** ([`Shard`]) — disjoint tenant sets drained concurrently
//!   via `par_map_indexed`, results folded in shard-id order, so thread
//!   count never changes an outcome.
//! - **Epochs** — the virtual clock advances in fixed steps; every event
//!   with `time ≤ boundary` is pumped and drained (possibly over several
//!   backpressure rounds) before the fleet crosses the boundary.
//! - **Handoff** ([`HandoffLayer`]) — every `rebalance_every` epochs the
//!   busiest tenant of the most-loaded shard migrates to the
//!   least-loaded shard as a two-phase retire/add with conservation
//!   accounting (see the `handoff` module docs).
//!
//! Journals merge per shard in shard-id order
//! ([`TelemetryArtifacts::merged`]), so the fleet journal is one
//! byte-identical artifact at 1, 2, or 8 threads.
//!
//! # Chaos & recovery
//!
//! [`run_with_faults`] drives the same loop under an [`FaultPlan`] of
//! injected control-plane faults. At the start of every faulted epoch
//! each installed tenant is checkpointed ([`TenantSlot`] →
//! [`SlotCheckpoint`]: controller snapshot + telemetry cursor +
//! processed count) and every event pumped during the epoch is recorded
//! in a per-tenant replay log. A worker panic mid-drain is contained by
//! a supervised drain ([`nfv_parallel::catch_task`]); the poisoned shard
//! is restored from its checkpoints and caught up by replaying its logs.
//! Channel drops/duplicates, tenant crashes, and injected conservation
//! corruption are repaired at the epoch boundary the same way — restore
//! plus full-epoch replay — so a recoverable faulted run produces a
//! **byte-identical** merged journal, fleet report, and epoch records to
//! the undisturbed run. A tenant whose checkpoint is itself corrupt is
//! retired through the quarantine path (its checkpoint-time counters
//! frozen into the totals, [`FleetError`]-free); a wedged drain
//! surfaces as a typed [`FleetError::PumpStalled`]. Recovery telemetry
//! (`CheckpointTaken`/`FaultInjected`/`ShardRestored`/
//! `TenantQuarantined`) goes to a separate chaos journal so the tenant
//! journal keeps its byte-identity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod handoff;
mod shard;

use nfv_controller::{Controller, ControllerConfig, ControllerReport};
use nfv_parallel::{catch_task, default_threads, derive_seed, par_map_indexed, TaskPanic};
use nfv_telemetry::{EventKind, Telemetry, TelemetryArtifacts, TelemetrySnapshot};
use nfv_workload::churn::{ChurnStream, ChurnTraceBuilder, TimedEvent};
use nfv_workload::tenancy::tenant_seed;
use nfv_workload::{Scenario, ScenarioBuilder, ServiceRatePolicy, TenantId, WorkloadError};

pub use channel::EventChannel;
pub use handoff::{HandoffLayer, MigrationRecord};
pub use shard::{Shard, SlotCheckpoint, TenantSlot};

// Re-exported so fleet callers can build fault plans without a separate
// `nfv-chaos` dependency.
pub use nfv_chaos::{FaultKind, FaultPlan, FaultRates};

/// Why a fleet run refused to start or aborted.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FleetError {
    /// The spec fails a sanity bound.
    InvalidSpec(&'static str),
    /// Building a tenant scenario or trace failed.
    Workload(WorkloadError),
    /// A shard task panicked on the pool.
    Pool(TaskPanic),
    /// A tenant's counters failed the conservation check during handoff
    /// (`phase` is `retire`, `transit`, or `install`).
    ConservationViolated {
        /// The tenant whose accounting broke.
        tenant: TenantId,
        /// Which handoff phase detected it.
        phase: &'static str,
    },
    /// A tenant's channel stopped making progress for an entire epoch
    /// round — nothing pumped, nothing drained, events still buffered —
    /// so the epoch loop would spin forever.
    PumpStalled {
        /// The first tenant (shard order, tenant order) holding
        /// undrained events.
        tenant: TenantId,
        /// The epoch that stalled.
        epoch: u64,
    },
    /// A checkpoint restore failed during crash recovery.
    RestoreFailed {
        /// The tenant whose snapshot did not restore.
        tenant: TenantId,
        /// The epoch the recovery ran in.
        epoch: u64,
    },
    /// The handoff layer chose a tenant the source shard no longer owns —
    /// the ownership view desynced from the shard (e.g. a concurrent
    /// quarantine retired it between selection and retire).
    HandoffDesynced {
        /// The tenant the handoff tried to retire.
        tenant: TenantId,
        /// The shard that was expected to own it.
        shard: usize,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidSpec(reason) => write!(f, "invalid fleet spec: {reason}"),
            Self::Workload(err) => write!(f, "tenant workload: {err}"),
            Self::Pool(err) => write!(f, "shard pool: {err}"),
            Self::ConservationViolated { tenant, phase } => {
                write!(f, "conservation violated for {tenant} at {phase}")
            }
            Self::PumpStalled { tenant, epoch } => {
                write!(f, "pump stalled on {tenant} in epoch {epoch}")
            }
            Self::RestoreFailed { tenant, epoch } => {
                write!(f, "checkpoint restore failed for {tenant} in epoch {epoch}")
            }
            Self::HandoffDesynced { tenant, shard } => {
                write!(f, "handoff desynced: shard {shard} does not own {tenant}")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Workload(err) => Some(err),
            Self::Pool(err) => Some(err),
            _ => None,
        }
    }
}

/// Everything that defines one fleet run. A spec is a pure value: two
/// runs of the same spec produce byte-identical outcomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSpec {
    /// Number of tenants.
    pub tenants: usize,
    /// Number of shards the tenants are partitioned over.
    pub shards: usize,
    /// VNFs per tenant scenario.
    pub vnfs: usize,
    /// Base requests per tenant scenario.
    pub requests: usize,
    /// Per-instance utilization target of the scenario generator.
    pub target_utilization: f64,
    /// Virtual-time horizon of every tenant's trace, seconds.
    pub horizon: f64,
    /// Poisson churn arrival rate per tenant, events/second.
    pub arrival_rate: f64,
    /// Mean exponential holding time, seconds.
    pub mean_holding: f64,
    /// Re-optimization tick period per tenant, seconds.
    pub tick_period: f64,
    /// Virtual seconds per fleet epoch.
    pub epoch: f64,
    /// Bound of each tenant's event channel.
    pub channel_capacity: usize,
    /// Initiate a handoff every this many epochs (`0` disables).
    pub rebalance_every: u64,
    /// Fleet seed; every tenant seed derives from it.
    pub seed: u64,
    /// Whether tenants record telemetry journals.
    pub telemetry: bool,
    /// The controller configuration every tenant runs.
    pub controller: ControllerConfig,
    /// Worker threads for the drain phase (`0` = process default).
    pub threads: usize,
}

impl FleetSpec {
    /// A small smoke-test fleet: 4 tenants on 2 shards, rebalancing
    /// aggressively so the handoff path is exercised even in tests.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            tenants: 4,
            shards: 2,
            vnfs: 3,
            requests: 12,
            target_utilization: 0.6,
            horizon: 40.0,
            arrival_rate: 0.5,
            mean_holding: 10.0,
            tick_period: 20.0,
            epoch: 10.0,
            channel_capacity: 16,
            rebalance_every: 1,
            seed: 11,
            telemetry: true,
            controller: ControllerConfig::periodic_reopt(),
            threads: 0,
        }
    }

    /// The smoke spec scaled to `tenants` tenants on `shards` shards.
    #[must_use]
    pub fn sized(tenants: usize, shards: usize) -> Self {
        Self {
            tenants,
            shards,
            ..Self::smoke()
        }
    }

    fn validate(&self) -> Result<(), FleetError> {
        if self.tenants == 0 {
            return Err(FleetError::InvalidSpec("tenants must be >= 1"));
        }
        if self.shards == 0 {
            return Err(FleetError::InvalidSpec("shards must be >= 1"));
        }
        if self.vnfs == 0 || self.requests == 0 {
            return Err(FleetError::InvalidSpec(
                "tenant scenarios must be non-empty",
            ));
        }
        if !(self.horizon.is_finite() && self.horizon > 0.0) {
            return Err(FleetError::InvalidSpec(
                "horizon must be positive and finite",
            ));
        }
        if !(self.epoch.is_finite() && self.epoch > 0.0) {
            return Err(FleetError::InvalidSpec("epoch must be positive and finite"));
        }
        if self.channel_capacity == 0 {
            return Err(FleetError::InvalidSpec("channel capacity must be >= 1"));
        }
        Ok(())
    }

    /// Number of epochs the run spans.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        (self.horizon / self.epoch).ceil().max(1.0) as u64
    }
}

/// Fleet-wide counter totals at one epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochRecord {
    /// The epoch index (0-based).
    pub epoch: u64,
    /// Virtual time of the epoch's end.
    pub end_time: f64,
    /// Events processed during this epoch (all shards).
    pub events: u64,
    /// Cumulative fleet admissions at the boundary.
    pub admitted: u64,
    /// Cumulative fleet retry admissions at the boundary.
    pub retry_admitted: u64,
    /// Active requests across the fleet at the boundary.
    pub active: u64,
    /// Cumulative departures at the boundary.
    pub departed: u64,
    /// Cumulative sheds at the boundary.
    pub shed: u64,
}

impl EpochRecord {
    /// Whether the fleet-wide conservation law holds at this boundary.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.admitted + self.retry_admitted == self.active + self.departed + self.shed
    }
}

/// Aggregated results of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Tenants in the fleet.
    pub tenants: usize,
    /// Shards the fleet ran on.
    pub shards: usize,
    /// Epochs executed.
    pub epochs: u64,
    /// Total events processed.
    pub events: u64,
    /// Total admissions across all tenants.
    pub admitted: u64,
    /// Total rejections across all tenants.
    pub rejected: u64,
    /// Total departures across all tenants.
    pub departed: u64,
    /// Total sheds across all tenants.
    pub shed: u64,
    /// Total retry admissions across all tenants.
    pub retry_admitted: u64,
    /// Requests still active at the horizon.
    pub active: u64,
    /// Completed cross-shard migrations.
    pub migrations: u64,
    /// Total state carried across shard boundaries (active requests +
    /// pending retries at retire time, summed over migrations).
    pub migration_cost: u64,
    /// Mean virtual-time latency of a handoff (retire → install),
    /// seconds; `0.0` when no migration happened.
    pub mean_rebalance_latency: f64,
    /// Events processed per shard, shard-id order.
    pub shard_events: Vec<u64>,
}

/// Counters of the chaos/recovery machinery for one run. All zeros for
/// an undisturbed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Tenant checkpoints taken at faulted epoch starts.
    pub checkpoints: u64,
    /// Faults that actually fired (a scheduled channel fault whose event
    /// index was never pumped, or a fault on a parked tenant, does not).
    pub faults_injected: u64,
    /// Whole-shard restores after contained worker panics.
    pub shard_restores: u64,
    /// Per-tenant epoch-boundary restores (crashes, channel faults,
    /// detected corruption).
    pub tenant_restores: u64,
    /// Tenants retired through the quarantine path.
    pub tenants_quarantined: u64,
    /// Events replayed from logs to catch restored tenants up.
    pub events_replayed: u64,
}

/// A tenant retired from the fleet because its state could not be
/// recovered (its checkpoint was corrupt). Its last valid checkpoint
/// counters stay frozen in the fleet totals, keeping the fleet-wide
/// conservation law intact.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineRecord {
    /// The retired tenant.
    pub tenant: TenantId,
    /// The epoch whose boundary sweep quarantined it.
    pub epoch: u64,
    /// The fault-kind slug that made recovery impossible.
    pub cause: &'static str,
    /// The checkpoint-time counter report frozen into the totals.
    pub report: ControllerReport,
}

/// Everything a fleet run produces.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The aggregated counters.
    pub report: FleetReport,
    /// Per-epoch fleet totals, epoch order.
    pub epoch_records: Vec<EpochRecord>,
    /// Completed migrations, oldest first.
    pub migrations: Vec<MigrationRecord>,
    /// Final per-tenant reports, tenant-id order (quarantined tenants
    /// report their frozen checkpoint counters).
    pub tenant_reports: Vec<(TenantId, ControllerReport)>,
    /// The merged fleet journal (per-shard, shard-id order).
    pub artifacts: TelemetryArtifacts,
    /// Chaos/recovery counters (all zeros without faults).
    pub recovery: RecoveryReport,
    /// Tenants retired through the quarantine path, oldest first.
    pub quarantines: Vec<QuarantineRecord>,
    /// The separate chaos journal (checkpoints, injections, restores,
    /// quarantines) — kept out of [`artifacts`](Self::artifacts) so the
    /// tenant journal stays byte-identical under recoverable faults.
    pub chaos_artifacts: TelemetryArtifacts,
}

/// Per-epoch chaos bookkeeping threaded through the pump: the epoch's
/// channel-fault targets, per-tenant pump counters (the `nth` a drop or
/// duplicate keys on), and the replay logs of the *true* pumped events —
/// what the controller would have seen with a perfect channel, and what
/// recovery replays.
struct PumpChaos<'a> {
    drop_at: &'a [Option<u64>],
    dup_at: &'a [Option<u64>],
    pumped: &'a mut [u64],
    logs: &'a mut [Vec<TimedEvent>],
}

/// Pulls events with `time ≤ boundary` from each installed tenant's
/// stream into its channel: shard order, tenant order, stopping per
/// tenant at a full channel (the head event parks in `pending`). Parked
/// tenants have no slot and are skipped — their streams stall until
/// re-install. Returns the number of events pumped.
///
/// With a chaos context, every pumped event is logged first; a targeted
/// event is then dropped before the channel or pushed twice (the
/// duplicate is lost if the channel has no room — deterministic either
/// way). A dropped event still counts as pumped: the stream advanced.
fn pump(
    streams: &mut [ChurnStream<'_>],
    pending: &mut [Option<TimedEvent>],
    shards: &mut [Shard],
    boundary: f64,
    mut chaos: Option<&mut PumpChaos<'_>>,
) -> u64 {
    let mut pumped = 0;
    for shard in shards.iter_mut() {
        for slot in shard.slots_mut() {
            let t = slot.tenant().as_usize();
            while !slot.channel_full() {
                let event = match pending[t].take() {
                    Some(event) => event,
                    None => match streams[t].next() {
                        Some(event) => event,
                        None => break,
                    },
                };
                if event.time() > boundary {
                    pending[t] = Some(event);
                    break;
                }
                pumped += 1;
                match chaos.as_deref_mut() {
                    None => slot.push(event),
                    Some(chaos) => {
                        let nth = chaos.pumped[t];
                        chaos.pumped[t] += 1;
                        chaos.logs[t].push(event.clone());
                        if chaos.drop_at[t] == Some(nth) {
                            continue;
                        }
                        let duplicate = (chaos.dup_at[t] == Some(nth)).then(|| event.clone());
                        slot.push(event);
                        if let Some(duplicate) = duplicate {
                            if !slot.channel_full() {
                                slot.push(duplicate);
                            }
                        }
                    }
                }
            }
        }
    }
    pumped
}

/// Sums the fleet-wide counters: every installed tenant, the parked
/// one, and the frozen reports of quarantined tenants — shard order then
/// tenant order (all-integer, so order only matters for determinism of
/// iteration, which is fixed anyway).
fn fleet_totals(
    shards: &[Shard],
    handoff: &HandoffLayer,
    quarantines: &[QuarantineRecord],
    epoch: u64,
    end_time: f64,
) -> EpochRecord {
    let mut record = EpochRecord {
        epoch,
        end_time,
        ..EpochRecord::default()
    };
    let mut add = |r: &ControllerReport| {
        record.admitted += r.admitted;
        record.retry_admitted += r.retry_admitted;
        record.active += r.active;
        record.departed += r.departed;
        record.shed += r.shed;
    };
    for shard in shards {
        for slot in shard.slots() {
            add(&slot.report());
        }
    }
    if let Some(parked) = handoff.parked_report() {
        add(parked);
    }
    for quarantine in quarantines {
        add(&quarantine.report);
    }
    record
}

/// Runs a fleet to its horizon.
///
/// # Errors
///
/// [`FleetError`] for an invalid spec, a workload-generation failure, a
/// shard panic on the pool, or a conservation violation during handoff.
pub fn run(spec: &FleetSpec) -> Result<FleetOutcome, FleetError> {
    run_with_faults(spec, &FaultPlan::none())
}

/// Runs a fleet to its horizon under an injected [`FaultPlan`].
///
/// With the empty plan this is exactly [`run`]. With a plan of
/// *recoverable* faults (see [`FaultRates::recoverable`]) the run
/// produces a byte-identical merged journal, fleet report, and epoch
/// records to the undisturbed run — crash recovery via epoch
/// checkpoints and event replay is transparent. Unrecoverable faults
/// degrade gracefully and typed: a corrupt checkpoint quarantines its
/// tenant (frozen counters, no panic), a wedged drain surfaces as
/// [`FleetError::PumpStalled`].
///
/// # Errors
///
/// Everything [`run`] can return, plus [`FleetError::PumpStalled`] for
/// a wedged channel and [`FleetError::RestoreFailed`] if a checkpoint
/// snapshot does not restore.
pub fn run_with_faults(spec: &FleetSpec, plan: &FaultPlan) -> Result<FleetOutcome, FleetError> {
    spec.validate()?;
    let threads = if spec.threads == 0 {
        default_threads()
    } else {
        spec.threads
    };
    let chaos_on = !plan.is_empty();
    let scenarios: Vec<Scenario> = (0..spec.tenants)
        .map(|t| {
            ScenarioBuilder::new()
                .vnfs(spec.vnfs)
                .requests(spec.requests)
                .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
                    target_utilization: spec.target_utilization,
                })
                .seed(tenant_seed(spec.seed, TenantId::new(t as u32)))
                .build()
                .map_err(FleetError::Workload)
        })
        .collect::<Result<_, _>>()?;
    let mut streams: Vec<ChurnStream<'_>> = Vec::with_capacity(spec.tenants);
    for (t, scenario) in scenarios.iter().enumerate() {
        streams.push(
            ChurnTraceBuilder::new()
                .horizon(spec.horizon)
                .arrival_rate(spec.arrival_rate)
                .mean_holding(spec.mean_holding)
                .tick_period(spec.tick_period)
                .seed(derive_seed(spec.seed, t as u64))
                .stream(scenario)
                .map_err(FleetError::Workload)?,
        );
    }
    let mut pending: Vec<Option<TimedEvent>> = (0..spec.tenants).map(|_| None).collect();
    let mut shards: Vec<Shard> = (0..spec.shards).map(Shard::new).collect();
    for (t, scenario) in scenarios.iter().enumerate() {
        let telemetry = if spec.telemetry {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        shards[t % spec.shards].install(TenantSlot::new(
            TenantId::new(t as u32),
            Controller::new(scenario, spec.controller),
            EventChannel::new(spec.channel_capacity),
            telemetry,
        ));
    }
    let epochs = spec.epochs();
    let mut handoff = HandoffLayer::default();
    let mut epoch_records = Vec::with_capacity(epochs as usize);
    let mut processed_before = 0u64;
    // Chaos state. The chaos journal is separate from the tenant
    // journals so recoverable faults leave the merged fleet journal
    // byte-identical.
    let mut chaos_tel = if spec.telemetry && chaos_on {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let mut recovery = RecoveryReport::default();
    let mut quarantines: Vec<QuarantineRecord> = Vec::new();
    let mut quarantined_telemetry: Vec<TelemetrySnapshot> = Vec::new();
    let mut checkpoints: Vec<Option<SlotCheckpoint>> = (0..spec.tenants).map(|_| None).collect();
    let mut logs: Vec<Vec<TimedEvent>> = (0..spec.tenants).map(|_| Vec::new()).collect();
    let mut epoch_pumped: Vec<u64> = vec![0; spec.tenants];
    for epoch in 0..epochs {
        handoff.install_due(&mut shards, epoch)?;
        let faults = plan.for_epoch(epoch as usize);
        let epoch_faulted = !faults.is_empty();
        let epoch_start = epoch as f64 * spec.epoch;
        let epoch_end = spec.horizon.min((epoch + 1) as f64 * spec.epoch);

        // Decode this epoch's faults into per-tenant/per-shard targets.
        // Faults naming tenants that are parked (in transit) or already
        // quarantined never fire: a parked tenant pumps and drains
        // nothing, and a quarantined one has no slot.
        let mut drop_at: Vec<Option<u64>> = vec![None; spec.tenants];
        let mut dup_at: Vec<Option<u64>> = vec![None; spec.tenants];
        let mut crash: Vec<bool> = vec![false; spec.tenants];
        let mut corrupt_live: Vec<bool> = vec![false; spec.tenants];
        let mut corrupt_cp: Vec<bool> = vec![false; spec.tenants];
        let mut wedge: Vec<bool> = vec![false; spec.tenants];
        let mut panic_pending: Vec<usize> = Vec::new();
        for fault in faults {
            match *fault {
                FaultKind::ShardPanic { shard } if shard < shards.len() => {
                    panic_pending.push(shard);
                }
                FaultKind::TenantCrash { tenant } if (tenant as usize) < spec.tenants => {
                    crash[tenant as usize] = true;
                }
                FaultKind::ChannelDrop { tenant, nth } if (tenant as usize) < spec.tenants => {
                    drop_at[tenant as usize] = Some(nth);
                }
                FaultKind::ChannelDup { tenant, nth } if (tenant as usize) < spec.tenants => {
                    dup_at[tenant as usize] = Some(nth);
                }
                FaultKind::CorruptState { tenant } if (tenant as usize) < spec.tenants => {
                    corrupt_live[tenant as usize] = true;
                }
                FaultKind::CorruptCheckpoint { tenant } if (tenant as usize) < spec.tenants => {
                    corrupt_cp[tenant as usize] = true;
                }
                FaultKind::WedgeDrain { tenant } if (tenant as usize) < spec.tenants => {
                    wedge[tenant as usize] = true;
                }
                _ => {}
            }
        }

        // Checkpoint every installed tenant at the faulted epoch's start
        // (after install_due, so a freshly installed tenant is covered)
        // and reset the epoch's replay logs and pump counters.
        if epoch_faulted {
            for (t, log) in logs.iter_mut().enumerate() {
                log.clear();
                epoch_pumped[t] = 0;
            }
            for shard in &mut shards {
                let shard_id = shard.id() as u64;
                let tenants = shard.tenants() as u64;
                for slot in shard.slots_mut() {
                    let t = slot.tenant().as_usize();
                    checkpoints[t] = Some(slot.checkpoint());
                    recovery.checkpoints += 1;
                    if wedge[t] {
                        slot.set_wedged(true);
                        recovery.faults_injected += 1;
                    }
                }
                chaos_tel.emit(epoch_start, epoch, || EventKind::CheckpointTaken {
                    shard: shard_id,
                    tenants,
                });
            }
            for (t, wedged) in wedge.iter().enumerate() {
                if *wedged {
                    let shard = shards
                        .iter()
                        .position(|s| s.slots().iter().any(|x| x.tenant().as_usize() == t));
                    if let Some(shard) = shard {
                        chaos_tel.emit(epoch_start, epoch, || EventKind::FaultInjected {
                            cause: "wedge_drain".into(),
                            shard: shard as u64,
                            tenant: t as u64,
                        });
                    }
                }
            }
        }

        // The final epoch flushes everything, horizon-clamped streams
        // included, so no event is left behind a fractional boundary.
        let boundary = if epoch + 1 == epochs {
            f64::MAX
        } else {
            (epoch + 1) as f64 * spec.epoch
        };
        loop {
            let pumped = {
                let mut ctx = PumpChaos {
                    drop_at: &drop_at,
                    dup_at: &dup_at,
                    pumped: &mut epoch_pumped,
                    logs: &mut logs,
                };
                pump(
                    &mut streams,
                    &mut pending,
                    &mut shards,
                    boundary,
                    epoch_faulted.then_some(&mut ctx),
                )
            };
            let buffered: usize = shards.iter().map(Shard::buffered).sum();
            if pumped == 0 && buffered == 0 {
                break;
            }
            let drained = if chaos_on {
                // Supervised drain: each worker's panic is contained by
                // `catch_task`, so the shards (borrowed mutably through
                // the pool) survive the unwind mid-drain.
                let inject: Vec<Option<u64>> = shards
                    .iter()
                    .map(|s| {
                        (panic_pending.contains(&s.id()) && s.buffered() > 0)
                            .then(|| (s.buffered() as u64).div_ceil(2))
                    })
                    .collect();
                let results = par_map_indexed(
                    threads,
                    shards.iter_mut().collect::<Vec<&mut Shard>>(),
                    |i, shard: &mut Shard| {
                        catch_task(i, || {
                            if let Some(limit) = inject[i] {
                                shard.drain_upto(limit);
                                panic!("injected shard-worker panic");
                            }
                            shard.drain_round()
                        })
                    },
                )
                .map_err(FleetError::Pool)?;
                let mut drained = 0;
                for (i, result) in results.into_iter().enumerate() {
                    match result {
                        Ok(n) => drained += n,
                        Err(_panic) => {
                            // The worker died mid-drain: restore every
                            // tenant of the poisoned shard from its
                            // epoch checkpoint, clear its channels, and
                            // replay the epoch's pumped events so far.
                            panic_pending.retain(|&s| s != i);
                            recovery.faults_injected += 1;
                            let shard = &mut shards[i];
                            let first_tenant = shard
                                .slots()
                                .first()
                                .map_or(u64::MAX, |s| u64::from(s.tenant().as_u32()));
                            chaos_tel.emit(epoch_end, epoch, || EventKind::FaultInjected {
                                cause: "shard_panic".into(),
                                shard: i as u64,
                                tenant: first_tenant,
                            });
                            let mut replayed = 0;
                            let mut delta = 0i64;
                            for slot in shard.slots_mut() {
                                let t = slot.tenant().as_usize();
                                let Some(checkpoint) = checkpoints[t].as_ref() else {
                                    continue;
                                };
                                let before = slot.processed();
                                slot.restore(checkpoint).map_err(|_| {
                                    FleetError::RestoreFailed {
                                        tenant: slot.tenant(),
                                        epoch,
                                    }
                                })?;
                                replayed += slot.replay(&logs[t]);
                                delta += slot.processed() as i64 - before as i64;
                            }
                            shard.adjust_processed(delta);
                            recovery.shard_restores += 1;
                            recovery.events_replayed += replayed;
                            chaos_tel.emit(epoch_end, epoch, || EventKind::ShardRestored {
                                shard: i as u64,
                                replayed,
                            });
                            // Replay is forward progress for the stall
                            // guard: the shard's channels are empty now.
                            drained += replayed;
                        }
                    }
                }
                drained
            } else {
                let results = par_map_indexed(threads, shards, |_, mut shard| {
                    let drained = shard.drain_round();
                    (shard, drained)
                })
                .map_err(FleetError::Pool)?;
                let mut drained = 0;
                shards = results
                    .into_iter()
                    .map(|(shard, n)| {
                        drained += n;
                        shard
                    })
                    .collect();
                drained
            };
            if pumped == 0 && drained == 0 {
                // Nothing moved this round but events are still
                // buffered: the epoch loop would spin forever. Surface
                // the first stuck tenant instead.
                let tenant = shards
                    .iter()
                    .flat_map(Shard::slots)
                    .find(|slot| slot.buffered() > 0)
                    .map_or(TenantId::new(0), TenantSlot::tenant);
                return Err(FleetError::PumpStalled { tenant, epoch });
            }
        }

        // Epoch-boundary fault application + recovery sweep: inject the
        // boundary faults, then restore every tenant that crashed, saw a
        // channel fault fire, or fails the conservation invariant —
        // quarantining those whose checkpoint is corrupt.
        if epoch_faulted {
            let drop_fired = |t: usize| drop_at[t].is_some_and(|nth| epoch_pumped[t] > nth);
            let dup_fired = |t: usize| dup_at[t].is_some_and(|nth| epoch_pumped[t] > nth);
            for (si, shard) in shards.iter_mut().enumerate() {
                let mut delta = 0i64;
                let mut replayed = 0u64;
                let mut restored_any = false;
                let mut to_quarantine: Vec<(TenantId, &'static str)> = Vec::new();
                for slot in shard.slots_mut() {
                    let t = slot.tenant().as_usize();
                    slot.set_wedged(false);
                    if corrupt_live[t] || corrupt_cp[t] {
                        slot.corrupt_conservation();
                        recovery.faults_injected += 1;
                        let cause = if corrupt_cp[t] {
                            "corrupt_checkpoint"
                        } else {
                            "corrupt_state"
                        };
                        chaos_tel.emit(epoch_end, epoch, || EventKind::FaultInjected {
                            cause: cause.into(),
                            shard: si as u64,
                            tenant: t as u64,
                        });
                        if corrupt_cp[t] {
                            if let Some(checkpoint) = checkpoints[t].as_mut() {
                                checkpoint.valid = false;
                            }
                        }
                    }
                    if crash[t] {
                        recovery.faults_injected += 1;
                        chaos_tel.emit(epoch_end, epoch, || EventKind::FaultInjected {
                            cause: "tenant_crash".into(),
                            shard: si as u64,
                            tenant: t as u64,
                        });
                    }
                    if drop_fired(t) {
                        recovery.faults_injected += 1;
                        chaos_tel.emit(epoch_end, epoch, || EventKind::FaultInjected {
                            cause: "channel_drop".into(),
                            shard: si as u64,
                            tenant: t as u64,
                        });
                    }
                    if dup_fired(t) {
                        recovery.faults_injected += 1;
                        chaos_tel.emit(epoch_end, epoch, || EventKind::FaultInjected {
                            cause: "channel_dup".into(),
                            shard: si as u64,
                            tenant: t as u64,
                        });
                    }
                    let report = slot.report();
                    let conserved = report.admitted + report.retry_admitted
                        == report.active + report.departed + report.shed;
                    let needs_recovery = crash[t] || drop_fired(t) || dup_fired(t) || !conserved;
                    if !needs_recovery {
                        continue;
                    }
                    let Some(checkpoint) = checkpoints[t].as_ref() else {
                        continue;
                    };
                    if !checkpoint.valid {
                        to_quarantine.push((slot.tenant(), "corrupt_checkpoint"));
                        continue;
                    }
                    let before = slot.processed();
                    slot.restore(checkpoint)
                        .map_err(|_| FleetError::RestoreFailed {
                            tenant: slot.tenant(),
                            epoch,
                        })?;
                    replayed += slot.replay(&logs[t]);
                    delta += slot.processed() as i64 - before as i64;
                    restored_any = true;
                    recovery.tenant_restores += 1;
                }
                shard.adjust_processed(delta);
                if restored_any {
                    recovery.events_replayed += replayed;
                    chaos_tel.emit(epoch_end, epoch, || EventKind::ShardRestored {
                        shard: si as u64,
                        replayed,
                    });
                }
                for (tenant, cause) in to_quarantine {
                    let slot = shard.retire(tenant);
                    debug_assert!(slot.is_some(), "quarantined tenant was installed");
                    drop(slot);
                    let t = tenant.as_usize();
                    let Some(checkpoint) = checkpoints[t].take() else {
                        continue;
                    };
                    recovery.tenants_quarantined += 1;
                    chaos_tel.emit(epoch_end, epoch, || EventKind::TenantQuarantined {
                        tenant: u64::from(tenant.as_u32()),
                        cause: cause.into(),
                    });
                    quarantined_telemetry.push(checkpoint.telemetry);
                    quarantines.push(QuarantineRecord {
                        tenant,
                        epoch,
                        cause,
                        report: checkpoint.report,
                    });
                }
            }
        }

        let processed_now: u64 = shards.iter().map(Shard::processed).sum();
        let mut record = fleet_totals(&shards, &handoff, &quarantines, epoch, epoch_end);
        record.events = processed_now - processed_before;
        processed_before = processed_now;
        epoch_records.push(record);
        // Initiate a handoff only when its install epoch still exists.
        if spec.rebalance_every > 0 && (epoch + 1) % spec.rebalance_every == 0 && epoch + 2 < epochs
        {
            handoff.initiate(&mut shards, epoch, spec.epoch)?;
        }
    }
    debug_assert!(handoff.idle(), "every handoff installs before the run ends");
    let migrations = handoff.records().to_vec();
    // Close every tenant at the horizon and merge journals per shard in
    // shard-id order (tenant order within each shard).
    let shard_events: Vec<u64> = shards.iter().map(Shard::processed).collect();
    let mut tenant_reports: Vec<(TenantId, ControllerReport)> = Vec::with_capacity(spec.tenants);
    let mut parts: Vec<TelemetryArtifacts> = Vec::with_capacity(spec.tenants);
    for shard in shards {
        for (tenant, report, artifacts) in shard.finish(spec.horizon) {
            tenant_reports.push((tenant, report));
            parts.push(artifacts);
        }
    }
    // Quarantined tenants contribute their frozen checkpoint state:
    // counters into the totals, checkpoint-time journal after the live
    // shards' parts (quarantine order, which is deterministic).
    for (quarantine, telemetry) in quarantines.iter().zip(quarantined_telemetry) {
        tenant_reports.push((quarantine.tenant, quarantine.report.clone()));
        let mut session = Telemetry::disabled();
        session.restore(&telemetry);
        parts.push(session.finish());
    }
    let artifacts = TelemetryArtifacts::merged(parts);
    tenant_reports.sort_by_key(|(tenant, _)| *tenant);
    let mut report = FleetReport {
        tenants: spec.tenants,
        shards: spec.shards,
        epochs,
        events: shard_events.iter().sum(),
        admitted: 0,
        rejected: 0,
        departed: 0,
        shed: 0,
        retry_admitted: 0,
        active: 0,
        migrations: migrations.len() as u64,
        migration_cost: migrations
            .iter()
            .map(|m| m.carried_active + m.carried_retry)
            .sum(),
        mean_rebalance_latency: if migrations.is_empty() {
            0.0
        } else {
            migrations.iter().map(|m| m.latency).sum::<f64>() / migrations.len() as f64
        },
        shard_events,
    };
    for (_, r) in &tenant_reports {
        report.admitted += r.admitted;
        report.rejected += r.rejected;
        report.departed += r.departed;
        report.shed += r.shed;
        report.retry_admitted += r.retry_admitted;
        report.active += r.active;
    }
    Ok(FleetOutcome {
        report,
        epoch_records,
        migrations,
        tenant_reports,
        artifacts,
        recovery,
        quarantines,
        chaos_artifacts: chaos_tel.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fleet_conserves_and_migrates() {
        let outcome = run(&FleetSpec::smoke()).unwrap();
        let report = &outcome.report;
        assert!(report.events > 0);
        assert!(report.admitted > 0);
        assert_eq!(
            report.admitted + report.retry_admitted,
            report.active + report.departed + report.shed,
            "fleet-wide conservation"
        );
        for record in &outcome.epoch_records {
            assert!(record.conserved(), "epoch {} conserves", record.epoch);
        }
        assert_eq!(report.epochs as usize, outcome.epoch_records.len());
        assert_eq!(report.events, report.shard_events.iter().sum::<u64>());
    }

    #[test]
    fn same_spec_runs_are_byte_identical() {
        let spec = FleetSpec::smoke();
        let a = run(&spec).unwrap();
        let b = run(&spec).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.epoch_records, b.epoch_records);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.tenant_reports, b.tenant_reports);
        assert_eq!(
            a.artifacts.journal_jsonl(),
            b.artifacts.journal_jsonl(),
            "merged journals byte-identical"
        );
    }

    #[test]
    fn invalid_specs_are_refused() {
        let mut spec = FleetSpec::smoke();
        spec.tenants = 0;
        assert!(matches!(run(&spec), Err(FleetError::InvalidSpec(_))));
        let mut spec = FleetSpec::smoke();
        spec.epoch = 0.0;
        assert!(matches!(run(&spec), Err(FleetError::InvalidSpec(_))));
        let mut spec = FleetSpec::smoke();
        spec.channel_capacity = 0;
        assert!(matches!(run(&spec), Err(FleetError::InvalidSpec(_))));
    }

    #[test]
    fn rebalancing_moves_tenants_without_changing_tenant_outcomes() {
        // The same fleet with handoff disabled: tenants are independent,
        // so per-tenant reports must be identical — migration moves
        // *where* a tenant runs, never *what* it computes.
        let with = run(&FleetSpec::smoke()).unwrap();
        let without = run(&FleetSpec {
            rebalance_every: 0,
            ..FleetSpec::smoke()
        })
        .unwrap();
        assert!(
            with.report.migrations > 0,
            "smoke spec must exercise handoff"
        );
        assert_eq!(without.report.migrations, 0);
        assert_eq!(with.tenant_reports, without.tenant_reports);
    }
}
