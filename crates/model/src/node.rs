//! Computing nodes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Capacity, NodeId};

/// A computing node `v ∈ V` (a commodity server) with a CPU-bounded resource
/// capacity `A_v`.
///
/// Following the paper's model (§III.A), CPU is the bottleneck resource;
/// memory and bandwidth are assumed sufficient and are not modeled as
/// first-class fields. One capacity unit corresponds to handling one workload
/// unit per second (64-byte packets at 10 kpps in the paper's calibration;
/// one physical core ≈ 150 units).
///
/// # Examples
///
/// ```
/// use nfv_model::{Capacity, ComputeNode, NodeId};
/// # fn main() -> Result<(), nfv_model::ModelError> {
/// let node = ComputeNode::new(NodeId::new(0), Capacity::new(5000.0)?);
/// // 5000 units ≈ 34 CPU cores at 150 units/core.
/// assert!((node.approx_cpu_cores() - 33.33).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeNode {
    id: NodeId,
    capacity: Capacity,
}

/// Resource units provided by one physical CPU core (paper §V.A.2: one core
/// handles 64-byte packets at 1.5 Mpps = 150 × 10 kpps).
pub const UNITS_PER_CORE: f64 = 150.0;

impl ComputeNode {
    /// Creates a node with the given identity and capacity.
    #[must_use]
    pub const fn new(id: NodeId, capacity: Capacity) -> Self {
        Self { id, capacity }
    }

    /// The node's identifier.
    #[must_use]
    pub const fn id(&self) -> NodeId {
        self.id
    }

    /// The node's resource capacity `A_v`.
    #[must_use]
    pub const fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Approximate number of physical CPU cores this capacity corresponds to
    /// under the paper's calibration (150 units per core).
    #[must_use]
    pub fn approx_cpu_cores(&self) -> f64 {
        self.capacity.value() / UNITS_PER_CORE
    }
}

impl fmt::Display for ComputeNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.id, self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_exposes_identity_and_capacity() {
        let node = ComputeNode::new(NodeId::new(3), Capacity::new(150.0).unwrap());
        assert_eq!(node.id(), NodeId::new(3));
        assert_eq!(node.capacity().value(), 150.0);
        assert!((node.approx_cpu_cores() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_id_and_units() {
        let node = ComputeNode::new(NodeId::new(1), Capacity::new(42.0).unwrap());
        assert_eq!(node.to_string(), "node1 (42 units)");
    }
}
