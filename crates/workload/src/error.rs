//! Error type for workload generation and validation.

use std::error::Error;
use std::fmt;

use nfv_model::{ModelError, RequestId, VnfId};

/// Error returned when a workload cannot be generated or fails validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A generator parameter was invalid.
    InvalidParameter {
        /// Description of the violated requirement.
        reason: &'static str,
    },
    /// A request's chain references a VNF not present in the scenario.
    UnknownVnf {
        /// The request whose chain is dangling.
        request: RequestId,
        /// The missing VNF.
        vnf: VnfId,
    },
    /// A VNF deploys more instances than it has requests, violating the
    /// paper's Eq. (3) (`M_f ≤ Σ_r U_r^f`).
    TooManyInstances {
        /// The offending VNF.
        vnf: VnfId,
        /// Deployed instance count `M_f`.
        instances: u32,
        /// Number of requests using the VNF.
        users: usize,
    },
    /// A VNF is not used by any request; the scenario would carry dead
    /// weight that the paper's model excludes.
    UnusedVnf {
        /// The unused VNF.
        vnf: VnfId,
    },
    /// A model-level constructor rejected generated values (should not occur
    /// for in-range parameters; surfaced rather than panicking).
    Model(ModelError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            Self::UnknownVnf { request, vnf } => {
                write!(f, "{request} references unknown {vnf}")
            }
            Self::TooManyInstances {
                vnf,
                instances,
                users,
            } => write!(
                f,
                "{vnf} deploys {instances} instances but only {users} requests use it"
            ),
            Self::UnusedVnf { vnf } => write!(f, "{vnf} is not used by any request"),
            Self::Model(err) => write!(f, "model error: {err}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Model(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ModelError> for WorkloadError {
    fn from(err: ModelError) -> Self {
        Self::Model(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let err = WorkloadError::TooManyInstances {
            vnf: VnfId::new(2),
            instances: 5,
            users: 3,
        };
        let s = err.to_string();
        assert!(s.contains("vnf2") && s.contains('5') && s.contains('3'));
    }

    #[test]
    fn model_errors_convert_and_chain() {
        let model_err = ModelError::EmptyChain;
        let err: WorkloadError = model_err.clone().into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("model error"));
    }
}
