//! The VNF catalog: per-kind deployment profiles.

use nfv_model::{Demand, ModelError, ServiceRate, Vnf, VnfId, VnfKind};
use serde::{Deserialize, Serialize};

/// Deployment profile of one VNF kind: typical per-instance demand and
/// service rate.
///
/// The numbers are calibrated against the paper's unit system (1 unit =
/// 64-byte packets at 10 kpps; 1 CPU core = 150 units) and the relative
/// compute weight of each middlebox class reported in the NFV energy study
/// the paper cites for calibration (Xu et al., IWQoS'16): lightweight
/// header-rewriting functions (NAT, flow monitor) cost a fraction of a core,
/// payload-inspecting functions (DPI, WAN optimizer) several times more.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VnfProfile {
    /// Per-instance resource demand in capacity units.
    pub demand_units: f64,
    /// Per-instance exponential service rate in packets per second.
    pub service_rate_pps: f64,
}

/// A catalog assigning a [`VnfProfile`] to every [`VnfKind`], used to
/// instantiate VNF sets of any size (the paper sweeps 6–30 VNFs; beyond the
/// nine named kinds the catalog cycles with [`VnfKind::Custom`] variants).
///
/// # Examples
///
/// ```
/// use nfv_workload::VnfCatalog;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let catalog = VnfCatalog::standard();
/// let vnfs = catalog.instantiate(12, &[2, 3])?; // alternate 2 and 3 instances
/// assert_eq!(vnfs.len(), 12);
/// assert_eq!(vnfs[0].instances(), 2);
/// assert_eq!(vnfs[1].instances(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VnfCatalog {
    profiles: Vec<(VnfKind, VnfProfile)>,
}

impl VnfCatalog {
    /// The standard nine-kind catalog with calibrated profiles.
    #[must_use]
    pub fn standard() -> Self {
        let profiles = vec![
            (
                VnfKind::Nat,
                VnfProfile {
                    demand_units: 15.0,
                    service_rate_pps: 120.0,
                },
            ),
            (
                VnfKind::Firewall,
                VnfProfile {
                    demand_units: 30.0,
                    service_rate_pps: 100.0,
                },
            ),
            (
                VnfKind::Ids,
                VnfProfile {
                    demand_units: 60.0,
                    service_rate_pps: 80.0,
                },
            ),
            (
                VnfKind::LoadBalancer,
                VnfProfile {
                    demand_units: 20.0,
                    service_rate_pps: 110.0,
                },
            ),
            (
                VnfKind::WanOptimizer,
                VnfProfile {
                    demand_units: 90.0,
                    service_rate_pps: 60.0,
                },
            ),
            (
                VnfKind::FlowMonitor,
                VnfProfile {
                    demand_units: 10.0,
                    service_rate_pps: 140.0,
                },
            ),
            (
                VnfKind::Ips,
                VnfProfile {
                    demand_units: 70.0,
                    service_rate_pps: 75.0,
                },
            ),
            (
                VnfKind::Dpi,
                VnfProfile {
                    demand_units: 120.0,
                    service_rate_pps: 50.0,
                },
            ),
            (
                VnfKind::ProxyCache,
                VnfProfile {
                    demand_units: 45.0,
                    service_rate_pps: 95.0,
                },
            ),
        ];
        Self { profiles }
    }

    /// Creates a catalog from explicit (kind, profile) pairs.
    #[must_use]
    pub fn from_profiles(profiles: Vec<(VnfKind, VnfProfile)>) -> Self {
        Self { profiles }
    }

    /// Number of distinct kinds in the catalog.
    #[must_use]
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The profile for `kind`, if present.
    #[must_use]
    pub fn profile(&self, kind: VnfKind) -> Option<VnfProfile> {
        self.profiles
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, p)| *p)
    }

    /// The kind and profile at catalog position `i` (cycling past the end,
    /// with repeats renamed to [`VnfKind::Custom`] so ids stay distinct).
    #[must_use]
    pub fn kind_at(&self, i: usize) -> (VnfKind, VnfProfile) {
        let (kind, profile) = self.profiles[i % self.profiles.len()];
        if i < self.profiles.len() {
            (kind, profile)
        } else {
            (VnfKind::Custom(i as u16), profile)
        }
    }

    /// Instantiates `count` VNFs with ids `0..count`, cycling through the
    /// catalog. `instance_counts` is cycled to assign `M_f` per VNF.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if `instance_counts` is empty or contains a
    /// zero (every VNF needs `M_f ≥ 1`).
    pub fn instantiate(
        &self,
        count: usize,
        instance_counts: &[u32],
    ) -> Result<Vec<Vnf>, ModelError> {
        if instance_counts.is_empty() {
            return Err(ModelError::MissingField {
                field: "instance_counts",
            });
        }
        (0..count)
            .map(|i| {
                let (kind, profile) = self.kind_at(i);
                Vnf::builder(VnfId::new(i as u32), kind)
                    .demand_per_instance(Demand::new(profile.demand_units)?)
                    .instances(instance_counts[i % instance_counts.len()])
                    .service_rate(ServiceRate::new(profile.service_rate_pps)?)
                    .build()
            })
            .collect()
    }
}

impl Default for VnfCatalog {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_covers_named_kinds() {
        let catalog = VnfCatalog::standard();
        assert_eq!(catalog.len(), 9);
        for kind in VnfKind::NAMED {
            assert!(
                catalog.profile(kind).is_some(),
                "missing profile for {kind}"
            );
        }
    }

    #[test]
    fn profiles_are_positive() {
        for (_, p) in &VnfCatalog::standard().profiles {
            assert!(p.demand_units > 0.0 && p.service_rate_pps > 0.0);
        }
    }

    #[test]
    fn instantiate_cycles_kinds_and_keeps_ids_distinct() {
        let catalog = VnfCatalog::standard();
        let vnfs = catalog.instantiate(20, &[1]).unwrap();
        assert_eq!(vnfs.len(), 20);
        // Ids are 0..20 in order.
        for (i, vnf) in vnfs.iter().enumerate() {
            assert_eq!(vnf.id().as_usize(), i);
        }
        // Beyond the ninth, kinds become Custom so names stay distinct.
        assert_eq!(vnfs[9].kind(), VnfKind::Custom(9));
        // But the demand profile still cycles.
        assert_eq!(vnfs[9].demand_per_instance(), vnfs[0].demand_per_instance());
    }

    #[test]
    fn instance_counts_cycle() {
        let vnfs = VnfCatalog::standard().instantiate(5, &[1, 2]).unwrap();
        let counts: Vec<u32> = vnfs.iter().map(Vnf::instances).collect();
        assert_eq!(counts, vec![1, 2, 1, 2, 1]);
    }

    #[test]
    fn empty_instance_counts_is_an_error() {
        assert!(VnfCatalog::standard().instantiate(3, &[]).is_err());
    }

    #[test]
    fn zero_instances_surface_model_error() {
        let err = VnfCatalog::standard().instantiate(1, &[0]).unwrap_err();
        assert!(matches!(err, ModelError::NoInstances { .. }));
    }
}
