//! Exact branch-and-bound oracle for small placement instances.
//!
//! Used by tests and benches to verify BFDSU's factor-2 worst-case bound
//! (Theorem 2) and to measure how close the heuristics get to optimal.
//! Runtime is exponential in `|F|`; intended for instances with at most
//! roughly a dozen VNFs and nodes.

use nfv_model::VnfId;

use crate::support::vnfs_by_decreasing_demand;
use crate::PlacementProblem;

/// The minimal number of nodes in service over all feasible placements, or
/// `None` if the instance is infeasible.
///
/// Branch-and-bound over VNFs in decreasing-demand order: each VNF tries
/// every node with room plus at most one currently-empty node (empty nodes
/// of equal capacity are interchangeable, deduplicated by capacity), pruning
/// branches that already use at least as many nodes as the incumbent.
///
/// # Examples
///
/// ```
/// use nfv_model::{Capacity, ComputeNode, Demand, NodeId, ServiceRate, Vnf, VnfId, VnfKind};
/// use nfv_placement::{exact, PlacementProblem};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nodes = vec![
///     ComputeNode::new(NodeId::new(0), Capacity::new(100.0)?),
///     ComputeNode::new(NodeId::new(1), Capacity::new(100.0)?),
/// ];
/// let vnfs = vec![
///     Vnf::builder(VnfId::new(0), VnfKind::Nat)
///         .demand_per_instance(Demand::new(60.0)?)
///         .service_rate(ServiceRate::new(1.0)?)
///         .build()?,
///     Vnf::builder(VnfId::new(1), VnfKind::Firewall)
///         .demand_per_instance(Demand::new(60.0)?)
///         .service_rate(ServiceRate::new(1.0)?)
///         .build()?,
/// ];
/// let problem = PlacementProblem::new(nodes, vnfs)?;
/// assert_eq!(exact::optimal_node_count(&problem), Some(2));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn optimal_node_count(problem: &PlacementProblem) -> Option<usize> {
    if problem.check_necessary_feasibility().is_err() {
        return None;
    }
    let order = vnfs_by_decreasing_demand(problem);
    let demands: Vec<f64> = order
        .iter()
        .map(|&v| problem.demand_of(v).value())
        .collect();
    let mut remaining: Vec<f64> = problem
        .nodes()
        .iter()
        .map(|n| n.capacity().value())
        .collect();
    let mut best = usize::MAX;
    let lower = problem.lower_bound_nodes();
    search(&demands, 0, &mut remaining, problem, 0, &mut best, lower);
    (best != usize::MAX).then_some(best)
}

fn search(
    demands: &[f64],
    idx: usize,
    remaining: &mut Vec<f64>,
    problem: &PlacementProblem,
    used: usize,
    best: &mut usize,
    lower: usize,
) {
    if used >= *best {
        return; // cannot improve
    }
    if idx == demands.len() {
        *best = used;
        return;
    }
    if *best == lower {
        return; // already optimal
    }
    let demand = demands[idx];
    let capacities: Vec<f64> = problem
        .nodes()
        .iter()
        .map(|n| n.capacity().value())
        .collect();
    let mut tried_empty_caps: Vec<f64> = Vec::new();
    for i in 0..remaining.len() {
        if demand > remaining[i] * (1.0 + 1e-12) + 1e-12 {
            continue;
        }
        let is_empty = remaining[i] == capacities[i];
        if is_empty {
            // Empty nodes of equal capacity are interchangeable.
            if tried_empty_caps.iter().any(|&c| c == capacities[i]) {
                continue;
            }
            tried_empty_caps.push(capacities[i]);
        }
        let saved = remaining[i];
        remaining[i] -= demand;
        search(
            demands,
            idx + 1,
            remaining,
            problem,
            used + usize::from(is_empty),
            best,
            lower,
        );
        remaining[i] = saved;
    }
}

/// Exhaustively checks feasibility of a small instance (equivalent to
/// `optimal_node_count(problem).is_some()`).
#[must_use]
pub fn is_feasible(problem: &PlacementProblem) -> bool {
    optimal_node_count(problem).is_some()
}

/// The ids of the VNFs in the order the oracle branches on them
/// (decreasing demand); exposed so tests can correlate oracle traces.
#[must_use]
pub fn branching_order(problem: &PlacementProblem) -> Vec<VnfId> {
    vnfs_by_decreasing_demand(problem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_model::{Capacity, ComputeNode, Demand, NodeId, ServiceRate, Vnf, VnfKind};

    fn problem(caps: &[f64], demands: &[f64]) -> PlacementProblem {
        let nodes = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| ComputeNode::new(NodeId::new(i as u32), Capacity::new(c).unwrap()))
            .collect();
        let vnfs = demands
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                Vnf::builder(VnfId::new(i as u32), VnfKind::Custom(i as u16))
                    .demand_per_instance(Demand::new(d).unwrap())
                    .service_rate(ServiceRate::new(1.0).unwrap())
                    .build()
                    .unwrap()
            })
            .collect();
        PlacementProblem::new(nodes, vnfs).unwrap()
    }

    #[test]
    fn packs_perfect_partition() {
        // 60+40 | 60+40 on two nodes of 100.
        let p = problem(&[100.0, 100.0], &[60.0, 60.0, 40.0, 40.0]);
        assert_eq!(optimal_node_count(&p), Some(2));
    }

    #[test]
    fn single_node_when_everything_fits() {
        let p = problem(&[100.0, 100.0], &[30.0, 30.0, 30.0]);
        assert_eq!(optimal_node_count(&p), Some(1));
    }

    #[test]
    fn detects_infeasible_instances() {
        assert_eq!(optimal_node_count(&problem(&[10.0], &[20.0])), None);
        // Necessary conditions pass but packing is impossible:
        // 60, 40, 40 into 75 + 75.
        assert_eq!(
            optimal_node_count(&problem(&[75.0, 75.0], &[60.0, 40.0, 40.0])),
            None
        );
        assert!(!is_feasible(&problem(&[75.0, 75.0], &[60.0, 40.0, 40.0])));
    }

    #[test]
    fn heterogeneous_capacities() {
        // 90 must go on the 100-node; 50+10 fit on the 60-node.
        let p = problem(&[100.0, 60.0], &[90.0, 50.0, 10.0]);
        assert_eq!(optimal_node_count(&p), Some(2));
        // But 90 + 10 on node0 and 50 on node1 also works; both use 2.
    }

    #[test]
    fn oracle_matches_lower_bound_when_tight() {
        let p = problem(&[100.0, 100.0, 100.0], &[50.0, 50.0, 50.0, 50.0]);
        assert_eq!(optimal_node_count(&p), Some(2));
        assert_eq!(p.lower_bound_nodes(), 2);
    }

    #[test]
    fn branching_order_is_decreasing() {
        let p = problem(&[100.0], &[10.0, 30.0, 20.0]);
        let order = branching_order(&p);
        let d: Vec<f64> = order.iter().map(|&v| p.demand_of(v).value()).collect();
        assert!(d.windows(2).all(|w| w[0] >= w[1]));
    }
}
