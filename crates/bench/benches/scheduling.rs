//! Criterion micro-benchmarks for the scheduling algorithms (the §IV.D
//! complexity claims: RCKK `O(n·m·log m)` vs CGA's search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfv_bench::arrival_rates;
use nfv_scheduling::{Cga, Ckk, KkForward, Rckk, RoundRobin, Scheduler};

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling");
    for &(requests, instances) in &[(50usize, 5usize), (250, 5), (1000, 10), (250, 25)] {
        let rates = arrival_rates(requests, 3);
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(Rckk::new()),
            Box::new(KkForward::new()),
            Box::new(Cga::new()),
            Box::new(RoundRobin::new()),
        ];
        for scheduler in &schedulers {
            group.bench_with_input(
                BenchmarkId::new(scheduler.name(), format!("{requests}r-{instances}i")),
                &rates,
                |b, rates| {
                    b.iter(|| scheduler.schedule(rates, instances).expect("valid fixture"));
                },
            );
        }
    }
    // The complete searches only on a small instance, to document why the
    // paper replaces them.
    let small = arrival_rates(16, 4);
    group.bench_function("ckk-search/16r-3i", |b| {
        let ckk = Ckk::new().with_leaf_budget(10_000);
        b.iter(|| ckk.schedule(&small, 3).expect("valid fixture"));
    });
    group.bench_function("cga-search/16r-3i", |b| {
        let cga = Cga::new().with_leaf_budget(10_000);
        b.iter(|| cga.schedule(&small, 3).expect("valid fixture"));
    });
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
