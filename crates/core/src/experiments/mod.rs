//! Parameterized experiment runners reproducing the paper's evaluation.
//!
//! Each submodule owns one family of experiments:
//!
//! * [`placement`] — Figs. 5–10: average resource utilization, nodes in
//!   service, resource occupation and iteration counts for BFDSU vs FFD vs
//!   NAH;
//! * [`scheduling`] — Figs. 11–14 and the tail statistics: average and
//!   99th-percentile response time for RCKK vs CGA; Figs. 15–16: job
//!   rejection rates under admission control;
//! * [`joint`] — the combined pipeline and the Eq. (16) total-latency
//!   comparison (the paper's headline numbers);
//! * [`validation`] — closed-form Jackson analytics vs the discrete-event
//!   simulator;
//! * [`churn`] — the online control plane under a streaming churn trace:
//!   pure online dispatch vs bounded periodic re-optimization vs the
//!   full-rebalance oracle;
//! * [`resilience`] — node-level failure domains: tick-bound vs emergency
//!   re-placement crossed with the retry/backoff admission queue, scored
//!   on availability, recovery time and requests lost;
//! * [`anytime`] — the metaheuristic placement searchers (`nfv-search`,
//!   GA + PSO): solution quality as a function of generations spent
//!   against the greedy placers and the exact oracle, plus the
//!   controller's background-refiner replay;
//! * [`replay`] — ingestion throughput: a streamed million-event churn
//!   trace through the controller's exact and batched replay paths,
//!   scored in events per wall-clock second;
//! * [`fleet`] — multi-tenant scale: 8/64/256 independent tenant
//!   controllers sharded over the thread pool under one virtual clock,
//!   scored on cross-shard migration cost and rebalance latency;
//! * [`chaos`] — crash recovery under seeded fault injection: the fleet
//!   disturbed by worker panics, tenant crashes, and channel faults,
//!   recovered through epoch checkpoints + event replay, scored on
//!   replay overhead, availability, and inline byte-identity.
//!
//! Runners return a [`Sweep`]: the x-axis points and one y-series per
//! algorithm, convertible to a plain-text table — the same rows the paper
//! plots. All runners take a base seed and a repetition count; results are
//! deterministic for fixed inputs.

pub mod anytime;
pub mod chaos;
pub mod churn;
pub mod fleet;
pub mod joint;
pub mod placement;
pub mod replay;
pub mod resilience;
pub mod scheduling;
pub mod validation;

use nfv_metrics::Table;
use serde::{Deserialize, Serialize};

/// Capacity bounds for workload-scaled node sizing: capacities are drawn
/// uniformly from `0.4×..1.6×` the mean capacity `total_demand / (nodes ·
/// fill)`, with the upper bound lifted so the largest VNF fits on the
/// largest node. Shared by the placement and joint experiments so both
/// sweep at constant packing tightness.
pub(crate) fn capacity_bounds(
    total_demand: f64,
    max_demand: f64,
    nodes: usize,
    fill: f64,
) -> (f64, f64) {
    let mean_capacity = total_demand / (nodes as f64 * fill);
    let lo = 0.4 * mean_capacity;
    let hi = (1.6 * mean_capacity).max(max_demand * 1.1);
    (lo, hi)
}

/// One figure's data: x-axis points against one value series per
/// algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sweep {
    x_label: String,
    series: Vec<String>,
    rows: Vec<SweepRow>,
}

/// One x-axis point of a [`Sweep`] with its per-series values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// The x-axis value (number of requests, nodes, instances, …).
    pub x: f64,
    /// One value per series, in [`Sweep::series`] order.
    pub values: Vec<f64>,
}

impl Sweep {
    /// Creates an empty sweep with the given x-axis label and series names.
    #[must_use]
    pub fn new(x_label: impl Into<String>, series: Vec<String>) -> Self {
        Self {
            x_label: x_label.into(),
            series,
            rows: Vec::new(),
        }
    }

    /// Appends one x-axis point.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the series count.
    pub fn push(&mut self, x: f64, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.series.len(),
            "one value per series required"
        );
        self.rows.push(SweepRow { x, values });
    }

    /// The x-axis label.
    #[must_use]
    pub fn x_label(&self) -> &str {
        &self.x_label
    }

    /// The series names (algorithms).
    #[must_use]
    pub fn series(&self) -> &[String] {
        &self.series
    }

    /// The data rows.
    #[must_use]
    pub fn rows(&self) -> &[SweepRow] {
        &self.rows
    }

    /// The values of one series across all rows, by series name.
    #[must_use]
    pub fn series_values(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.series.iter().position(|s| s == name)?;
        Some(self.rows.iter().map(|r| r.values[idx]).collect())
    }

    /// The mean of one series across all rows.
    #[must_use]
    pub fn series_mean(&self, name: &str) -> Option<f64> {
        let values = self.series_values(name)?;
        if values.is_empty() {
            return Some(0.0);
        }
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }

    /// Renders the sweep as CSV (header row + one line per x point), for
    /// downstream plotting.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label);
        for name in &self.series {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{}", row.x));
            for value in &row.values {
                out.push_str(&format!(",{value}"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the sweep as a plain-text table with `precision` decimals.
    #[must_use]
    pub fn to_table(&self, precision: usize) -> Table {
        let mut headers = vec![self.x_label.clone()];
        headers.extend(self.series.iter().cloned());
        let mut table = Table::new(headers);
        for row in &self.rows {
            let label = if row.x.fract() == 0.0 {
                format!("{}", row.x as i64)
            } else {
                format!("{:.3}", row.x)
            };
            table.numeric_row(label, &row.values, precision);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_accumulates_rows_and_extracts_series() {
        let mut sweep = Sweep::new("requests", vec!["bfdsu".into(), "ffd".into()]);
        sweep.push(30.0, vec![0.9, 0.7]);
        sweep.push(100.0, vec![0.92, 0.68]);
        assert_eq!(sweep.rows().len(), 2);
        assert_eq!(sweep.series_values("ffd"), Some(vec![0.7, 0.68]));
        assert_eq!(sweep.series_values("nah"), None);
        let mean = sweep.series_mean("bfdsu").unwrap();
        assert!((mean - 0.91).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one value per series")]
    fn push_validates_arity() {
        let mut sweep = Sweep::new("x", vec!["a".into()]);
        sweep.push(1.0, vec![1.0, 2.0]);
    }

    #[test]
    fn csv_rendering_round_trips_values() {
        let mut sweep = Sweep::new("n", vec!["a".into(), "b".into()]);
        sweep.push(10.0, vec![0.5, 1.25]);
        sweep.push(20.0, vec![0.75, 2.5]);
        let csv = sweep.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("n,a,b"));
        assert_eq!(lines.next(), Some("10,0.5,1.25"));
        assert_eq!(lines.next(), Some("20,0.75,2.5"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn table_rendering_includes_headers_and_values() {
        let mut sweep = Sweep::new("n", vec!["algo".into()]);
        sweep.push(10.0, vec![0.5]);
        let text = sweep.to_table(2).to_string();
        assert!(text.contains("n") && text.contains("algo") && text.contains("0.50"));
    }
}
