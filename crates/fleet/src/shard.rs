//! Shards: the unit of parallelism in the fleet loop.
//!
//! A shard owns a disjoint set of tenants — each tenant an independent
//! controller plus its bounded event channel and telemetry session — and
//! drains them in tenant-id order during the parallel phase of every
//! epoch round. Shards never share state, so running them on the
//! `nfv-parallel` pool (results folded in shard-id order) is bit-identical
//! to running them serially.

use nfv_controller::{Controller, ControllerReport, ControllerSnapshot, SnapshotError};
use nfv_telemetry::{Telemetry, TelemetryArtifacts, TelemetrySnapshot};
use nfv_workload::churn::TimedEvent;
use nfv_workload::TenantId;

use crate::channel::EventChannel;

/// An epoch-boundary checkpoint of one tenant slot: the controller
/// snapshot, the telemetry cursor, the counter report at capture time,
/// and the processed-event count. Restoring a slot from its checkpoint
/// and replaying the epoch's pumped events reproduces the undisturbed
/// slot bit for bit.
#[derive(Debug, Clone)]
pub struct SlotCheckpoint {
    pub(crate) tenant: TenantId,
    pub(crate) controller: ControllerSnapshot,
    pub(crate) telemetry: TelemetrySnapshot,
    pub(crate) report: ControllerReport,
    pub(crate) processed: u64,
    /// Cleared by an injected checkpoint corruption: an invalid
    /// checkpoint cannot restore, forcing the quarantine path.
    pub(crate) valid: bool,
}

/// One tenant living inside a shard: its controller, its event channel,
/// its telemetry session, and its cumulative processed-event count.
#[derive(Debug)]
pub struct TenantSlot {
    tenant: TenantId,
    controller: Controller,
    channel: EventChannel,
    telemetry: Telemetry,
    processed: u64,
    /// Chaos wedge: while set, drains skip this slot (its channel stops
    /// making progress), exercising the fleet's pump-stall detection.
    wedged: bool,
}

impl TenantSlot {
    /// Assembles a slot around an idle controller.
    #[must_use]
    pub fn new(
        tenant: TenantId,
        controller: Controller,
        channel: EventChannel,
        telemetry: Telemetry,
    ) -> Self {
        Self {
            tenant,
            controller,
            channel,
            telemetry,
            processed: 0,
            wedged: false,
        }
    }

    /// The tenant this slot belongs to.
    #[must_use]
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Whether the channel cannot take another event this round.
    #[must_use]
    pub fn channel_full(&self) -> bool {
        self.channel.is_full()
    }

    /// Buffered (pumped but not yet processed) events.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.channel.len()
    }

    /// Enqueues one event (the pump phase checked `channel_full`).
    pub fn push(&mut self, event: TimedEvent) {
        let pushed = self.channel.try_push(event).is_ok();
        debug_assert!(pushed, "pump must respect the channel bound");
    }

    /// Events this tenant's controller has processed so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The controller's current counter snapshot.
    #[must_use]
    pub fn report(&self) -> ControllerReport {
        self.controller.report()
    }

    /// Drains one event from the channel into the controller; `false`
    /// when the channel is empty or the slot is wedged.
    fn drain_one(&mut self) -> bool {
        if self.wedged {
            return false;
        }
        let Some(event) = self.channel.pop() else {
            return false;
        };
        self.controller
            .handle_owned_traced(event, &mut self.telemetry);
        self.processed += 1;
        true
    }

    /// Drains the channel into the controller, oldest first.
    fn drain(&mut self) -> u64 {
        let mut drained = 0;
        while self.drain_one() {
            drained += 1;
        }
        drained
    }

    /// Sets or clears the chaos wedge (see [`TenantSlot::wedged`]).
    pub(crate) fn set_wedged(&mut self, wedged: bool) {
        self.wedged = wedged;
    }

    /// Captures the slot's full recoverable state.
    pub(crate) fn checkpoint(&self) -> SlotCheckpoint {
        SlotCheckpoint {
            tenant: self.tenant,
            controller: self.controller.checkpoint(),
            telemetry: self.telemetry.snapshot(),
            report: self.controller.report(),
            processed: self.processed,
            valid: true,
        }
    }

    /// Rewinds the slot to a checkpoint: controller, telemetry, and
    /// processed count restored; the channel cleared (its events are in
    /// the epoch's replay log); the wedge lifted.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] if the controller snapshot does not fit this
    /// controller (it always fits a checkpoint taken from the same slot).
    pub(crate) fn restore(&mut self, checkpoint: &SlotCheckpoint) -> Result<(), SnapshotError> {
        debug_assert_eq!(
            checkpoint.tenant, self.tenant,
            "checkpoints restore into the slot they were taken from"
        );
        self.controller.restore(&checkpoint.controller)?;
        self.telemetry.restore(&checkpoint.telemetry);
        self.processed = checkpoint.processed;
        self.wedged = false;
        while self.channel.pop().is_some() {}
        Ok(())
    }

    /// Replays logged events straight into the controller (bypassing the
    /// channel) — the catch-up phase after a checkpoint restore. Returns
    /// the number of events replayed.
    pub(crate) fn replay(&mut self, events: &[TimedEvent]) -> u64 {
        for event in events {
            self.controller
                .handle_owned_traced(event.clone(), &mut self.telemetry);
        }
        self.processed += events.len() as u64;
        events.len() as u64
    }

    /// Chaos hook: breaks the controller's admission conservation law so
    /// the fleet's epoch-end invariant sweep has something to detect.
    pub(crate) fn corrupt_conservation(&mut self) {
        self.controller.chaos_corrupt_conservation();
    }

    /// Closes the run at `horizon` and returns the final report plus the
    /// telemetry artifacts.
    fn finish(mut self, horizon: f64) -> (TenantId, ControllerReport, TelemetryArtifacts) {
        self.controller.finish_traced(horizon, &mut self.telemetry);
        (
            self.tenant,
            self.controller.report(),
            self.telemetry.finish(),
        )
    }
}

/// A disjoint set of tenants drained together on one pool worker.
#[derive(Debug)]
pub struct Shard {
    id: usize,
    slots: Vec<TenantSlot>,
    processed: u64,
}

impl Shard {
    /// Creates an empty shard.
    #[must_use]
    pub fn new(id: usize) -> Self {
        Self {
            id,
            slots: Vec::new(),
            processed: 0,
        }
    }

    /// The shard's index in the fleet.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of tenants currently owned.
    #[must_use]
    pub fn tenants(&self) -> usize {
        self.slots.len()
    }

    /// The owned slots in tenant-id order (the pump iterates these).
    pub fn slots_mut(&mut self) -> &mut [TenantSlot] {
        &mut self.slots
    }

    /// The owned slots in tenant-id order.
    #[must_use]
    pub fn slots(&self) -> &[TenantSlot] {
        &self.slots
    }

    /// Total events buffered across the shard's channels.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.slots.iter().map(TenantSlot::buffered).sum()
    }

    /// Cumulative events processed by the shard's tenants — the load
    /// metric the rebalancer compares shards by.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Installs a tenant, keeping the slots sorted by tenant id so drain
    /// order is a pure function of ownership, not arrival order.
    pub fn install(&mut self, slot: TenantSlot) {
        let at = self.slots.partition_point(|s| s.tenant() < slot.tenant());
        self.slots.insert(at, slot);
    }

    /// Removes and returns a tenant's slot (`None` if not owned here).
    pub fn retire(&mut self, tenant: TenantId) -> Option<TenantSlot> {
        let at = self.slots.iter().position(|s| s.tenant() == tenant)?;
        Some(self.slots.remove(at))
    }

    /// One drain round: every owned channel emptied into its controller,
    /// tenant-id order. Returns the number of events processed.
    pub fn drain_round(&mut self) -> u64 {
        let mut drained = 0;
        for slot in &mut self.slots {
            drained += slot.drain();
        }
        self.processed += drained;
        drained
    }

    /// Drains at most `limit` events (tenant-id order, oldest first) and
    /// stops — the half-finished round an injected worker panic leaves
    /// behind. Returns the number of events processed.
    pub(crate) fn drain_upto(&mut self, limit: u64) -> u64 {
        let mut drained = 0;
        for slot in &mut self.slots {
            while drained < limit && slot.drain_one() {
                drained += 1;
            }
            if drained >= limit {
                break;
            }
        }
        self.processed += drained;
        drained
    }

    /// Re-aligns the shard's cumulative processed counter after a
    /// checkpoint restore + replay changed its slots' counts (the
    /// rebalancer compares shards by this, so recovery must leave it
    /// exactly where the undisturbed run would).
    pub(crate) fn adjust_processed(&mut self, delta: i64) {
        let adjusted = self.processed.checked_add_signed(delta);
        debug_assert!(adjusted.is_some(), "processed adjustment underflows");
        self.processed = adjusted.unwrap_or(self.processed);
    }

    /// Closes every tenant at `horizon`; returns `(tenant, report,
    /// artifacts)` triples in tenant-id order.
    #[must_use]
    pub fn finish(self, horizon: f64) -> Vec<(TenantId, ControllerReport, TelemetryArtifacts)> {
        self.slots
            .into_iter()
            .map(|slot| slot.finish(horizon))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_controller::ControllerConfig;
    use nfv_workload::churn::{ChurnEvent, ChurnTraceBuilder};
    use nfv_workload::{ScenarioBuilder, ServiceRatePolicy};

    #[test]
    fn install_keeps_tenant_id_order_and_retire_finds_by_id() {
        let scenario = ScenarioBuilder::new()
            .vnfs(2)
            .requests(4)
            .seed(5)
            .build()
            .unwrap();
        let mut shard = Shard::new(0);
        for t in [3u32, 0, 2] {
            shard.install(TenantSlot::new(
                TenantId::new(t),
                Controller::new(&scenario, ControllerConfig::online_only()),
                EventChannel::new(4),
                Telemetry::disabled(),
            ));
        }
        let order: Vec<u32> = shard.slots().iter().map(|s| s.tenant().as_u32()).collect();
        assert_eq!(order, vec![0, 2, 3]);
        assert!(shard.retire(TenantId::new(2)).is_some());
        assert!(shard.retire(TenantId::new(2)).is_none());
        assert_eq!(shard.tenants(), 2);
    }

    #[test]
    fn drain_round_replays_buffered_events_in_order() {
        let scenario = ScenarioBuilder::new()
            .vnfs(3)
            .requests(10)
            .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
                target_utilization: 0.5,
            })
            .seed(6)
            .build()
            .unwrap();
        let trace = ChurnTraceBuilder::new()
            .horizon(5.0)
            .build(&scenario)
            .unwrap();
        // Oracle: a controller fed the trace directly.
        let mut direct = Controller::new(&scenario, ControllerConfig::online_only());
        for event in trace.events() {
            direct.handle(event);
        }
        // Subject: the same events through a channel + drain rounds.
        let mut shard = Shard::new(0);
        shard.install(TenantSlot::new(
            TenantId::new(0),
            Controller::new(&scenario, ControllerConfig::online_only()),
            EventChannel::new(3),
            Telemetry::disabled(),
        ));
        let mut events = trace.events().iter().cloned().peekable();
        while events.peek().is_some() {
            {
                let slot = &mut shard.slots_mut()[0];
                while !slot.channel_full() {
                    let Some(event) = events.next() else { break };
                    slot.push(event);
                }
            }
            shard.drain_round();
        }
        assert_eq!(shard.processed(), trace.len() as u64);
        let arrival_count = trace
            .events()
            .iter()
            .filter(|e| matches!(e.event(), ChurnEvent::Arrival(_)))
            .count();
        assert!(arrival_count > 0);
        assert_eq!(shard.slots()[0].report(), direct.report());
    }
}
