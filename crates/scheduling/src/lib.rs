//! Request scheduling algorithms (phase two of the paper's pipeline).
//!
//! Once a VNF `f` is placed, its `n = |R_f|` requests must be distributed
//! over its `m = M_f` service instances. Since each instance is an M/M/1
//! station whose response time `W(f,k) = 1/(Pμ_f − Σ_r λ_r z_{r,k})`
//! grows with its total assigned rate (Eq. (12)), minimizing the average
//! response time over instances (Eq. (15)) amounts to balancing the
//! per-instance rate sums — the NP-hard Multi-Way Number Partitioning
//! problem (§IV.B).
//!
//! Implemented algorithms, all behind the [`Scheduler`] trait:
//!
//! * [`Rckk`] — the paper's contribution (Algorithm 2): a one-pass
//!   Karmarkar–Karp differencing scheme that repeatedly combines the two
//!   partitions with the largest leading values *in reverse order*
//!   (largest against smallest), resorts and normalizes;
//! * [`KkForward`] — the ablation that combines in forward order,
//!   quantifying what the reverse combination buys;
//! * [`Cga`] — Korf's Complete Greedy Algorithm; its first solution (the
//!   default) is the classic LPT greedy the paper benchmarks against, and a
//!   node budget turns it into an anytime exact search for use as a test
//!   oracle;
//! * [`Ckk`] — budget-limited Complete Karmarkar–Karp search over pairing
//!   orders (small-instance oracle);
//! * [`RoundRobin`] — the naive baseline.
//!
//! The resulting [`Schedule`] evaluates itself against the Jackson-network
//! model: average/maximum response times, per-instance utilizations and the
//! job rejection rate under admission control.
//!
//! # Examples
//!
//! ```
//! use nfv_model::{ArrivalRate, DeliveryProbability, ServiceRate};
//! use nfv_scheduling::{Rckk, Scheduler};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rates: Vec<ArrivalRate> = [8.0, 7.0, 6.0, 5.0, 4.0]
//!     .iter()
//!     .map(|&v| ArrivalRate::new(v))
//!     .collect::<Result<_, _>>()?;
//! let schedule = Rckk::new().schedule(&rates, 2)?;
//! // KK differencing splits the total of 30 into 16 / 14.
//! assert!(schedule.imbalance() <= 2.0);
//! let w = schedule.average_response_time(ServiceRate::new(20.0)?, DeliveryProbability::PERFECT)?;
//! assert!(w > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cga;
mod ckk;
mod error;
mod online;
mod partition;
mod rckk;
mod round_robin;
mod schedule;
mod scheduler;

pub use cga::Cga;
pub use ckk::Ckk;
pub use error::SchedulingError;
pub use online::{OnlineDispatcher, OnlineLeastLoaded};
pub use rckk::{KkForward, Rckk};
pub use round_robin::RoundRobin;
pub use schedule::Schedule;
pub use scheduler::Scheduler;
