//! Reproducible experiment scenarios.

use std::fmt;

use nfv_model::{Demand, Request, RequestId, ServiceChain, ServiceRate, Vnf, VnfId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{ChainGenerator, ChainTemplate, RequestGenerator, VnfCatalog, WorkloadError};

/// How many service instances `M_f` each VNF deploys.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum InstancePolicy {
    /// Every VNF deploys exactly `k` instances (capped at its user count to
    /// respect Eq. (3)).
    Fixed(u32),
    /// `M_f = ceil(users_f / requests_per_instance)`: one instance per so
    /// many requests, the paper's "1 to 200 requests per instance" knob.
    PerUsers {
        /// Target number of requests sharing one instance.
        requests_per_instance: u32,
    },
}

impl InstancePolicy {
    fn instances_for(&self, users: usize) -> u32 {
        let users32 = users as u32;
        match *self {
            Self::Fixed(k) => k.clamp(1, users32.max(1)),
            Self::PerUsers {
                requests_per_instance,
            } => {
                let rpi = requests_per_instance.max(1);
                users32.div_ceil(rpi).max(1)
            }
        }
    }
}

/// How each VNF's per-instance service rate `μ_f` is chosen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ServiceRatePolicy {
    /// Use the catalog profile's rate unchanged.
    CatalogDefault,
    /// Every instance serves at the same fixed rate (pps).
    Fixed(f64),
    /// Scale `μ_f` with the offered load so that a perfectly balanced
    /// schedule would run each instance at `target_utilization`:
    /// `μ_f = Λ_f / (M_f · target)`. This is the paper's "we scale μ_f with
    /// the number of requests to eliminate its dominant influence" (§V.C).
    ScaledToLoad {
        /// Desired balanced per-instance utilization in `(0, 1)`.
        target_utilization: f64,
    },
}

/// A complete generated workload: the VNF set `F` and the request set `R`.
///
/// Scenarios are produced by [`ScenarioBuilder`] and satisfy the paper's
/// structural constraints: every chain references existing VNFs, every VNF
/// is used by at least one request, and `M_f ≤ Σ_r U_r^f` (Eq. (3)).
///
/// # Examples
///
/// ```
/// use nfv_workload::ScenarioBuilder;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let s = ScenarioBuilder::new().vnfs(6).requests(30).seed(1).build()?;
/// let vnf = s.vnfs()[0].id();
/// assert!(s.users_of(vnf) >= s.vnf(vnf).unwrap().instances() as usize);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    vnfs: Vec<Vnf>,
    requests: Vec<Request>,
}

impl Scenario {
    /// Creates a scenario from explicit parts and validates it.
    ///
    /// # Errors
    ///
    /// Returns the first violated structural constraint; see
    /// [`Scenario::validate`].
    pub fn from_parts(vnfs: Vec<Vnf>, requests: Vec<Request>) -> Result<Self, WorkloadError> {
        let scenario = Self { vnfs, requests };
        scenario.validate()?;
        Ok(scenario)
    }

    /// The VNF set `F`, ordered by [`VnfId`].
    #[must_use]
    pub fn vnfs(&self) -> &[Vnf] {
        &self.vnfs
    }

    /// The request set `R`, ordered by [`RequestId`].
    #[must_use]
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Looks up a VNF by id.
    #[must_use]
    pub fn vnf(&self, id: VnfId) -> Option<&Vnf> {
        self.vnfs.get(id.as_usize())
    }

    /// Looks up a request by id.
    #[must_use]
    pub fn request(&self, id: RequestId) -> Option<&Request> {
        self.requests.get(id.as_usize())
    }

    /// Iterator over the requests whose chains traverse `vnf`
    /// (the paper's `R_f`).
    pub fn requests_using(&self, vnf: VnfId) -> impl Iterator<Item = &Request> + '_ {
        self.requests.iter().filter(move |r| r.uses(vnf))
    }

    /// Number of requests using `vnf` (`Σ_r U_r^f`).
    #[must_use]
    pub fn users_of(&self, vnf: VnfId) -> usize {
        self.requests_using(vnf).count()
    }

    /// Total resource demand `Σ_f M_f · D_f` of all VNFs.
    #[must_use]
    pub fn total_demand(&self) -> Demand {
        self.vnfs.iter().map(Vnf::total_demand).sum()
    }

    /// Checks the paper's structural constraints:
    ///
    /// * every chain references VNFs present in the scenario,
    /// * every VNF is used by at least one request,
    /// * `M_f ≤ Σ_r U_r^f` for every VNF (Eq. (3)).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        for request in &self.requests {
            for vnf in request.chain() {
                if self.vnf(*vnf).is_none() {
                    return Err(WorkloadError::UnknownVnf {
                        request: request.id(),
                        vnf: *vnf,
                    });
                }
            }
        }
        for vnf in &self.vnfs {
            let users = self.users_of(vnf.id());
            if users == 0 {
                return Err(WorkloadError::UnusedVnf { vnf: vnf.id() });
            }
            if vnf.instances() as usize > users {
                return Err(WorkloadError::TooManyInstances {
                    vnf: vnf.id(),
                    instances: vnf.instances(),
                    users,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scenario: {} VNFs, {} requests, total demand {}",
            self.vnfs.len(),
            self.requests.len(),
            self.total_demand()
        )
    }
}

/// Builder producing a reproducible [`Scenario`] from a seed and the paper's
/// parameter ranges.
///
/// # Examples
///
/// ```
/// use nfv_workload::{InstancePolicy, ScenarioBuilder, ServiceRatePolicy};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let s = ScenarioBuilder::new()
///     .vnfs(15)
///     .requests(100)
///     .instance_policy(InstancePolicy::PerUsers { requests_per_instance: 10 })
///     .service_rate_policy(ServiceRatePolicy::ScaledToLoad { target_utilization: 0.7 })
///     .seed(42)
///     .build()?;
/// assert_eq!(s.vnfs().len(), 15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioBuilder {
    seed: u64,
    vnfs: usize,
    requests: usize,
    min_chain_len: usize,
    max_chain_len: usize,
    request_gen: RequestGenerator,
    instance_policy: InstancePolicy,
    service_rate_policy: ServiceRatePolicy,
    catalog: VnfCatalog,
    template_fraction: f64,
    templates: Vec<ChainTemplate>,
}

impl ScenarioBuilder {
    /// Creates a builder with the paper's defaults: 6 VNFs, 30 requests,
    /// chains of 1–6 VNFs, `λ ∈ [1, 100]`, `P ∈ [0.98, 1]`, one instance
    /// per 10 requests, load-scaled service rates at 70% target utilization.
    #[must_use]
    pub fn new() -> Self {
        Self {
            seed: 0,
            vnfs: 6,
            requests: 30,
            min_chain_len: 1,
            max_chain_len: 6,
            request_gen: RequestGenerator::new(),
            instance_policy: InstancePolicy::PerUsers {
                requests_per_instance: 10,
            },
            service_rate_policy: ServiceRatePolicy::ScaledToLoad {
                target_utilization: 0.7,
            },
            catalog: VnfCatalog::standard(),
            template_fraction: 0.0,
            templates: ChainTemplate::standard(),
        }
    }

    /// Sets the RNG seed; identical builders with identical seeds produce
    /// identical scenarios.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of VNFs `|F|` (paper sweeps 6–30).
    #[must_use]
    pub fn vnfs(mut self, count: usize) -> Self {
        self.vnfs = count;
        self
    }

    /// Sets the number of requests `|R|` (paper sweeps 30–1000).
    #[must_use]
    pub fn requests(mut self, count: usize) -> Self {
        self.requests = count;
        self
    }

    /// Sets the maximum chain length (paper: at most 6).
    #[must_use]
    pub fn max_chain_len(mut self, len: usize) -> Self {
        self.max_chain_len = len;
        self
    }

    /// Sets the minimum chain length (default 1).
    #[must_use]
    pub fn min_chain_len(mut self, len: usize) -> Self {
        self.min_chain_len = len;
        self
    }

    /// Sets the request traffic generator (arrival/delivery ranges).
    #[must_use]
    pub fn request_generator(mut self, gen: RequestGenerator) -> Self {
        self.request_gen = gen;
        self
    }

    /// Sets the instance-count policy.
    #[must_use]
    pub fn instance_policy(mut self, policy: InstancePolicy) -> Self {
        self.instance_policy = policy;
        self
    }

    /// Sets the service-rate policy.
    #[must_use]
    pub fn service_rate_policy(mut self, policy: ServiceRatePolicy) -> Self {
        self.service_rate_policy = policy;
        self
    }

    /// Sets the VNF catalog to draw profiles from.
    #[must_use]
    pub fn catalog(mut self, catalog: VnfCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Fraction of requests whose chain comes from a named
    /// [`ChainTemplate`] (resolved against the catalog's kinds) instead of
    /// a random draw; the rest stay random. Default 0.
    #[must_use]
    pub fn template_fraction(mut self, fraction: f64) -> Self {
        self.template_fraction = fraction;
        self
    }

    /// Replaces the template pool used by
    /// [`template_fraction`](Self::template_fraction).
    #[must_use]
    pub fn templates(mut self, templates: Vec<ChainTemplate>) -> Self {
        self.templates = templates;
        self
    }

    /// Generates the scenario.
    ///
    /// Chains are drawn first; any VNF left unused is repaired into a random
    /// request's chain so the scenario satisfies the model's "no dead VNF"
    /// assumption — this requires `requests · max_chain_len ≥ vnfs`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for inconsistent sizes or
    /// policies, and propagates validation failures.
    pub fn build(&self) -> Result<Scenario, WorkloadError> {
        if self.vnfs == 0 || self.requests == 0 {
            return Err(WorkloadError::InvalidParameter {
                reason: "scenario needs >= 1 VNF and >= 1 request",
            });
        }
        if self.requests * self.max_chain_len < self.vnfs {
            return Err(WorkloadError::InvalidParameter {
                reason: "too few requests to use every VNF",
            });
        }
        if let ServiceRatePolicy::ScaledToLoad { target_utilization } = self.service_rate_policy {
            if !(target_utilization > 0.0 && target_utilization < 1.0) {
                return Err(WorkloadError::InvalidParameter {
                    reason: "target utilization must lie in (0, 1)",
                });
            }
        }
        if let ServiceRatePolicy::Fixed(rate) = self.service_rate_policy {
            if !(rate.is_finite() && rate > 0.0) {
                return Err(WorkloadError::InvalidParameter {
                    reason: "fixed service rate must be positive",
                });
            }
        }
        if !(0.0..=1.0).contains(&self.template_fraction) {
            return Err(WorkloadError::InvalidParameter {
                reason: "template fraction must lie in [0, 1]",
            });
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let max_len = self.max_chain_len.min(self.vnfs);
        let min_len = self.min_chain_len.clamp(1, max_len);
        let chain_gen = ChainGenerator::new(self.vnfs, min_len, max_len)?;

        // 1. Draw chains — from the template pool for a configured
        //    fraction, randomly otherwise — then repair unused VNFs into
        //    under-full chains.
        let kinds_by_id: Vec<_> = (0..self.vnfs).map(|i| self.catalog.kind_at(i).0).collect();
        let resolved_templates: Vec<ServiceChain> = self
            .templates
            .iter()
            .filter_map(|t| t.resolve(&kinds_by_id))
            .collect();
        let mut chains = Vec::with_capacity(self.requests);
        for _ in 0..self.requests {
            let use_template = self.template_fraction > 0.0
                && !resolved_templates.is_empty()
                && rng.gen_bool(self.template_fraction);
            if use_template {
                let pick = rng.gen_range(0..resolved_templates.len());
                chains.push(resolved_templates[pick].clone());
            } else {
                chains.push(chain_gen.generate(&mut rng)?);
            }
        }
        let mut used = vec![false; self.vnfs];
        for chain in &chains {
            for vnf in chain.iter() {
                used[vnf.as_usize()] = true;
            }
        }
        for (idx, _) in used.iter().enumerate().filter(|(_, &u)| !u) {
            let vnf = VnfId::new(idx as u32);
            let start = rng.gen_range(0..chains.len());
            let slot = (0..chains.len())
                .map(|o| (start + o) % chains.len())
                .find(|&i| chains[i].len() < max_len && !chains[i].uses(vnf))
                .or_else(|| {
                    (0..chains.len())
                        .map(|o| (start + o) % chains.len())
                        .find(|&i| !chains[i].uses(vnf))
                })
                .ok_or(WorkloadError::InvalidParameter {
                    reason: "cannot repair chains to cover every VNF",
                })?;
            let mut vnfs: Vec<VnfId> = chains[slot].iter().collect();
            vnfs.insert(rng.gen_range(0..=vnfs.len()), vnf);
            chains[slot] = ServiceChain::new(vnfs)?;
        }

        // 2. Attach traffic to each chain.
        let requests: Vec<Request> = chains
            .into_iter()
            .enumerate()
            .map(|(i, chain)| self.request_gen.generate(i as u32, chain, &mut rng))
            .collect();

        // 3. Decide M_f from the realized user counts.
        let users: Vec<usize> = (0..self.vnfs)
            .map(|i| {
                requests
                    .iter()
                    .filter(|r| r.uses(VnfId::new(i as u32)))
                    .count()
            })
            .collect();
        let instance_counts: Vec<u32> = users
            .iter()
            .map(|&u| self.instance_policy.instances_for(u))
            .collect();

        // 4. Materialize the VNFs with demands from the catalog and rates
        //    from the policy.
        let vnfs: Vec<Vnf> = (0..self.vnfs)
            .map(|i| {
                let (kind, profile) = self.catalog.kind_at(i);
                let vnf_id = VnfId::new(i as u32);
                let m = instance_counts[i];
                let rate = match self.service_rate_policy {
                    ServiceRatePolicy::CatalogDefault => profile.service_rate_pps,
                    ServiceRatePolicy::Fixed(rate) => rate,
                    ServiceRatePolicy::ScaledToLoad { target_utilization } => {
                        let offered: f64 = requests
                            .iter()
                            .filter(|r| r.uses(vnf_id))
                            .map(|r| r.effective_rate().value())
                            .sum();
                        (offered / f64::from(m) / target_utilization).max(f64::MIN_POSITIVE)
                    }
                };
                Ok(Vnf::builder(vnf_id, kind)
                    .demand_per_instance(Demand::new(profile.demand_units)?)
                    .instances(m)
                    .service_rate(ServiceRate::new(rate)?)
                    .build()?)
            })
            .collect::<Result<_, WorkloadError>>()?;

        Scenario::from_parts(vnfs, requests)
    }
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic_per_seed() {
        let b = ScenarioBuilder::new().vnfs(10).requests(100);
        let a = b.clone().seed(5).build().unwrap();
        let a2 = b.clone().seed(5).build().unwrap();
        let c = b.seed(6).build().unwrap();
        assert_eq!(a, a2);
        assert_ne!(a, c);
    }

    #[test]
    fn every_vnf_is_used_even_when_requests_are_scarce() {
        // 30 VNFs, 30 requests: random chains would leave gaps; repair fills them.
        let s = ScenarioBuilder::new()
            .vnfs(30)
            .requests(30)
            .seed(3)
            .build()
            .unwrap();
        for vnf in s.vnfs() {
            assert!(s.users_of(vnf.id()) > 0, "{} unused", vnf.id());
        }
        s.validate().unwrap();
    }

    #[test]
    fn eq3_instances_bounded_by_users() {
        let s = ScenarioBuilder::new()
            .vnfs(8)
            .requests(40)
            .instance_policy(InstancePolicy::Fixed(100))
            .seed(1)
            .build()
            .unwrap();
        for vnf in s.vnfs() {
            assert!(vnf.instances() as usize <= s.users_of(vnf.id()));
        }
    }

    #[test]
    fn per_users_policy_matches_ceiling() {
        let s = ScenarioBuilder::new()
            .vnfs(5)
            .requests(50)
            .instance_policy(InstancePolicy::PerUsers {
                requests_per_instance: 7,
            })
            .seed(2)
            .build()
            .unwrap();
        for vnf in s.vnfs() {
            let users = s.users_of(vnf.id());
            assert_eq!(vnf.instances(), (users as u32).div_ceil(7).max(1));
        }
    }

    #[test]
    fn scaled_service_rates_hit_target_utilization() {
        let target = 0.6;
        let s = ScenarioBuilder::new()
            .vnfs(4)
            .requests(60)
            .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
                target_utilization: target,
            })
            .seed(9)
            .build()
            .unwrap();
        for vnf in s.vnfs() {
            let offered: f64 = s
                .requests_using(vnf.id())
                .map(|r| r.effective_rate().value())
                .sum();
            let balanced_rho = offered / (f64::from(vnf.instances()) * vnf.service_rate().value());
            assert!((balanced_rho - target).abs() < 1e-9, "rho={balanced_rho}");
        }
    }

    #[test]
    fn rejects_impossible_configurations() {
        assert!(ScenarioBuilder::new().vnfs(0).build().is_err());
        assert!(ScenarioBuilder::new().requests(0).build().is_err());
        // 100 VNFs cannot all be used by 2 requests of length <= 6.
        assert!(ScenarioBuilder::new()
            .vnfs(100)
            .requests(2)
            .build()
            .is_err());
        assert!(ScenarioBuilder::new()
            .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
                target_utilization: 1.5
            })
            .build()
            .is_err());
        assert!(ScenarioBuilder::new()
            .service_rate_policy(ServiceRatePolicy::Fixed(-3.0))
            .build()
            .is_err());
    }

    #[test]
    fn from_parts_validates() {
        let s = ScenarioBuilder::new()
            .vnfs(3)
            .requests(10)
            .seed(0)
            .build()
            .unwrap();
        // Dropping all requests of some VNF must fail validation.
        let vnf0 = s.vnfs()[0].id();
        let filtered: Vec<Request> = s
            .requests()
            .iter()
            .filter(|r| !r.uses(vnf0))
            .cloned()
            .collect();
        let err = Scenario::from_parts(s.vnfs().to_vec(), filtered).unwrap_err();
        assert!(matches!(
            err,
            WorkloadError::UnusedVnf { .. } | WorkloadError::TooManyInstances { .. }
        ));
    }

    #[test]
    fn chain_lengths_respect_bounds_modulo_repair() {
        let s = ScenarioBuilder::new()
            .vnfs(6)
            .requests(200)
            .min_chain_len(2)
            .max_chain_len(4)
            .seed(11)
            .build()
            .unwrap();
        // With plenty of requests no repair is needed, so bounds hold exactly.
        for r in s.requests() {
            assert!((2..=4).contains(&r.chain().len()));
        }
    }

    #[test]
    fn template_fraction_draws_named_chains() {
        use crate::ChainTemplate;
        let s = ScenarioBuilder::new()
            .vnfs(9)
            .requests(200)
            .template_fraction(1.0)
            .seed(5)
            .build()
            .unwrap();
        // Every chain must match one of the standard templates (modulo
        // unused-VNF repair insertions, which only lengthen chains; with 9
        // VNFs and 200 template requests every kind is covered, so repair
        // does not trigger for template-covered ids but may for others).
        let kinds: Vec<_> = (0..9)
            .map(|i| crate::VnfCatalog::standard().kind_at(i).0)
            .collect();
        let template_chains: Vec<_> = ChainTemplate::standard()
            .iter()
            .filter_map(|t| t.resolve(&kinds))
            .collect();
        let matching = s
            .requests()
            .iter()
            .filter(|r| template_chains.contains(r.chain()))
            .count();
        // Repair may touch a few chains; the overwhelming majority must be
        // verbatim templates.
        assert!(matching > 180, "only {matching}/200 template chains");
    }

    #[test]
    fn template_fraction_is_validated() {
        assert!(ScenarioBuilder::new()
            .template_fraction(1.5)
            .build()
            .is_err());
        assert!(ScenarioBuilder::new()
            .template_fraction(-0.1)
            .build()
            .is_err());
    }

    #[test]
    fn display_summarizes() {
        let s = ScenarioBuilder::new().seed(0).build().unwrap();
        let text = s.to_string();
        assert!(text.contains("VNFs") && text.contains("requests"));
    }
}
