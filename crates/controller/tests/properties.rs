//! Cross-crate invariants tying the controller to the offline pipeline.

use nfv_controller::{Controller, ControllerConfig, ControllerState, ReoptConfig, ShedPolicy};
use nfv_model::{ArrivalRate, DeliveryProbability, RequestId};
use nfv_scheduling::{OnlineDispatcher, Rckk, Scheduler};
use nfv_workload::churn::ChurnTraceBuilder;
use nfv_workload::{Scenario, ScenarioBuilder, ServiceRatePolicy};
use proptest::prelude::*;

fn scenario(seed: u64) -> Scenario {
    ScenarioBuilder::new()
        .vnfs(5)
        .requests(40)
        .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
            target_utilization: 0.6,
        })
        .seed(seed)
        .build()
        .unwrap()
}

/// With no churn and re-optimization disabled, the controller is exactly
/// an online least-loaded dispatcher per VNF: replaying each VNF's
/// requests (arrival = id order) through [`OnlineDispatcher`] with their
/// loss-inflated rates reproduces the controller's assignment.
#[test]
fn pure_arrival_run_matches_online_least_loaded() {
    for seed in [11u64, 12, 13] {
        let s = scenario(seed);
        let trace = ChurnTraceBuilder::new().horizon(10.0).build(&s).unwrap();
        let mut controller = Controller::new(&s, ControllerConfig::online_only());
        let report = controller.run_trace(&trace);
        assert_eq!(report.rejected, 0, "scenario must have admission headroom");

        for vnf in s.vnfs() {
            let mut dispatcher = OnlineDispatcher::new(vnf.instances() as usize).unwrap();
            for request in s.requests().iter().filter(|r| r.uses(vnf.id())) {
                let expected = dispatcher.dispatch(request.effective_rate());
                assert_eq!(
                    controller.state().home_of(vnf.id(), request.id()),
                    Some(expected),
                    "seed {seed}, {} on {}",
                    request.id(),
                    vnf.id(),
                );
            }
        }
    }
}

/// Zero churn plus a single (forced) re-optimization tick lands every VNF
/// on exactly the assignment the offline RCKK scheduler computes from the
/// same raw rates.
#[test]
fn zero_churn_single_tick_matches_offline_rckk() {
    for seed in [21u64, 22, 23] {
        let s = scenario(seed);
        let trace = ChurnTraceBuilder::new()
            .horizon(10.0)
            .tick_period(5.0)
            .build(&s)
            .unwrap();
        // Force the plan through regardless of predicted gain so the test
        // checks the *assignment*, not the hysteresis.
        let config = ControllerConfig {
            shed: ShedPolicy::RejectArrival,
            reopt: Some(ReoptConfig {
                min_gain: f64::NEG_INFINITY,
                max_migrations: usize::MAX,
            }),
        };
        let mut controller = Controller::new(&s, config);
        let report = controller.run_trace(&trace);
        assert_eq!(report.rejected, 0);
        assert!(report.reopts_applied >= 1 || report.reopts_skipped >= 1);

        for vnf in s.vnfs() {
            let requests: Vec<_> = s.requests().iter().filter(|r| r.uses(vnf.id())).collect();
            if requests.is_empty() {
                continue;
            }
            let rates: Vec<_> = requests.iter().map(|r| r.arrival_rate()).collect();
            let schedule = Rckk::new()
                .schedule(&rates, vnf.instances() as usize)
                .unwrap();
            for (i, request) in requests.iter().enumerate() {
                assert_eq!(
                    controller.state().home_of(vnf.id(), request.id()),
                    Some(schedule.instance_of(i)),
                    "seed {seed}, {} on {}",
                    request.id(),
                    vnf.id(),
                );
            }
        }
    }
}

/// Two controller runs over traces built from the same seed produce
/// identical reports, snapshot for snapshot and byte for byte.
#[test]
fn same_seed_runs_are_identical() {
    let run = || {
        let s = scenario(31);
        let trace = ChurnTraceBuilder::new()
            .horizon(120.0)
            .arrival_rate(0.6)
            .mean_holding(25.0)
            .tick_period(30.0)
            .outage_rate(0.02)
            .mean_outage(8.0)
            .seed(7)
            .build(&s)
            .unwrap();
        let mut controller = Controller::new(&s, ControllerConfig::periodic_reopt());
        let report = controller.run_trace(&trace);
        (report, controller.snapshots().to_vec())
    };
    let (report_a, snaps_a) = run();
    let (report_b, snaps_b) = run();
    assert_eq!(report_a, report_b);
    assert_eq!(snaps_a, snaps_b);
    assert_eq!(report_a.render(), report_b.render());
}

proptest! {
    /// `add_request` followed by `remove_request` restores the ledger
    /// bit-for-bit, including the cached f64 sums, even on top of a
    /// populated state.
    #[test]
    fn add_then_remove_restores_ledger(
        rate in 0.01f64..5.0,
        delivery in 0.5f64..1.0,
        vnf_pick in 0usize..64,
        instance_pick in 0usize..64,
    ) {
        let s = scenario(41);
        let mut state = ControllerState::new(&s);
        for request in s.requests() {
            for &vnf in request.chain() {
                let k = state.least_loaded_up(vnf).unwrap();
                state
                    .add_request(vnf, k, request.id(), request.arrival_rate(), request.delivery())
                    .unwrap();
            }
        }
        let before = state.clone();

        let vnf = s.vnfs()[vnf_pick % s.vnfs().len()].id();
        let k = instance_pick % state.instances(vnf);
        let id = RequestId::new(55_555);
        state
            .add_request(
                vnf,
                k,
                id,
                ArrivalRate::new(rate).unwrap(),
                DeliveryProbability::new(delivery).unwrap(),
            )
            .unwrap();
        prop_assert_eq!(state.home_of(vnf, id), Some(k));
        prop_assert_eq!(state.remove_request(vnf, id), Some(k));
        prop_assert_eq!(state, before);
    }
}
