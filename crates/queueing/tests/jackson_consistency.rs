//! Cross-checks between the three queueing views: `InstanceLoad` (the
//! paper's per-instance form), `ChainResponse` (serial chains with loss
//! feedback) and the general `JacksonNetwork` solver. All three must agree
//! wherever their domains overlap.

use nfv_model::{ArrivalRate, DeliveryProbability, ServiceRate};
use nfv_queueing::{ChainResponse, InstanceLoad, JacksonNetwork, Mm1Queue};

fn mu(v: f64) -> ServiceRate {
    ServiceRate::new(v).unwrap()
}

fn lam(v: f64) -> ArrivalRate {
    ArrivalRate::new(v).unwrap()
}

fn p(v: f64) -> DeliveryProbability {
    DeliveryProbability::new(v).unwrap()
}

#[test]
fn single_station_three_ways() {
    let (lambda, service, delivery) = (40.0, 100.0, 0.9);

    // View 1: InstanceLoad (Eq. (11)/(12)).
    let mut load = InstanceLoad::new(mu(service));
    load.add_request(lam(lambda), p(delivery));
    let w_instance = load.mean_delivery_response_time().unwrap();

    // View 2: ChainResponse over a one-station chain.
    let w_chain = ChainResponse::compute([&load], p(delivery))
        .unwrap()
        .total();

    // View 3: the general Jackson network with an explicit feedback loop
    // returning lost packets to the single station.
    let network =
        JacksonNetwork::new(vec![mu(service)], vec![lambda], vec![vec![1.0 - delivery]]).unwrap();
    let solved = network.solve().unwrap();
    let w_network = solved.mean_sojourn_time();

    assert!((w_instance - w_chain).abs() < 1e-12);
    assert!(
        (w_instance - w_network).abs() < 1e-9,
        "instance {w_instance} vs network {w_network}"
    );
}

#[test]
fn serial_chain_three_ways() {
    let (lambda, delivery) = (25.0, 0.95);
    let mus = [90.0, 120.0, 70.0];

    let loads: Vec<InstanceLoad> = mus
        .iter()
        .map(|&m| {
            let mut load = InstanceLoad::new(mu(m));
            load.add_request(lam(lambda), p(delivery));
            load
        })
        .collect();
    let w_chain = ChainResponse::compute(loads.iter(), p(delivery))
        .unwrap()
        .total();

    // Jackson network: serial routing, last station feeds back (1 − P) to
    // the first (the paper's NACK loop).
    let network = JacksonNetwork::new(
        mus.iter().map(|&m| mu(m)).collect(),
        vec![lambda, 0.0, 0.0],
        vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0 - delivery, 0.0, 0.0],
        ],
    )
    .unwrap();
    let solved = network.solve().unwrap();
    assert!(
        (w_chain - solved.mean_sojourn_time()).abs() < 1e-9,
        "chain {w_chain} vs network {}",
        solved.mean_sojourn_time()
    );
    // Each station's equivalent arrival rate matches Eq. (7).
    for &rate in solved.arrival_rates() {
        assert!((rate - lambda / delivery).abs() < 1e-9);
    }
}

#[test]
fn merged_flows_match_kleinrock_summation() {
    // Two requests sharing one station: InstanceLoad sums λ/P terms; the
    // network solver must produce the same equivalent rate and E[N].
    let mut load = InstanceLoad::new(mu(200.0));
    load.add_request(lam(30.0), p(0.9));
    load.add_request(lam(50.0), p(1.0));

    let network = JacksonNetwork::new(
        vec![mu(200.0), mu(1000.0)],
        // Modeling request 1's loss with a feedback loop is overkill here;
        // feed the already-inflated equivalents as a merged external flow
        // at the shared station instead.
        vec![30.0 / 0.9 + 50.0, 0.0],
        vec![vec![0.0, 0.0], vec![0.0, 0.0]],
    )
    .unwrap();
    let solved = network.solve().unwrap();
    assert!((solved.arrival_rates()[0] - load.equivalent_arrival_rate()).abs() < 1e-9);
    let q = load.queue().unwrap();
    assert!(
        (solved.queues()[0].mean_packets_in_system() - q.mean_packets_in_system()).abs() < 1e-12
    );
}

#[test]
fn bottleneck_identification_matches_utilizations() {
    let network = JacksonNetwork::new(
        vec![mu(100.0), mu(300.0), mu(50.0)],
        vec![40.0, 40.0, 20.0],
        vec![vec![0.0; 3]; 3],
    )
    .unwrap();
    let solved = network.solve().unwrap();
    // Utilizations: 0.4, 0.133, 0.4 — tie broken by max_by (last maximum).
    let bottleneck = solved.bottleneck();
    let rho = solved.queues()[bottleneck].utilization().value();
    for q in solved.queues() {
        assert!(q.utilization().value() <= rho + 1e-12);
    }
}

#[test]
fn network_queue_matches_direct_mm1() {
    let direct = Mm1Queue::new(60.0, mu(100.0)).unwrap();
    let network = JacksonNetwork::new(vec![mu(100.0)], vec![60.0], vec![vec![0.0]]).unwrap();
    let solved = network.solve().unwrap();
    assert_eq!(solved.queues()[0], direct);
    assert!((solved.mean_sojourn_time() - direct.mean_response_time()).abs() < 1e-12);
}
