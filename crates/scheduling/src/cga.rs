//! CGA: Korf's Complete Greedy Algorithm.

use nfv_model::ArrivalRate;

use crate::scheduler::check_inputs;
use crate::{Schedule, Scheduler, SchedulingError};

/// The Complete Greedy Algorithm for multi-way number partitioning (Korf,
/// IJCAI'09) — the paper's scheduling baseline.
///
/// CGA sorts the numbers in decreasing order and explores the tree whose
/// branches assign each number to each instance in order of increasing
/// current sum. Its very first leaf is the classic LPT greedy schedule
/// ("largest processing time first"), and that first solution is what the
/// paper benchmarks RCKK against — CGA's full search "does not scale well
/// as the number of instances increases" (§IV.B). The search is
/// budget-limited and anytime:
///
/// * the default budget of 1 leaf returns exactly the LPT schedule,
///   computed iteratively (no recursion, any input size);
/// * [`Cga::with_leaf_budget`] explores further leaves (branch-and-bound on
///   the makespan), converging to the optimal partition given enough
///   budget — handy as a small-instance oracle in tests. The search
///   recurses once per request, so budgets above 1 are intended for the
///   small instances where a complete search is meaningful (hundreds of
///   requests at most), not for bulk scheduling.
///
/// # Examples
///
/// ```
/// use nfv_model::ArrivalRate;
/// use nfv_scheduling::{Cga, Scheduler};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rates: Vec<ArrivalRate> =
///     [8.0, 6.0, 5.0].iter().map(|&v| ArrivalRate::new(v)).collect::<Result<_, _>>()?;
/// let schedule = Cga::new().schedule(&rates, 2)?;
/// // LPT: 8 opens one instance, 6 the other, 5 joins the lighter (6+5).
/// assert_eq!(schedule.makespan(), 11.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cga {
    leaf_budget: u64,
}

impl Cga {
    /// Creates CGA in first-solution (LPT greedy) mode, the paper's
    /// baseline configuration.
    #[must_use]
    pub fn new() -> Self {
        Self { leaf_budget: 1 }
    }

    /// Allows the search to visit up to `leaves` complete assignments,
    /// keeping the best (smallest makespan). Exponential in the worst case;
    /// use generous budgets only on small instances.
    #[must_use]
    pub fn with_leaf_budget(mut self, leaves: u64) -> Self {
        self.leaf_budget = leaves.max(1);
        self
    }
}

impl Default for Cga {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Cga {
    fn name(&self) -> &'static str {
        "cga"
    }

    fn schedule(
        &self,
        rates: &[ArrivalRate],
        instances: usize,
    ) -> Result<Schedule, SchedulingError> {
        check_inputs(rates, instances)?;
        // Decreasing order of rates; remember original indices.
        let mut order: Vec<usize> = (0..rates.len()).collect();
        order.sort_by(|&a, &b| {
            rates[b]
                .value()
                .partial_cmp(&rates[a].value())
                .expect("rates are finite")
                .then(a.cmp(&b))
        });

        if self.leaf_budget == 1 {
            // The first DFS leaf is exactly LPT; compute it iteratively so
            // arbitrarily large request sets cannot overflow the stack.
            let mut sums = vec![0.0f64; instances];
            let mut assignment = vec![0usize; rates.len()];
            for &request in &order {
                let k = sums
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("sums are finite"))
                    .map(|(k, _)| k)
                    .expect("at least one instance");
                sums[k] += rates[request].value();
                assignment[request] = k;
            }
            return Schedule::new(rates.to_vec(), assignment, instances);
        }

        let mut search = Search {
            rates,
            order: &order,
            instances,
            sums: vec![0.0; instances],
            current: vec![0usize; rates.len()],
            best: None,
            best_makespan: f64::INFINITY,
            leaves_left: self.leaf_budget,
        };
        search.descend(0);
        let assignment = search.best.expect("budget >= 1 visits at least one leaf");
        Schedule::new(rates.to_vec(), assignment, instances)
    }
}

struct Search<'a> {
    rates: &'a [ArrivalRate],
    order: &'a [usize],
    instances: usize,
    sums: Vec<f64>,
    current: Vec<usize>,
    best: Option<Vec<usize>>,
    best_makespan: f64,
    leaves_left: u64,
}

impl Search<'_> {
    fn descend(&mut self, depth: usize) {
        if self.leaves_left == 0 {
            return;
        }
        if depth == self.order.len() {
            let makespan = self.sums.iter().copied().fold(0.0, f64::max);
            if makespan < self.best_makespan {
                self.best_makespan = makespan;
                self.best = Some(self.current.clone());
            }
            self.leaves_left -= 1;
            return;
        }
        let request = self.order[depth];
        let rate = self.rates[request].value();
        // Instances in increasing-sum order; skip duplicate sums (symmetric
        // branches) beyond the first.
        let mut candidates: Vec<usize> = (0..self.instances).collect();
        candidates.sort_by(|&a, &b| {
            self.sums[a]
                .partial_cmp(&self.sums[b])
                .expect("sums are finite")
                .then(a.cmp(&b))
        });
        let mut last_sum = f64::NAN;
        for k in candidates {
            if self.sums[k] == last_sum {
                continue; // symmetric to the previous branch
            }
            last_sum = self.sums[k];
            if self.sums[k] + rate >= self.best_makespan {
                continue; // bound: cannot improve
            }
            self.sums[k] += rate;
            self.current[request] = k;
            self.descend(depth + 1);
            self.sums[k] -= rate;
            if self.leaves_left == 0 {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates(values: &[f64]) -> Vec<ArrivalRate> {
        values
            .iter()
            .map(|&v| ArrivalRate::new(v).unwrap())
            .collect()
    }

    #[test]
    fn first_solution_is_lpt() {
        // LPT on {7,6,5,4} over 2: 7|6, 5->6 (11), 4->7 (11). Makespan 11.
        let schedule = Cga::new()
            .schedule(&rates(&[5.0, 7.0, 4.0, 6.0]), 2)
            .unwrap();
        let mut sums = schedule.instance_rate_sums();
        sums.sort_by(f64::total_cmp);
        assert_eq!(sums, vec![11.0, 11.0]);
    }

    #[test]
    fn lpt_suboptimal_case_improves_with_budget() {
        // Classic LPT trap for 2-way: {3,3,2,2,2}. LPT builds sums
        // 3|3 -> 5|3 -> 5|5 -> 7|5, makespan 7; optimal is {3,3}|{2,2,2}
        // at 6/6.
        let input = rates(&[3.0, 3.0, 2.0, 2.0, 2.0]);
        let greedy = Cga::new().schedule(&input, 2).unwrap();
        assert_eq!(greedy.makespan(), 7.0);
        let exact = Cga::new()
            .with_leaf_budget(10_000)
            .schedule(&input, 2)
            .unwrap();
        assert_eq!(exact.makespan(), 6.0);
    }

    #[test]
    fn exact_mode_matches_brute_force_small() {
        let input = rates(&[9.0, 7.0, 6.0, 5.0, 4.0, 2.0]);
        let exact = Cga::new()
            .with_leaf_budget(1_000_000)
            .schedule(&input, 3)
            .unwrap();
        // Brute force over 3^6 assignments.
        let values = [9.0, 7.0, 6.0, 5.0, 4.0, 2.0];
        let mut best = f64::INFINITY;
        for code in 0..3usize.pow(6) {
            let mut sums = [0.0f64; 3];
            let mut c = code;
            for &v in &values {
                sums[c % 3] += v;
                c /= 3;
            }
            best = best.min(sums.iter().copied().fold(0.0, f64::max));
        }
        assert_eq!(exact.makespan(), best);
    }

    #[test]
    fn iterative_lpt_matches_first_dfs_leaf() {
        // The budget-1 fast path and the DFS's first leaf must agree; use a
        // budget-2 run whose first recorded leaf is LPT and compare
        // makespans on inputs where the second leaf cannot improve.
        let input = rates(&[10.0, 9.0, 8.0, 3.0, 2.0, 1.0]);
        let fast = Cga::new().schedule(&input, 3).unwrap();
        // Emulate LPT by hand.
        let mut sums = [0.0f64; 3];
        let mut order: Vec<usize> = (0..input.len()).collect();
        order.sort_by(|&a, &b| input[b].value().partial_cmp(&input[a].value()).unwrap());
        for &r in &order {
            let k = (0..3)
                .min_by(|&a, &b| sums[a].partial_cmp(&sums[b]).unwrap())
                .unwrap();
            sums[k] += input[r].value();
        }
        let expected = sums.iter().copied().fold(0.0, f64::max);
        assert_eq!(fast.makespan(), expected);
    }

    #[test]
    fn large_inputs_do_not_overflow_the_stack() {
        // Regression: the DFS recursed once per request; 20k requests at
        // budget 1 must run iteratively.
        let values: Vec<f64> = (0..20_000).map(|i| 1.0 + (i % 100) as f64).collect();
        let input = rates(&values);
        let schedule = Cga::new().schedule(&input, 25).unwrap();
        assert_eq!(schedule.requests(), 20_000);
    }

    #[test]
    fn handles_single_instance() {
        let schedule = Cga::new().schedule(&rates(&[2.0, 3.0]), 1).unwrap();
        assert_eq!(schedule.makespan(), 5.0);
    }

    #[test]
    fn rejects_empty_inputs() {
        assert!(Cga::new().schedule(&[], 2).is_err());
        assert!(Cga::new().schedule(&rates(&[1.0]), 0).is_err());
    }

    #[test]
    fn deterministic() {
        let input = rates(&[5.0, 4.0, 3.0, 2.0, 1.0]);
        let a = Cga::new().schedule(&input, 2).unwrap();
        let b = Cga::new().schedule(&input, 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Cga::new().name(), "cga");
    }
}
