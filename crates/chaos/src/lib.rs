//! Seeded, deterministic fault injection for the NFV fleet.
//!
//! A [`FaultPlan`] is a reproducible schedule of control-plane faults —
//! shard-worker panics mid-drain, tenant-controller crashes at epoch
//! boundaries, event-channel drops and duplicates, injected state
//! corruption, and wedged drains — indexed by fleet epoch. Plans are
//! derived from a seed through the same SplitMix64 mixer the parallel
//! runtime uses ([`nfv_parallel::derive_seed`]), with one *independent*
//! stream per epoch: the plan never touches the workload or controller
//! RNG streams, so a faulted run pumps the exact same churn events as an
//! undisturbed one — which is what makes "recovery produces a
//! byte-identical journal" a meaningful invariant rather than a
//! coincidence.
//!
//! The crate is deliberately mechanism-free: it names shards and tenants
//! by raw index and says *what* goes wrong *when*; the fleet decides how
//! each fault manifests and how checkpoint/restore repairs it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nfv_parallel::derive_seed;

/// One injected control-plane fault. Shards are named by their index in
/// the fleet's shard vector, tenants by their fleet-wide tenant id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// The shard's drain worker panics mid-epoch. The supervised drain
    /// contains the panic, quarantines the shard, restores it from its
    /// epoch checkpoint, and replays the epoch's pumped events.
    ShardPanic {
        /// Index of the shard whose worker panics.
        shard: usize,
    },
    /// The tenant's controller is lost at the end of the epoch (as if its
    /// process died after draining). Recovered from the tenant's epoch
    /// checkpoint plus an event replay.
    TenantCrash {
        /// Fleet-wide id of the crashed tenant.
        tenant: u32,
    },
    /// The `nth` event pumped to this tenant during the epoch is silently
    /// dropped before the controller sees it (a lossy channel).
    ChannelDrop {
        /// Fleet-wide id of the affected tenant.
        tenant: u32,
        /// Zero-based index, within the epoch, of the dropped event.
        nth: u64,
    },
    /// The `nth` event pumped to this tenant during the epoch is
    /// delivered twice (an at-least-once channel).
    ChannelDup {
        /// Fleet-wide id of the affected tenant.
        tenant: u32,
        /// Zero-based index, within the epoch, of the duplicated event.
        nth: u64,
    },
    /// The tenant's live conservation counters are corrupted mid-epoch
    /// (`admitted + retry_admitted == active + departed + shed` is
    /// broken), simulating silent state damage that only an invariant
    /// sweep can catch.
    CorruptState {
        /// Fleet-wide id of the corrupted tenant.
        tenant: u32,
    },
    /// The tenant's *checkpoint* is corrupted, so when a later fault
    /// tries to restore from it the restore fails and the tenant must be
    /// retired through the quarantine path instead of recovered.
    CorruptCheckpoint {
        /// Fleet-wide id of the affected tenant.
        tenant: u32,
    },
    /// The tenant's drain wedges: its channel stops making progress for
    /// the rest of the epoch while events keep arriving, exercising the
    /// fleet's pump-stall detection.
    WedgeDrain {
        /// Fleet-wide id of the wedged tenant.
        tenant: u32,
    },
}

impl FaultKind {
    /// A stable snake_case label for journals and telemetry `cause`
    /// fields.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::ShardPanic { .. } => "shard_panic",
            Self::TenantCrash { .. } => "tenant_crash",
            Self::ChannelDrop { .. } => "channel_drop",
            Self::ChannelDup { .. } => "channel_dup",
            Self::CorruptState { .. } => "corrupt_state",
            Self::CorruptCheckpoint { .. } => "corrupt_checkpoint",
            Self::WedgeDrain { .. } => "wedge_drain",
        }
    }

    /// The tenant this fault targets, when it targets a single tenant.
    #[must_use]
    pub fn tenant(&self) -> Option<u32> {
        match *self {
            Self::ShardPanic { .. } => None,
            Self::TenantCrash { tenant }
            | Self::ChannelDrop { tenant, .. }
            | Self::ChannelDup { tenant, .. }
            | Self::CorruptState { tenant }
            | Self::CorruptCheckpoint { tenant }
            | Self::WedgeDrain { tenant } => Some(tenant),
        }
    }
}

/// Per-epoch fault probabilities, each in `[0, 1]`. A rate applies
/// independently per shard (for [`FaultKind::ShardPanic`]) or per tenant
/// (everything else) per epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability a given shard's worker panics in a given epoch.
    pub shard_panic: f64,
    /// Probability a given tenant crashes at a given epoch boundary.
    pub tenant_crash: f64,
    /// Probability a given tenant loses one pumped event in an epoch.
    pub channel_drop: f64,
    /// Probability a given tenant sees one duplicated event in an epoch.
    pub channel_dup: f64,
    /// Probability a given tenant's live counters are corrupted.
    pub corrupt_state: f64,
    /// Probability a given tenant's checkpoint is corrupted.
    pub corrupt_checkpoint: f64,
    /// Probability a given tenant's drain wedges for an epoch.
    pub wedge_drain: f64,
}

impl FaultRates {
    /// No faults at all.
    #[must_use]
    pub fn none() -> Self {
        Self {
            shard_panic: 0.0,
            tenant_crash: 0.0,
            channel_drop: 0.0,
            channel_dup: 0.0,
            corrupt_state: 0.0,
            corrupt_checkpoint: 0.0,
            wedge_drain: 0.0,
        }
    }

    /// Every *recoverable* fault at the same rate: panics, crashes,
    /// channel drops/dups, and live-state corruption. Checkpoint
    /// corruption and drain wedges — the faults whose outcome is
    /// quarantine or a typed error rather than transparent recovery —
    /// stay off so the byte-identity invariant can hold.
    #[must_use]
    pub fn recoverable(rate: f64) -> Self {
        Self {
            shard_panic: rate,
            tenant_crash: rate,
            channel_drop: rate,
            channel_dup: rate,
            corrupt_state: rate,
            ..Self::none()
        }
    }
}

/// A reproducible, epoch-indexed schedule of injected faults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// `epochs[e]` lists the faults injected during fleet epoch `e`;
    /// epochs past the end are fault-free.
    epochs: Vec<Vec<FaultKind>>,
}

/// A SplitMix64 stream — the same mixer as
/// [`nfv_parallel::derive_seed`], iterated.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` from the high 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl FaultPlan {
    /// The empty plan: no faults in any epoch. Running the fleet under
    /// this plan is exactly the undisturbed run.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Derives a plan for `epochs` fleet epochs over `shards` shards and
    /// `tenants` tenants (tenant ids `0..tenants`). Each epoch draws from
    /// its own `derive_seed(seed, epoch)` SplitMix64 stream in a fixed
    /// order — shards first, then per-tenant fault kinds in declaration
    /// order — so the plan for epoch `e` never depends on how many other
    /// epochs exist. At most one fault is kept per tenant per epoch (the
    /// first kind that fires), keeping recovery scenarios untangled;
    /// shard panics are independent of tenant faults.
    #[must_use]
    pub fn seeded(
        seed: u64,
        epochs: usize,
        shards: usize,
        tenants: u32,
        rates: &FaultRates,
    ) -> Self {
        let mut plan = Vec::with_capacity(epochs);
        for epoch in 0..epochs {
            let mut stream = SplitMix64(derive_seed(seed, epoch as u64));
            let mut faults = Vec::new();
            for shard in 0..shards {
                if stream.next_f64() < rates.shard_panic {
                    faults.push(FaultKind::ShardPanic { shard });
                }
            }
            for tenant in 0..tenants {
                // Each kind draws unconditionally so a tenant consumes a
                // fixed number of draws per epoch regardless of which
                // fault (if any) fires — changing one rate cannot shift
                // another tenant's stream.
                let draws = [
                    stream.next_f64() < rates.tenant_crash,
                    stream.next_f64() < rates.channel_drop,
                    stream.next_f64() < rates.channel_dup,
                    stream.next_f64() < rates.corrupt_state,
                    stream.next_f64() < rates.corrupt_checkpoint,
                    stream.next_f64() < rates.wedge_drain,
                ];
                let nth = stream.next_u64() % 8;
                let kind = draws.iter().position(|&fired| fired).map(|k| match k {
                    0 => FaultKind::TenantCrash { tenant },
                    1 => FaultKind::ChannelDrop { tenant, nth },
                    2 => FaultKind::ChannelDup { tenant, nth },
                    3 => FaultKind::CorruptState { tenant },
                    4 => FaultKind::CorruptCheckpoint { tenant },
                    _ => FaultKind::WedgeDrain { tenant },
                });
                faults.extend(kind);
            }
            plan.push(faults);
        }
        Self { epochs: plan }
    }

    /// Adds one explicit fault to an epoch (growing the plan as needed) —
    /// the hand-built-scenario escape hatch for tests.
    #[must_use]
    pub fn with_fault(mut self, epoch: usize, fault: FaultKind) -> Self {
        if epoch >= self.epochs.len() {
            self.epochs.resize_with(epoch + 1, Vec::new);
        }
        self.epochs[epoch].push(fault);
        self
    }

    /// The faults injected during fleet epoch `epoch` (empty past the
    /// planned horizon).
    #[must_use]
    pub fn for_epoch(&self, epoch: usize) -> &[FaultKind] {
        self.epochs.get(epoch).map_or(&[], Vec::as_slice)
    }

    /// Whether the plan injects no faults at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.epochs.iter().all(Vec::is_empty)
    }

    /// Total number of scheduled faults across all epochs.
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.epochs.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let rates = FaultRates::recoverable(0.3);
        let a = FaultPlan::seeded(42, 16, 4, 12, &rates);
        let b = FaultPlan::seeded(42, 16, 4, 12, &rates);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::seeded(43, 16, 4, 12, &rates));
        assert!(!a.is_empty(), "rate 0.3 over 16 epochs should fire");
    }

    #[test]
    fn epoch_streams_are_independent_of_the_horizon() {
        let rates = FaultRates::recoverable(0.25);
        let short = FaultPlan::seeded(7, 4, 2, 6, &rates);
        let long = FaultPlan::seeded(7, 12, 2, 6, &rates);
        for epoch in 0..4 {
            assert_eq!(short.for_epoch(epoch), long.for_epoch(epoch));
        }
        assert_eq!(long.for_epoch(20), &[] as &[FaultKind]);
    }

    #[test]
    fn zero_rates_give_the_empty_plan_and_certainty_fires_everywhere() {
        let empty = FaultPlan::seeded(42, 8, 3, 5, &FaultRates::none());
        assert!(empty.is_empty());
        assert_eq!(empty.fault_count(), 0);
        assert!(FaultPlan::none().is_empty());

        let rates = FaultRates {
            tenant_crash: 1.0,
            ..FaultRates::none()
        };
        let certain = FaultPlan::seeded(42, 3, 2, 4, &rates);
        // Every tenant crashes every epoch; nothing else fires.
        assert_eq!(certain.fault_count(), 3 * 4);
        for epoch in 0..3 {
            for (tenant, fault) in certain.for_epoch(epoch).iter().enumerate() {
                assert_eq!(
                    *fault,
                    FaultKind::TenantCrash {
                        tenant: tenant as u32
                    }
                );
            }
        }
    }

    #[test]
    fn at_most_one_fault_per_tenant_per_epoch() {
        let rates = FaultRates {
            tenant_crash: 0.9,
            channel_drop: 0.9,
            corrupt_state: 0.9,
            ..FaultRates::none()
        };
        let plan = FaultPlan::seeded(1, 10, 1, 8, &rates);
        for epoch in 0..10 {
            let mut seen = std::collections::BTreeSet::new();
            for fault in plan.for_epoch(epoch) {
                if let Some(t) = fault.tenant() {
                    assert!(seen.insert(t), "tenant {t} faulted twice in epoch {epoch}");
                }
            }
        }
    }

    #[test]
    fn raising_one_rate_does_not_shift_other_tenants_draws() {
        // With fixed draws per tenant, turning checkpoint corruption on
        // only changes outcomes where that draw fires; the drop/dup draws
        // of *other* tenants are untouched.
        let base = FaultRates {
            channel_drop: 0.4,
            ..FaultRates::none()
        };
        let more = FaultRates {
            corrupt_checkpoint: 0.0001,
            ..base
        };
        let a = FaultPlan::seeded(9, 6, 1, 16, &base);
        let b = FaultPlan::seeded(9, 6, 1, 16, &more);
        // The tiny extra rate almost surely never fires, so the plans
        // must be identical — a regression guard on draw alignment.
        assert_eq!(a, b);
    }

    #[test]
    fn with_fault_builds_sparse_hand_plans() {
        let plan = FaultPlan::none()
            .with_fault(3, FaultKind::ShardPanic { shard: 1 })
            .with_fault(3, FaultKind::WedgeDrain { tenant: 2 })
            .with_fault(0, FaultKind::TenantCrash { tenant: 0 });
        assert_eq!(plan.fault_count(), 3);
        assert_eq!(plan.for_epoch(1), &[] as &[FaultKind]);
        assert_eq!(plan.for_epoch(3).len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.for_epoch(3)[0].label(), "shard_panic");
        assert_eq!(plan.for_epoch(3)[0].tenant(), None);
        assert_eq!(plan.for_epoch(3)[1].tenant(), Some(2));
    }
}
