//! Shape tests: the qualitative claims of the paper's evaluation section,
//! asserted on reduced-repetition versions of the experiment sweeps.
//! `EXPERIMENTS.md` records the full-scale numbers; these tests keep the
//! shapes from regressing.

use nfv::experiments::{placement, scheduling};

const REPS: u64 = 5;
const SCHED_REPS: u64 = 60;
const SEED: u64 = 20260705;

#[test]
fn fig5_shape_bfdsu_dominates_and_everyone_is_stable_across_requests() {
    let sweep = placement::fig5_utilization_vs_requests(REPS, SEED).unwrap();
    let bfdsu = sweep.series_values("bfdsu").unwrap();
    let ffd = sweep.series_values("ffd").unwrap();
    let nah = sweep.series_values("nah").unwrap();

    // BFDSU wins at every point (paper: 91.8% vs 68.6% vs 66.9%).
    for ((b, f), n) in bfdsu.iter().zip(&ffd).zip(&nah) {
        assert!(b > f, "bfdsu {b} <= ffd {f}");
        assert!(b > n, "bfdsu {b} <= nah {n}");
    }
    // The paper reports ~30% improvement; require at least 15% on the
    // reduced run.
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(mean(&bfdsu) / mean(&ffd) > 1.15);
    assert!(mean(&bfdsu) / mean(&nah) > 1.15);
    // Stability across the request sweep: BFDSU's utilization stays in a
    // narrow band (paper: "remains stable").
    let (min, max) = bfdsu.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &v| {
        (lo.min(v), hi.max(v))
    });
    assert!(max - min < 15.0, "bfdsu utilization swings {min}..{max}");
}

#[test]
fn fig8_shape_bfdsu_uses_fewest_nodes() {
    let sweep = placement::fig8_nodes_in_service(REPS, SEED).unwrap();
    let bfdsu = sweep.series_mean("bfdsu").unwrap();
    let ffd = sweep.series_mean("ffd").unwrap();
    let nah = sweep.series_mean("nah").unwrap();
    // Paper ordering: BFDSU 8.56 < NAH 10.55 < FFD 10.80.
    assert!(bfdsu < nah, "bfdsu {bfdsu} >= nah {nah}");
    assert!(bfdsu < ffd, "bfdsu {bfdsu} >= ffd {ffd}");
}

#[test]
fn fig9_shape_bfdsu_occupies_least_capacity() {
    let sweep = placement::fig9_resource_occupation(REPS, SEED).unwrap();
    assert!(sweep.series_mean("bfdsu").unwrap() < sweep.series_mean("ffd").unwrap());
    assert!(sweep.series_mean("bfdsu").unwrap() < sweep.series_mean("nah").unwrap());
}

#[test]
fn fig10_shape_ffd_is_single_pass_and_nah_restarts_most() {
    let sweep = placement::fig10_iterations_vs_requests(REPS, SEED).unwrap();
    let ffd = sweep.series_values("ffd").unwrap();
    assert!(
        ffd.iter().all(|&it| it == 1.0),
        "ffd must be single-pass: {ffd:?}"
    );
    let bfdsu = sweep.series_mean("bfdsu").unwrap();
    let nah = sweep.series_mean("nah").unwrap();
    // Paper: NAH needs ~3x BFDSU's executions.
    assert!(
        nah > bfdsu * 2.0,
        "nah {nah} not clearly above bfdsu {bfdsu}"
    );
}

#[test]
fn fig11_shape_enhancement_shrinks_with_request_count() {
    let sweep = scheduling::fig11_12_response_vs_requests(0.98, SCHED_REPS, SEED).unwrap();
    let enh = sweep.series_values("enhancement%").unwrap();
    // RCKK never loses, and the first point's advantage dwarfs the last's
    // (paper: 41.9% -> 2.1%).
    assert!(
        enh.iter().all(|&e| e >= -0.5),
        "rckk lost somewhere: {enh:?}"
    );
    assert!(
        enh[0] > 5.0,
        "first-point enhancement too small: {}",
        enh[0]
    );
    assert!(
        enh[0] > 4.0 * enh[enh.len() - 1].max(0.01),
        "enhancement did not shrink: {enh:?}"
    );
}

#[test]
fn fig13_shape_enhancement_grows_with_instance_count() {
    let sweep = scheduling::fig13_14_response_vs_instances(0.98, SCHED_REPS, SEED).unwrap();
    let enh = sweep.series_values("enhancement%").unwrap();
    // Paper: 5.2% at m = 2 up to 25.1% at m = 10; require a clear upward
    // trend (last third above first third).
    let first: f64 = enh[..3].iter().sum::<f64>() / 3.0;
    let last: f64 = enh[enh.len() - 3..].iter().sum::<f64>() / 3.0;
    assert!(last > first, "enhancement not growing with m: {enh:?}");
}

#[test]
fn loss_raises_latency_and_enhancement() {
    let lossy = scheduling::fig11_12_response_vs_requests(0.98, SCHED_REPS, SEED).unwrap();
    let clean = scheduling::fig11_12_response_vs_requests(1.0, SCHED_REPS, SEED).unwrap();
    // Paper: higher loss -> higher response time and higher enhancement.
    assert!(lossy.series_mean("rckk").unwrap() > clean.series_mean("rckk").unwrap());
    assert!(
        lossy.series_mean("enhancement%").unwrap() >= clean.series_mean("enhancement%").unwrap()
    );
}

#[test]
fn tail_shape_rckk_improves_p99() {
    let sweep = scheduling::tail_p99_vs_requests(SCHED_REPS, SEED).unwrap();
    let rckk = sweep.series_values("rckk_p99").unwrap();
    let cga = sweep.series_values("cga_p99").unwrap();
    // p99 over a reduced repetition count is noisy; allow 2% per-row slack
    // but require a mean improvement.
    for (r, c) in rckk.iter().zip(&cga) {
        assert!(*r <= c * 1.02, "rckk p99 {r} far above cga p99 {c}");
    }
    // At this repetition count the two means can tie to within a fraction
    // of a percent depending on the RNG stream (see EXPERIMENTS.md, "Shape
    // test tolerances"), so require "no worse than" with 1% slack rather
    // than a strict win.
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&rckk) <= mean(&cga) * 1.01,
        "rckk p99 mean clearly worse: {} vs {}",
        mean(&rckk),
        mean(&cga)
    );
}

#[test]
fn fig15_16_shape_rejection_ordering() {
    let low_loss = scheduling::fig15_16_rejection_vs_requests(0.997, SCHED_REPS, SEED).unwrap();
    let high_loss = scheduling::fig15_16_rejection_vs_requests(0.984, SCHED_REPS, SEED).unwrap();
    for sweep in [&low_loss, &high_loss] {
        let rckk = sweep.series_values("rckk").unwrap();
        let cga = sweep.series_values("cga").unwrap();
        // Deep in oversubscription both algorithms must drop the same
        // excess, so allow small per-row slack; the ordering claim is on
        // the means.
        for (r, c) in rckk.iter().zip(&cga) {
            assert!(*r <= c * 1.05 + 0.2, "rckk rejection {r} far above cga {c}");
        }
        // Deep in oversubscription both algorithms drop nearly the same
        // excess, so the means tie to within ~0.05pp and the sign of the
        // difference is RNG-stream dependent (see EXPERIMENTS.md, "Shape
        // test tolerances"); 0.2pp slack keeps only real regressions.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&rckk) <= mean(&cga) + 0.2,
            "rckk mean rejection above cga: {} vs {}",
            mean(&rckk),
            mean(&cga)
        );
        // Rejection grows with the request count (fixed capacity).
        let rows = sweep.rows();
        assert!(
            rows.last().unwrap().values[1] >= rows[0].values[1],
            "cga rejection not growing"
        );
    }
    // Higher loss rate -> higher rejection rate (paper Fig. 15 vs 16).
    assert!(
        high_loss.series_mean("cga").unwrap() >= low_loss.series_mean("cga").unwrap(),
        "loss did not raise cga rejection"
    );
}
