//! Multi-tenant trace interleaving: N independent tenant event streams
//! merged into one deterministic, virtual-time-ordered fleet stream.
//!
//! Each tenant is an isolated world — its own [`Scenario`](crate::Scenario),
//! its own churn trace, its own id space — but a fleet process consumes
//! them as a single stream. The merge order is total and seed-stable:
//! events sort by `(time, tenant, per-tenant sequence)`, so simultaneous
//! events across tenants resolve by tenant id and a tenant's own events
//! never reorder. Times are the non-negative finite virtual seconds the
//! churn layer guarantees, compared via `to_bits` (exact, no float
//! comparator).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::churn::TimedEvent;

/// Identifier of one tenant in a fleet (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(u32);

impl TenantId {
    /// Creates a tenant id from its dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// The dense index as `usize` (for slab addressing).
    #[must_use]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// The dense index.
    #[must_use]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Derives a tenant's private seed from the fleet seed: a SplitMix64
/// finalizer over the golden-ratio-striped tenant index, so neighbouring
/// tenants get decorrelated streams while the whole fleet stays a pure
/// function of one seed.
#[must_use]
pub fn tenant_seed(fleet_seed: u64, tenant: TenantId) -> u64 {
    let mut x = fleet_seed.wrapping_add(
        u64::from(tenant.as_u32().wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// One tenant's event inside the merged fleet stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantEvent {
    tenant: TenantId,
    seq: u64,
    event: TimedEvent,
}

impl TenantEvent {
    /// The tenant the event belongs to.
    #[must_use]
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The event's 0-based position within its tenant's own stream.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The timed event itself.
    #[must_use]
    pub fn event(&self) -> &TimedEvent {
        &self.event
    }

    /// Decomposes into `(tenant, seq, event)`, consuming the wrapper.
    #[must_use]
    pub fn into_parts(self) -> (TenantId, u64, TimedEvent) {
        (self.tenant, self.seq, self.event)
    }
}

/// Heap entry: the current head of one tenant stream, ordered by the
/// merge key `(time.to_bits(), tenant, seq)`. The BinaryHeap is a
/// max-heap, so comparisons are reversed to pop the smallest key first.
#[derive(Debug)]
struct Head {
    key: (u64, u32, u64),
    event: TimedEvent,
}

impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for Head {}

impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Head {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.cmp(&self.key)
    }
}

/// A lazy k-way merge of per-tenant event streams into one fleet stream
/// ordered by `(time, tenant, seq)`. Consumes the underlying iterators
/// one event at a time, so interleaving N lazy
/// [`ChurnStream`](crate::churn::ChurnStream)s never materializes a
/// tenant's whole trace.
#[derive(Debug)]
pub struct TenantInterleave<I: Iterator<Item = TimedEvent>> {
    streams: Vec<I>,
    seqs: Vec<u64>,
    heads: BinaryHeap<Head>,
}

impl<I: Iterator<Item = TimedEvent>> TenantInterleave<I> {
    /// Creates the merge over one stream per tenant; stream `i` becomes
    /// [`TenantId::new(i)`]. Each stream must already be in
    /// non-decreasing time order (churn traces and streams are).
    #[must_use]
    pub fn new(streams: Vec<I>) -> Self {
        let mut this = Self {
            seqs: vec![0; streams.len()],
            heads: BinaryHeap::with_capacity(streams.len()),
            streams,
        };
        for tenant in 0..this.streams.len() {
            this.refill(tenant);
        }
        this
    }

    /// Pulls the next event of `tenant`'s stream into the heap.
    fn refill(&mut self, tenant: usize) {
        if let Some(event) = self.streams[tenant].next() {
            let seq = self.seqs[tenant];
            self.seqs[tenant] += 1;
            self.heads.push(Head {
                key: (event.time().to_bits(), tenant as u32, seq),
                event,
            });
        }
    }
}

impl<I: Iterator<Item = TimedEvent>> Iterator for TenantInterleave<I> {
    type Item = TenantEvent;

    fn next(&mut self) -> Option<Self::Item> {
        let head = self.heads.pop()?;
        let (_, tenant, seq) = head.key;
        self.refill(tenant as usize);
        Some(TenantEvent {
            tenant: TenantId::new(tenant),
            seq,
            event: head.event,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::{ChurnEvent, ChurnTraceBuilder};
    use crate::{ScenarioBuilder, ServiceRatePolicy};

    fn tick(time: f64) -> TimedEvent {
        TimedEvent::new(time, ChurnEvent::ReoptimizeTick)
    }

    #[test]
    fn merge_orders_by_time_then_tenant_then_seq() {
        let streams = vec![
            vec![tick(0.0), tick(2.0), tick(2.0)].into_iter(),
            vec![tick(0.0), tick(1.0)].into_iter(),
            vec![tick(2.0)].into_iter(),
        ];
        let order: Vec<(u32, u64, f64)> = TenantInterleave::new(streams)
            .map(|e| (e.tenant().as_u32(), e.seq(), e.event().time()))
            .collect();
        assert_eq!(
            order,
            vec![
                // t=0: tenants in id order.
                (0, 0, 0.0),
                (1, 0, 0.0),
                (1, 1, 1.0),
                // t=2: tenant 0's two same-time events keep their seq
                // order, tenant 2 follows.
                (0, 1, 2.0),
                (0, 2, 2.0),
                (2, 0, 2.0),
            ]
        );
    }

    #[test]
    fn merge_of_real_streams_equals_stable_sort_of_tagged_union() {
        let fleet_seed = 99u64;
        let tenants = 5u32;
        let scenarios: Vec<_> = (0..tenants)
            .map(|t| {
                ScenarioBuilder::new()
                    .vnfs(3)
                    .requests(8)
                    .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
                        target_utilization: 0.5,
                    })
                    .seed(tenant_seed(fleet_seed, TenantId::new(t)))
                    .build()
                    .unwrap()
            })
            .collect();
        let builder = || {
            ChurnTraceBuilder::new()
                .horizon(30.0)
                .arrival_rate(0.7)
                .mean_holding(8.0)
                .tick_period(10.0)
        };
        // Oracle: materialize every tenant's trace, tag, stable-sort by
        // (time, tenant) — stability preserves per-tenant seq order.
        let mut oracle: Vec<(u32, TimedEvent)> = Vec::new();
        for (t, s) in scenarios.iter().enumerate() {
            let trace = builder().seed(t as u64).build(s).unwrap();
            oracle.extend(trace.events().iter().map(|e| (t as u32, e.clone())));
        }
        oracle.sort_by_key(|(t, e)| (e.time().to_bits(), *t));
        // Subject: the lazy k-way merge over the streaming generators.
        let streams: Vec<_> = scenarios
            .iter()
            .enumerate()
            .map(|(t, s)| builder().seed(t as u64).stream(s).unwrap())
            .collect();
        let merged: Vec<(u32, TimedEvent)> = TenantInterleave::new(streams)
            .map(|e| {
                let (tenant, _, event) = e.into_parts();
                (tenant.as_u32(), event)
            })
            .collect();
        assert_eq!(merged, oracle);
    }

    #[test]
    fn tenant_seeds_are_deterministic_and_distinct() {
        let a = tenant_seed(7, TenantId::new(0));
        assert_eq!(a, tenant_seed(7, TenantId::new(0)));
        let seeds: std::collections::BTreeSet<u64> =
            (0..256).map(|t| tenant_seed(7, TenantId::new(t))).collect();
        assert_eq!(seeds.len(), 256, "no collisions across a 256-fleet");
        assert_ne!(
            tenant_seed(7, TenantId::new(1)),
            tenant_seed(8, TenantId::new(1)),
            "fleet seed matters"
        );
    }

    #[test]
    fn tenant_id_formats_and_indexes() {
        let t = TenantId::new(3);
        assert_eq!(t.to_string(), "tenant3");
        assert_eq!(t.as_usize(), 3);
        assert_eq!(t.as_u32(), 3);
    }
}
