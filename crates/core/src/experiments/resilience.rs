//! Resilience experiment: node-level failure domains under the
//! graceful-degradation ladder.
//!
//! The churn experiment asks how well a good assignment can be *kept*
//! under request churn; this one asks how fast it can be *recovered* when
//! whole nodes fail. One scenario, one seeded trace with a node-outage
//! process (per-node MTBF/MTTR, optionally correlated racks), and one
//! initial BFDSU placement are replayed through four policies that
//! differ only in their recovery machinery:
//!
//! * **tick-only/no-retry** — [`ControllerConfig::joint_reopt`]: failed
//!   hosts are only re-placed by the next periodic tick, and shed or
//!   rejected requests are gone for good;
//! * **tick-only/retry** — the same tick-bound re-placement, plus the
//!   seeded exponential-backoff [`RetryConfig`] queue re-offering shed
//!   and rejected arrivals;
//! * **emergency/no-retry** — an [`EmergencyConfig`] re-places around the
//!   failure *at the failure event* (bounded BFDSU delta over the
//!   surviving nodes, brownout admission while any node is dark), but
//!   requests lost in the failover are not retried;
//! * **emergency/retry** — [`ControllerConfig::resilient`], the full
//!   ladder.
//!
//! The ordering the `figures resilience` subcommand asserts by printing
//! it: emergency re-placement restores full availability measurably
//! faster than waiting for the tick (higher availability, shorter mean
//! recovery), and the retry queue converts lost requests into delayed
//! ones, so emergency/retry loses the fewest requests of all four.

use nfv_controller::{
    Controller, ControllerConfig, ControllerReport, EmergencyConfig, EventOutcome, RetryConfig,
};
use nfv_metrics::Table;
use nfv_parallel::par_map;
use nfv_telemetry::{Telemetry, TelemetryArtifacts};
use nfv_workload::churn::{ChurnTrace, ChurnTraceBuilder};
use nfv_workload::{Scenario, ScenarioBuilder, ServiceRatePolicy};
use serde::{Deserialize, Serialize};

use super::churn::{setup_cluster, ChurnPoint};
use crate::CoreError;

/// Parameters of one resilience run: the churn-experiment shape plus the
/// node-outage process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResiliencePoint {
    /// Number of VNF types in the scenario.
    pub vnfs: usize,
    /// Base request population present at `t = 0`.
    pub base_requests: usize,
    /// Utilization a perfectly balanced base population would induce.
    pub target_utilization: f64,
    /// Virtual-time horizon of the trace, seconds.
    pub horizon: f64,
    /// Poisson rate of churn arrivals, requests per second.
    pub arrival_rate: f64,
    /// Mean exponential holding time of every request, seconds.
    pub mean_holding: f64,
    /// Re-optimization tick period, seconds.
    pub tick_period: f64,
    /// Number of computing nodes in the physical cluster.
    pub nodes: usize,
    /// Fraction of the total node capacity the `t = 0` fleet demands.
    pub fill: f64,
    /// Mean exponential time between failures of each node, seconds.
    pub node_mtbf: f64,
    /// Mean exponential repair time of a failed node, seconds.
    pub node_mttr: f64,
    /// Nodes per correlated failure domain (1 = independent failures).
    pub rack_size: usize,
}

impl ResiliencePoint {
    /// The default configuration: the churn experiment's moderate load,
    /// with node outages sized so a handful of failures strike inside the
    /// horizon and each one outlives more than one backoff interval but
    /// not a whole tick period.
    #[must_use]
    pub fn base() -> Self {
        Self {
            vnfs: 6,
            base_requests: 60,
            target_utilization: 0.85,
            horizon: 300.0,
            arrival_rate: 2.0,
            mean_holding: 30.0,
            tick_period: 25.0,
            nodes: 8,
            fill: 0.4,
            node_mtbf: 600.0,
            node_mttr: 40.0,
            rack_size: 1,
        }
    }

    /// A correlated-failure configuration: racks of two nodes fail
    /// together, doubling the blast radius of every outage.
    #[must_use]
    pub fn racked() -> Self {
        Self {
            rack_size: 2,
            ..Self::base()
        }
    }

    /// The equivalent [`ChurnPoint`], for sharing the cluster setup.
    fn as_churn_point(&self) -> ChurnPoint {
        ChurnPoint {
            vnfs: self.vnfs,
            base_requests: self.base_requests,
            target_utilization: self.target_utilization,
            horizon: self.horizon,
            arrival_rate: self.arrival_rate,
            mean_holding: self.mean_holding,
            tick_period: self.tick_period,
            outage_rate: 0.0,
            mean_outage: 1.0,
            nodes: self.nodes,
            fill: self.fill,
        }
    }
}

/// One policy's end-of-run result, with the availability statistics
/// extracted from the per-event replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceOutcome {
    /// Policy name (`tick-only/no-retry`, `tick-only/retry`,
    /// `emergency/no-retry`, `emergency/retry`).
    pub policy: String,
    /// Fraction of the horizon during which every VNF had at least one up
    /// instance, in `[0, 1]`.
    pub availability: f64,
    /// Number of unavailability episodes (an episode opens when some VNF
    /// loses its last up instance and closes when full availability
    /// returns).
    pub episodes: u64,
    /// Mean episode duration, seconds (0 when no episode occurred).
    pub mean_recovery: f64,
    /// The controller's final report at the horizon.
    pub report: ControllerReport,
}

/// The four policies' results over the same scenario, trace and initial
/// placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceComparison {
    /// The run parameters.
    pub point: ResiliencePoint,
    /// Base seed used for scenario, trace and cluster generation.
    pub seed: u64,
    /// One outcome per policy, in `[tick-only/no-retry, tick-only/retry,
    /// emergency/no-retry, emergency/retry]` order.
    pub outcomes: Vec<ResilienceOutcome>,
}

impl ResilienceComparison {
    /// The outcome of one policy by name.
    #[must_use]
    pub fn outcome(&self, policy: &str) -> Option<&ResilienceOutcome> {
        self.outcomes.iter().find(|o| o.policy == policy)
    }

    /// Renders the comparison as a plain-text table: one row per policy
    /// with availability, recovery and loss statistics.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(vec![
            "policy",
            "avail (%)",
            "episodes",
            "mean recovery (s)",
            "lost",
            "shed",
            "retry ok/dropped",
            "emergency passes",
            "inst +/moved",
            "mean W (ms)",
        ]);
        for outcome in &self.outcomes {
            let r = &outcome.report;
            table.row(vec![
                outcome.policy.clone(),
                format!("{:.3}", outcome.availability * 100.0),
                format!("{}", outcome.episodes),
                format!("{:.3}", outcome.mean_recovery),
                format!("{}", r.lost()),
                format!("{}", r.shed),
                format!("{}/{}", r.retry_admitted, r.retry_abandoned),
                format!("{}", r.emergency_replaces),
                format!("{}/{}", r.instances_added, r.relocations),
                format!("{:.4}", r.mean_latency * 1e3),
            ]);
        }
        table
    }
}

/// Builds the scenario and node-outage trace for a point.
pub fn setup(point: &ResiliencePoint, seed: u64) -> Result<(Scenario, ChurnTrace), CoreError> {
    let scenario = ScenarioBuilder::new()
        .vnfs(point.vnfs)
        .requests(point.base_requests)
        .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
            target_utilization: point.target_utilization,
        })
        .seed(seed)
        .build()?;
    let trace = ChurnTraceBuilder::new()
        .horizon(point.horizon)
        .arrival_rate(point.arrival_rate)
        .mean_holding(point.mean_holding)
        .tick_period(point.tick_period)
        .node_fleet(point.nodes)
        .node_mtbf(point.node_mtbf)
        .node_mttr(point.node_mttr)
        .rack_size(point.rack_size)
        .seed(seed.wrapping_add(1))
        .build(&scenario)?;
    Ok((scenario, trace))
}

/// Replays one trace, tracking full-availability transitions in virtual
/// time, and returns `(availability, episodes, mean_recovery)` alongside
/// the final report.
fn replay(
    controller: &mut Controller,
    trace: &ChurnTrace,
    horizon: f64,
    tel: &mut Telemetry,
) -> (f64, u64, f64, ControllerReport) {
    let mut down_since: Option<f64> = None;
    let mut downtime = 0.0;
    let mut episodes = 0u64;
    for event in trace.events() {
        let outcome = controller.handle_traced(event, tel);
        let up = controller.state().fully_available();
        // A node failure the emergency pass repaired within the same
        // virtual instant still counts as a (zero-length) recovery
        // episode; otherwise instant repairs would vanish from the mean
        // and make it look *worse* than slow ones.
        if let EventOutcome::NodeDownHandled { vnfs_lost, .. } = outcome {
            if vnfs_lost > 0 && up && down_since.is_none() {
                episodes += 1;
            }
        }
        match (up, down_since) {
            (false, None) => down_since = Some(event.time()),
            (true, Some(since)) => {
                downtime += event.time() - since;
                episodes += 1;
                down_since = None;
            }
            _ => {}
        }
    }
    controller.finish_traced(horizon, tel);
    if let Some(since) = down_since {
        downtime += horizon - since;
        episodes += 1;
    }
    let availability = 1.0 - downtime / horizon;
    let mean_recovery = if episodes > 0 {
        downtime / episodes as f64
    } else {
        0.0
    };
    (availability, episodes, mean_recovery, controller.report())
}

/// Replays one seeded trace through the four recovery policies.
pub fn run(point: &ResiliencePoint, seed: u64) -> Result<ResilienceComparison, CoreError> {
    run_inner(point, seed, false).map(|(comparison, _)| comparison)
}

/// [`run`] with telemetry: each policy replays under its own enabled
/// session, and the artifacts are merged in policy order (so the merged
/// journal is identical at any thread count).
pub fn run_instrumented(
    point: &ResiliencePoint,
    seed: u64,
) -> Result<(ResilienceComparison, TelemetryArtifacts), CoreError> {
    run_inner(point, seed, true)
}

fn run_inner(
    point: &ResiliencePoint,
    seed: u64,
    instrument: bool,
) -> Result<(ResilienceComparison, TelemetryArtifacts), CoreError> {
    let (scenario, trace) = setup(point, seed)?;
    let (nodes, placement) = setup_cluster(&point.as_churn_point(), seed, &scenario)?;
    let tick_only = ControllerConfig::joint_reopt();
    let configs = [
        ("tick-only/no-retry", tick_only),
        (
            "tick-only/retry",
            ControllerConfig {
                retry: Some(RetryConfig::bounded()),
                ..tick_only
            },
        ),
        (
            "emergency/no-retry",
            ControllerConfig {
                emergency: Some(EmergencyConfig::bounded()),
                ..tick_only
            },
        ),
        ("emergency/retry", ControllerConfig::resilient()),
    ];
    let mut controllers = Vec::with_capacity(configs.len());
    for (name, config) in configs {
        controllers.push((
            name,
            Controller::with_cluster(&scenario, nodes.clone(), &placement, config)?,
        ));
    }
    // The four policies replay the same borrowed trace independently, so
    // they fan out on the worker pool; results come back in policy order.
    let horizon = point.horizon;
    let results = par_map(controllers, |_, (name, mut controller)| {
        let mut tel = if instrument {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        let (availability, episodes, mean_recovery, report) =
            replay(&mut controller, &trace, horizon, &mut tel);
        (
            ResilienceOutcome {
                policy: name.to_string(),
                availability,
                episodes,
                mean_recovery,
                report,
            },
            tel.finish(),
        )
    })
    .map_err(CoreError::from)?;
    let mut outcomes = Vec::with_capacity(results.len());
    let mut artifacts = TelemetryArtifacts::default();
    for (outcome, worker_artifacts) in results {
        outcomes.push(outcome);
        artifacts.merge(worker_artifacts);
    }
    Ok((
        ResilienceComparison {
            point: *point,
            seed,
            outcomes,
        },
        artifacts,
    ))
}

/// Replays the full-ladder `emergency/retry` policy alone under the
/// caller's telemetry session — the `figures trace` path, which attaches
/// file sinks to the session before the run and reconstructs the outage
/// episodes from the journal afterwards.
///
/// # Errors
///
/// Propagates scenario/trace/cluster construction failures.
pub fn trace_run(
    point: &ResiliencePoint,
    seed: u64,
    tel: &mut Telemetry,
) -> Result<ResilienceOutcome, CoreError> {
    let (scenario, trace) = setup(point, seed)?;
    let (nodes, placement) = setup_cluster(&point.as_churn_point(), seed, &scenario)?;
    let mut controller =
        Controller::with_cluster(&scenario, nodes, &placement, ControllerConfig::resilient())?;
    let (availability, episodes, mean_recovery, report) =
        replay(&mut controller, &trace, point.horizon, tel);
    Ok(ResilienceOutcome {
        policy: "emergency/retry".to_string(),
        availability,
        episodes,
        mean_recovery,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_policies_share_the_trace() {
        let comparison = run(&ResiliencePoint::base(), 42).unwrap();
        assert_eq!(comparison.outcomes.len(), 4);
        let baseline = &comparison.outcomes[0];
        for outcome in &comparison.outcomes {
            assert_eq!(
                outcome.report.admitted + outcome.report.rejected,
                baseline.report.admitted + baseline.report.rejected,
                "same trace, same first offers"
            );
            assert!((0.0..=1.0).contains(&outcome.availability));
            assert!(outcome.report.node_downs >= 1, "node outages did occur");
        }
    }

    #[test]
    fn recovery_ladder_orders_the_policies() {
        let comparison = run(&ResiliencePoint::base(), 42).unwrap();
        let worst = comparison.outcome("tick-only/no-retry").unwrap();
        let best = comparison.outcome("emergency/retry").unwrap();
        assert!(
            best.availability >= worst.availability,
            "emergency re-placement never hurts availability"
        );
        assert!(
            best.report.lost() < worst.report.lost(),
            "the retry queue recovers requests the baseline loses for good \
             ({} vs {})",
            best.report.lost(),
            worst.report.lost(),
        );
        assert!(
            best.mean_recovery <= worst.mean_recovery,
            "out-of-tick re-placement shortens the outage episodes"
        );
    }

    #[test]
    fn instrumented_run_is_a_strict_observer() {
        let plain = run(&ResiliencePoint::base(), 42).unwrap();
        let (instrumented, artifacts) = run_instrumented(&ResiliencePoint::base(), 42).unwrap();
        assert_eq!(plain, instrumented, "telemetry must not change results");
        assert!(!artifacts.events.is_empty());
        assert!(artifacts
            .events
            .iter()
            .any(|e| matches!(e.kind, nfv_telemetry::EventKind::NodeDown { .. })));
    }

    #[test]
    fn trace_run_journals_the_full_outage_ladder() {
        let mut tel = Telemetry::enabled();
        let outcome = trace_run(&ResiliencePoint::base(), 42, &mut tel).unwrap();
        assert_eq!(outcome.policy, "emergency/retry");
        assert!(outcome.report.node_downs > 0);
        let events = tel.finish().events;
        let has =
            |pred: fn(&nfv_telemetry::EventKind) -> bool| events.iter().any(|e| pred(&e.kind));
        use nfv_telemetry::EventKind as K;
        assert!(has(|k| matches!(k, K::NodeDown { .. })));
        assert!(has(|k| matches!(k, K::Shed { .. })));
        assert!(has(|k| matches!(k, K::RetryScheduled { .. })));
        assert!(has(|k| matches!(k, K::EmergencyReplace { .. })));
        assert!(has(|k| matches!(k, K::NodeUp { .. })));
        // The matching plain run produces the identical report.
        let (comparison, _) = run_inner(&ResiliencePoint::base(), 42, false).unwrap();
        assert_eq!(
            comparison.outcome("emergency/retry").unwrap().report,
            outcome.report
        );
    }

    #[test]
    fn racked_outages_widen_the_blast_radius() {
        let base = run(&ResiliencePoint::base(), 42).unwrap();
        let racked = run(&ResiliencePoint::racked(), 42).unwrap();
        // Correlated failures take at least as many nodes down per event.
        let downs = |c: &ResilienceComparison| c.outcomes[0].report.node_downs;
        assert!(downs(&racked) >= downs(&base));
    }
}
