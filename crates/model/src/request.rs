//! Requests and their traffic parameters.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ArrivalRate, DeliveryProbability, RequestId, ServiceChain, VnfId};

/// A request `r ∈ R`: a packet stream that must traverse a [`ServiceChain`]
/// in order.
///
/// Packets arrive as a Poisson stream at rate `λ_r`; each packet is received
/// correctly by the destination with probability `P_r`, and lost packets are
/// retransmitted end-to-end (NACK feedback). In steady state the effective
/// arrival rate seen by every instance on the chain is `λ_r / P_r`
/// ([`Request::effective_rate`], Eq. (7) of the paper).
///
/// # Examples
///
/// ```
/// use nfv_model::{ArrivalRate, DeliveryProbability, Request, RequestId, ServiceChain, VnfId};
/// # fn main() -> Result<(), nfv_model::ModelError> {
/// let req = Request::new(
///     RequestId::new(0),
///     ServiceChain::new(vec![VnfId::new(0), VnfId::new(1)])?,
///     ArrivalRate::new(49.0)?,
///     DeliveryProbability::new(0.98)?,
/// );
/// assert!((req.effective_rate().value() - 50.0).abs() < 1e-9);
/// assert!(req.uses(VnfId::new(1)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    id: RequestId,
    chain: ServiceChain,
    arrival_rate: ArrivalRate,
    delivery: DeliveryProbability,
}

impl Request {
    /// Creates a request.
    #[must_use]
    pub fn new(
        id: RequestId,
        chain: ServiceChain,
        arrival_rate: ArrivalRate,
        delivery: DeliveryProbability,
    ) -> Self {
        Self {
            id,
            chain,
            arrival_rate,
            delivery,
        }
    }

    /// The request's identifier.
    #[must_use]
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// The service chain the request traverses.
    #[must_use]
    pub fn chain(&self) -> &ServiceChain {
        &self.chain
    }

    /// External Poisson arrival rate `λ_r`.
    #[must_use]
    pub fn arrival_rate(&self) -> ArrivalRate {
        self.arrival_rate
    }

    /// Probability `P_r` of correct end-to-end delivery.
    #[must_use]
    pub fn delivery(&self) -> DeliveryProbability {
        self.delivery
    }

    /// Steady-state effective arrival rate `λ_r / P_r` including
    /// retransmissions of lost packets (Eq. (7)).
    #[must_use]
    pub fn effective_rate(&self) -> ArrivalRate {
        self.arrival_rate.inflated_by_loss(self.delivery)
    }

    /// Whether the request uses VNF `f` — the paper's `U_r^f`.
    #[must_use]
    pub fn uses(&self, vnf: VnfId) -> bool {
        self.chain.uses(vnf)
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {}, {})",
            self.id, self.arrival_rate, self.delivery, self.chain
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(rate: f64, p: f64, chain: &[u32]) -> Request {
        Request::new(
            RequestId::new(0),
            ServiceChain::new(chain.iter().map(|&i| VnfId::new(i)).collect()).unwrap(),
            ArrivalRate::new(rate).unwrap(),
            DeliveryProbability::new(p).unwrap(),
        )
    }

    #[test]
    fn effective_rate_inflates_by_loss() {
        let req = request(10.0, 0.5, &[0]);
        assert!((req.effective_rate().value() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_delivery_means_no_inflation() {
        let req = request(10.0, 1.0, &[0]);
        assert_eq!(req.effective_rate(), req.arrival_rate());
    }

    #[test]
    fn uses_delegates_to_chain() {
        let req = request(1.0, 0.99, &[2, 4]);
        assert!(req.uses(VnfId::new(4)));
        assert!(!req.uses(VnfId::new(3)));
    }

    #[test]
    fn display_is_informative() {
        let req = request(5.0, 0.98, &[1]);
        let s = req.to_string();
        assert!(s.contains("req0") && s.contains("5 pps") && s.contains("vnf1"));
    }
}
