//! FFD: first-fit decreasing.

use nfv_model::NodeId;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::support::{vnfs_by_decreasing_demand, Remaining};
use crate::{Placement, PlacementError, PlacementOutcome, PlacementProblem, Placer};

/// The order FFD scans candidate nodes in; the *first* node (in this
/// order) with enough remaining capacity wins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ScanOrder {
    /// Largest remaining capacity first. This is the paper's FFD baseline:
    /// with no used/spare distinction the scan effectively behaves like
    /// worst-fit, spreading load across the big nodes — which is why FFD's
    /// average utilization clusters with NAH's (68.6% vs 66.9%) in the
    /// paper's Figs. 5–7 rather than approaching BFDSU's.
    #[default]
    DescendingCapacity,
    /// Smallest remaining capacity first (≈ best-fit; strong ablation
    /// variant).
    AscendingCapacity,
    /// Node-id order — the textbook FFD with a fixed bin order.
    ById,
}

/// First-Fit Decreasing: VNFs in decreasing demand order, each placed on
/// the first node (in the configured [`ScanOrder`]) with enough remaining
/// capacity.
///
/// Keeps no used/spare distinction — a VNF may open a fresh node even when
/// an already-used node would fit — which is exactly the behaviour that
/// costs it utilization relative to BFDSU. Deterministic: a single pass,
/// so [`PlacementOutcome::iterations`] is always 1 (matching the constant
/// iteration count in the paper's Fig. 10).
///
/// # Examples
///
/// ```
/// use nfv_placement::{Ffd, Placer, PlacementProblem};
/// # use nfv_model::{Capacity, ComputeNode, Demand, NodeId, ServiceRate, Vnf, VnfId, VnfKind};
/// use rand::SeedableRng;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let nodes = vec![ComputeNode::new(NodeId::new(0), Capacity::new(100.0)?)];
/// # let vnfs = vec![Vnf::builder(VnfId::new(0), VnfKind::Nat)
/// #     .demand_per_instance(Demand::new(30.0)?)
/// #     .service_rate(ServiceRate::new(100.0)?)
/// #     .build()?];
/// let problem = PlacementProblem::new(nodes, vnfs)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let outcome = Ffd::new().place(&problem, &mut rng)?;
/// assert_eq!(outcome.iterations(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ffd {
    order: ScanOrder,
}

impl Ffd {
    /// Creates the paper's FFD baseline (descending-capacity scan).
    #[must_use]
    pub fn new() -> Self {
        Self {
            order: ScanOrder::DescendingCapacity,
        }
    }

    /// Creates FFD with an explicit scan order (ablation variants).
    #[must_use]
    pub fn with_scan_order(order: ScanOrder) -> Self {
        Self { order }
    }

    /// The configured scan order.
    #[must_use]
    pub fn scan_order(&self) -> ScanOrder {
        self.order
    }
}

impl Placer for Ffd {
    fn name(&self) -> &'static str {
        match self.order {
            ScanOrder::DescendingCapacity => "ffd",
            ScanOrder::AscendingCapacity => "ffd-asc",
            ScanOrder::ById => "ffd-id",
        }
    }

    fn place(
        &self,
        problem: &PlacementProblem,
        _rng: &mut dyn RngCore,
    ) -> Result<PlacementOutcome, PlacementError> {
        problem.check_necessary_feasibility()?;
        let order = vnfs_by_decreasing_demand(problem);
        let mut remaining = Remaining::new(problem);
        let mut assignment = vec![NodeId::new(0); problem.vnfs().len()];
        for vnf in order {
            let demand = problem.demand_of(vnf).value();
            let mut candidates: Vec<NodeId> = problem.nodes().iter().map(|n| n.id()).collect();
            match self.order {
                ScanOrder::ById => {}
                ScanOrder::AscendingCapacity => candidates.sort_by(|&a, &b| {
                    remaining
                        .of(a)
                        .partial_cmp(&remaining.of(b))
                        .expect("capacities are finite")
                        .then(a.cmp(&b))
                }),
                ScanOrder::DescendingCapacity => candidates.sort_by(|&a, &b| {
                    remaining
                        .of(b)
                        .partial_cmp(&remaining.of(a))
                        .expect("capacities are finite")
                        .then(a.cmp(&b))
                }),
            }
            let node = candidates
                .into_iter()
                .find(|&n| remaining.fits(n, demand))
                .ok_or(PlacementError::AttemptsExhausted { attempts: 1 })?;
            assignment[vnf.as_usize()] = node;
            remaining.consume(node, demand);
        }
        let placement = Placement::new(problem, assignment)?;
        Ok(PlacementOutcome::new(placement, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_model::{Capacity, ComputeNode, Demand, ServiceRate, Vnf, VnfId, VnfKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem(caps: &[f64], demands: &[f64]) -> PlacementProblem {
        let nodes = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| ComputeNode::new(NodeId::new(i as u32), Capacity::new(c).unwrap()))
            .collect();
        let vnfs = demands
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                Vnf::builder(VnfId::new(i as u32), VnfKind::Custom(i as u16))
                    .demand_per_instance(Demand::new(d).unwrap())
                    .instances(1)
                    .service_rate(ServiceRate::new(1.0).unwrap())
                    .build()
                    .unwrap()
            })
            .collect();
        PlacementProblem::new(nodes, vnfs).unwrap()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn default_scan_spreads_over_large_nodes() {
        // Two VNFs of 30 on nodes 100 and 90: descending scan puts the
        // first on node0 (100 -> 70) and the second again on node0 (70 <
        // 90? no - after consuming, node1 has 90 > 70, so the second VNF
        // goes to node1): load spreads, unlike best-fit.
        let p = problem(&[100.0, 90.0], &[30.0, 30.0]);
        let outcome = Ffd::new().place(&p, &mut rng()).unwrap();
        let pl = outcome.placement();
        assert_eq!(pl.node_of(VnfId::new(0)), NodeId::new(0));
        assert_eq!(pl.node_of(VnfId::new(1)), NodeId::new(1));
        assert_eq!(pl.nodes_in_service(), 2);
    }

    #[test]
    fn ascending_scan_packs_tightly() {
        let p = problem(&[100.0, 90.0], &[30.0, 30.0]);
        let outcome = Ffd::with_scan_order(ScanOrder::AscendingCapacity)
            .place(&p, &mut rng())
            .unwrap();
        assert_eq!(outcome.placement().nodes_in_service(), 1);
        assert_eq!(
            outcome.placement().node_of(VnfId::new(0)),
            NodeId::new(1),
            "ascending scan starts at the smaller node"
        );
    }

    #[test]
    fn id_scan_is_classic_ffd() {
        // Demands sorted: 50, 40, 30. Node0 (cap 100) takes 50+40; 30 goes
        // to node1.
        let p = problem(&[100.0, 100.0], &[30.0, 50.0, 40.0]);
        let outcome = Ffd::with_scan_order(ScanOrder::ById)
            .place(&p, &mut rng())
            .unwrap();
        let pl = outcome.placement();
        assert_eq!(pl.node_of(VnfId::new(1)), NodeId::new(0));
        assert_eq!(pl.node_of(VnfId::new(2)), NodeId::new(0));
        assert_eq!(pl.node_of(VnfId::new(0)), NodeId::new(1));
        assert_eq!(outcome.iterations(), 1);
    }

    #[test]
    fn fails_after_single_pass_on_unpackable_input() {
        // 60, 40, 40 into 75 + 75 is impossible.
        let p = problem(&[75.0, 75.0], &[60.0, 40.0, 40.0]);
        for order in [
            ScanOrder::DescendingCapacity,
            ScanOrder::AscendingCapacity,
            ScanOrder::ById,
        ] {
            let err = Ffd::with_scan_order(order)
                .place(&p, &mut rng())
                .unwrap_err();
            assert!(matches!(err, PlacementError::AttemptsExhausted { .. }));
        }
    }

    #[test]
    fn is_deterministic_and_rng_independent() {
        let p = problem(&[100.0, 80.0, 60.0], &[50.0, 30.0, 30.0, 20.0]);
        let a = Ffd::new().place(&p, &mut StdRng::seed_from_u64(0)).unwrap();
        let b = Ffd::new()
            .place(&p, &mut StdRng::seed_from_u64(99))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(Ffd::new().name(), "ffd");
        assert_eq!(
            Ffd::with_scan_order(ScanOrder::AscendingCapacity).name(),
            "ffd-asc"
        );
        assert_eq!(Ffd::with_scan_order(ScanOrder::ById).name(), "ffd-id");
        assert_eq!(Ffd::new().scan_order(), ScanOrder::DescendingCapacity);
    }
}
