//! Error type for placement.

use std::error::Error;
use std::fmt;

use nfv_model::{NodeId, VnfId};

/// Error returned when a placement cannot be constructed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlacementError {
    /// The problem admits no feasible placement: total demand exceeds total
    /// capacity, or some VNF exceeds every node's capacity.
    Infeasible {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The algorithm exhausted its restart budget without finding a
    /// feasible placement. The instance may still be feasible; raise
    /// the attempt limit or use a deterministic algorithm.
    AttemptsExhausted {
        /// How many full executions were tried.
        attempts: u64,
    },
    /// A placement assignment referenced a VNF unknown to the problem.
    UnknownVnf {
        /// The offending VNF.
        vnf: VnfId,
    },
    /// A placement assignment referenced a node unknown to the problem.
    UnknownNode {
        /// The offending node.
        node: NodeId,
    },
    /// A hand-built placement overflows a node's capacity.
    CapacityExceeded {
        /// The overloaded node.
        node: NodeId,
        /// Total demand placed on the node.
        demand: f64,
        /// The node's capacity.
        capacity: f64,
    },
    /// A hand-built placement misses an assignment for some VNF (Eq. (2)
    /// requires every VNF to be placed exactly once).
    MissingVnf {
        /// The unplaced VNF.
        vnf: VnfId,
    },
    /// The problem definition itself is inconsistent (duplicate ids,
    /// out-of-order ids, …).
    InvalidProblem {
        /// Description of the inconsistency.
        reason: &'static str,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible { reason } => write!(f, "infeasible placement problem: {reason}"),
            Self::AttemptsExhausted { attempts } => {
                write!(f, "no feasible placement found in {attempts} attempts")
            }
            Self::UnknownVnf { vnf } => write!(f, "unknown {vnf}"),
            Self::UnknownNode { node } => write!(f, "unknown {node}"),
            Self::CapacityExceeded {
                node,
                demand,
                capacity,
            } => {
                write!(
                    f,
                    "{node} overloaded: demand {demand} exceeds capacity {capacity}"
                )
            }
            Self::MissingVnf { vnf } => write!(f, "{vnf} was not placed"),
            Self::InvalidProblem { reason } => write!(f, "invalid problem: {reason}"),
        }
    }
}

impl Error for PlacementError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let err = PlacementError::CapacityExceeded {
            node: NodeId::new(1),
            demand: 120.0,
            capacity: 100.0,
        };
        let s = err.to_string();
        assert!(s.contains("node1") && s.contains("120") && s.contains("100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlacementError>();
    }
}
