//! Heuristics against the exact branch-and-bound oracle on crafted
//! instance families.

use nfv_model::{Capacity, ComputeNode, Demand, NodeId, ServiceRate, Vnf, VnfId, VnfKind};
use nfv_placement::{exact, Bfd, Bfdsu, Ffd, Nah, PlacementProblem, Placer, ScanOrder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn problem(caps: &[f64], demands: &[f64]) -> PlacementProblem {
    let nodes = caps
        .iter()
        .enumerate()
        .map(|(i, &c)| ComputeNode::new(NodeId::new(i as u32), Capacity::new(c).unwrap()))
        .collect();
    let vnfs = demands
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            Vnf::builder(VnfId::new(i as u32), VnfKind::Custom(i as u16))
                .demand_per_instance(Demand::new(d).unwrap())
                .service_rate(ServiceRate::new(100.0).unwrap())
                .build()
                .unwrap()
        })
        .collect();
    PlacementProblem::new(nodes, vnfs).unwrap()
}

#[test]
fn perfect_packing_family_every_heuristic_stays_within_two_x() {
    // k pairs that sum exactly to one bin: OPT = k.
    for k in 2..6usize {
        let caps = vec![100.0; 2 * k];
        let mut demands = Vec::new();
        for i in 0..k {
            let a = 30.0 + i as f64 * 5.0;
            demands.push(a);
            demands.push(100.0 - a);
        }
        let p = problem(&caps, &demands);
        let opt = exact::optimal_node_count(&p).unwrap();
        assert_eq!(opt, k);
        let placers: Vec<Box<dyn Placer>> = vec![
            Box::new(Bfdsu::new()),
            Box::new(Bfd::new()),
            Box::new(Ffd::with_scan_order(ScanOrder::AscendingCapacity)),
        ];
        for placer in &placers {
            let mut rng = StdRng::seed_from_u64(k as u64);
            let used = placer
                .place(&p, &mut rng)
                .unwrap_or_else(|e| panic!("{} failed on k={k}: {e}", placer.name()))
                .placement()
                .nodes_in_service();
            assert!(
                used <= 2 * opt,
                "{} used {used} on OPT={opt} (k={k})",
                placer.name()
            );
        }
    }
}

#[test]
fn theorem2_worst_case_family_is_attained_asymptotically() {
    // The paper's Theorem 2 tightness family: pieces of size 1/2 + eps
    // with bins of size 1. No two pieces share a bin, so the optimal
    // packing itself is one piece per bin; the oracle confirms OPT = n and
    // BFDSU matches it exactly.
    let n = 6;
    let eps = 1.0;
    let caps = vec![100.0; n];
    let demands = vec![50.0 + eps; n];
    let p = problem(&caps, &demands);
    assert_eq!(exact::optimal_node_count(&p), Some(n));
    let mut rng = StdRng::seed_from_u64(0);
    let outcome = Bfdsu::new().place(&p, &mut rng).unwrap();
    assert_eq!(outcome.placement().nodes_in_service(), n);
}

#[test]
fn random_small_instances_heuristic_vs_oracle_statistics() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut total_ratio = 0.0;
    let mut solved = 0u32;
    let mut unsolved = 0u32;
    for _ in 0..60 {
        let nodes = rng.gen_range(3..=6);
        let vnfs = rng.gen_range(3..=8);
        let caps: Vec<f64> = (0..nodes).map(|_| rng.gen_range(80.0..200.0)).collect();
        let demands: Vec<f64> = (0..vnfs).map(|_| rng.gen_range(20.0..90.0)).collect();
        let p = problem(&caps, &demands);
        let Some(opt) = exact::optimal_node_count(&p) else {
            continue;
        };
        let mut algo_rng = StdRng::seed_from_u64(7);
        // BFDSU's used-node priority makes a small fraction of extremely
        // tight feasible instances unreachable (see the `Bfdsu` docs);
        // count those separately instead of failing.
        match Bfdsu::new().place(&p, &mut algo_rng) {
            Ok(outcome) => {
                total_ratio += outcome.placement().nodes_in_service() as f64 / opt.max(1) as f64;
                solved += 1;
            }
            Err(_) => unsolved += 1,
        }
    }
    assert!(solved >= 30, "too few feasible draws: {solved}");
    assert!(
        unsolved * 10 <= solved,
        "too many oracle-feasible instances unsolved: {unsolved} vs {solved}"
    );
    let mean_ratio = total_ratio / f64::from(solved);
    // BFDSU averages well under the factor-2 bound on random instances.
    assert!(mean_ratio < 1.5, "mean ratio {mean_ratio}");
}

#[test]
fn nah_oracle_gap_grows_with_chain_fragmentation() {
    // One chain per VNF forces NAH to open the largest node per chain;
    // with all nodes large, NAH uses one node per VNF while OPT packs.
    let caps = [300.0; 6];
    let demands = [60.0; 6];
    let chains: Vec<nfv_model::ServiceChain> = (0..6)
        .map(|i| nfv_model::ServiceChain::single(VnfId::new(i)))
        .collect();
    let nodes = caps
        .iter()
        .enumerate()
        .map(|(i, &c)| ComputeNode::new(NodeId::new(i as u32), Capacity::new(c).unwrap()))
        .collect();
    let vnfs = demands
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            Vnf::builder(VnfId::new(i as u32), VnfKind::Custom(i as u16))
                .demand_per_instance(Demand::new(d).unwrap())
                .service_rate(ServiceRate::new(100.0).unwrap())
                .build()
                .unwrap()
        })
        .collect();
    let p = PlacementProblem::with_chains(nodes, vnfs, chains).unwrap();
    // Total demand 360 over 300-unit nodes: two nodes suffice (5 VNFs on
    // one, the sixth elsewhere).
    assert_eq!(exact::optimal_node_count(&p), Some(2));
    let mut rng = StdRng::seed_from_u64(1);
    let nah_used = Nah::new()
        .place(&p, &mut rng)
        .unwrap()
        .placement()
        .nodes_in_service();
    let bfdsu_used = Bfdsu::new()
        .place(&p, &mut rng)
        .unwrap()
        .placement()
        .nodes_in_service();
    assert!(nah_used >= bfdsu_used);
    assert_eq!(bfdsu_used, 2, "BFDSU should match the oracle here");
}

#[test]
fn oracle_agrees_with_lower_bound_on_feasibility() {
    // If the greedy capacity lower bound exceeds the node count the oracle
    // must agree the instance is infeasible.
    let p = problem(&[50.0, 50.0], &[45.0, 45.0, 45.0]);
    assert!(p.lower_bound_nodes() > 2 || exact::optimal_node_count(&p).is_none());
    assert_eq!(exact::optimal_node_count(&p), None);
}
