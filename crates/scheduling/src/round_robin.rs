//! Round-robin: the naive scheduling baseline.

use nfv_model::ArrivalRate;

use crate::scheduler::check_inputs;
use crate::{Schedule, Scheduler, SchedulingError};

/// Round-robin scheduling: request `r` goes to instance `r mod m`,
/// regardless of rates.
///
/// Rate-oblivious and therefore the weakest balancer here; included as the
/// sanity floor for the scheduling benchmarks (any rate-aware algorithm
/// should beat it on heterogeneous traffic) and as the behaviour of a
/// stateless hardware load balancer.
///
/// # Examples
///
/// ```
/// use nfv_model::ArrivalRate;
/// use nfv_scheduling::{RoundRobin, Scheduler};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rates: Vec<ArrivalRate> =
///     [1.0, 2.0, 3.0].iter().map(|&v| ArrivalRate::new(v)).collect::<Result<_, _>>()?;
/// let schedule = RoundRobin::new().schedule(&rates, 2)?;
/// assert_eq!(schedule.assignment(), &[0, 1, 0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobin;

impl RoundRobin {
    /// Creates the round-robin scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn schedule(
        &self,
        rates: &[ArrivalRate],
        instances: usize,
    ) -> Result<Schedule, SchedulingError> {
        check_inputs(rates, instances)?;
        let assignment: Vec<usize> = (0..rates.len()).map(|r| r % instances).collect();
        Schedule::new(rates.to_vec(), assignment, instances)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rckk;

    fn rates(values: &[f64]) -> Vec<ArrivalRate> {
        values
            .iter()
            .map(|&v| ArrivalRate::new(v).unwrap())
            .collect()
    }

    #[test]
    fn cycles_through_instances() {
        let schedule = RoundRobin::new().schedule(&rates(&[1.0; 7]), 3).unwrap();
        assert_eq!(schedule.assignment(), &[0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn rate_oblivious_and_beaten_by_rckk_on_skewed_input() {
        // Heavy rates all land on instance 0 under round-robin order.
        let input = rates(&[100.0, 1.0, 100.0, 1.0, 100.0, 1.0]);
        let rr = RoundRobin::new().schedule(&input, 2).unwrap();
        let kk = Rckk::new().schedule(&input, 2).unwrap();
        assert!(kk.imbalance() < rr.imbalance());
    }

    #[test]
    fn rejects_empty_inputs() {
        assert!(RoundRobin::new().schedule(&[], 1).is_err());
        assert!(RoundRobin::new().schedule(&rates(&[1.0]), 0).is_err());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(RoundRobin::new().name(), "round-robin");
    }
}
