//! Random service-chain generation.

use nfv_model::{ServiceChain, VnfId};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::WorkloadError;

/// Generates random service chains over a VNF universe.
///
/// Each chain has a uniformly random length in `[min_len, max_len]` (the
/// paper caps chains at 6 VNFs) and visits distinct VNFs in a uniformly
/// random order — matching the paper's setting where "different requests
/// often require different VNF chains".
///
/// # Examples
///
/// ```
/// use nfv_workload::ChainGenerator;
/// use rand::SeedableRng;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let gen = ChainGenerator::new(10, 1, 6)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let chain = gen.generate(&mut rng)?;
/// assert!(chain.len() >= 1 && chain.len() <= 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainGenerator {
    universe: usize,
    min_len: usize,
    max_len: usize,
}

impl ChainGenerator {
    /// Creates a generator over VNF ids `0..universe` producing chains of
    /// length `min_len..=max_len`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if the universe is empty,
    /// `min_len` is zero, the bounds are inverted, or `max_len` exceeds the
    /// universe (chains cannot repeat VNFs).
    pub fn new(universe: usize, min_len: usize, max_len: usize) -> Result<Self, WorkloadError> {
        if universe == 0 {
            return Err(WorkloadError::InvalidParameter {
                reason: "empty VNF universe",
            });
        }
        if min_len == 0 || min_len > max_len {
            return Err(WorkloadError::InvalidParameter {
                reason: "chain length bounds require 1 <= min <= max",
            });
        }
        if max_len > universe {
            return Err(WorkloadError::InvalidParameter {
                reason: "max chain length exceeds VNF universe",
            });
        }
        Ok(Self {
            universe,
            min_len,
            max_len,
        })
    }

    /// The VNF universe size.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Generates one random chain.
    ///
    /// # Errors
    ///
    /// Never fails for a validated generator; the `Result` mirrors
    /// [`ServiceChain::new`] so callers need no `unwrap`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<ServiceChain, WorkloadError> {
        let len = rng.gen_range(self.min_len..=self.max_len);
        // Partial Fisher-Yates: shuffle a prefix of the universe.
        let mut ids: Vec<VnfId> = (0..self.universe as u32).map(VnfId::new).collect();
        ids.partial_shuffle(rng, len);
        ids.truncate(len);
        Ok(ServiceChain::new(ids)?)
    }

    /// Generates `count` chains.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`generate`](Self::generate).
    pub fn generate_many<R: Rng + ?Sized>(
        &self,
        count: usize,
        rng: &mut R,
    ) -> Result<Vec<ServiceChain>, WorkloadError> {
        (0..count).map(|_| self.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validates_parameters() {
        assert!(ChainGenerator::new(0, 1, 1).is_err());
        assert!(ChainGenerator::new(5, 0, 3).is_err());
        assert!(ChainGenerator::new(5, 4, 3).is_err());
        assert!(ChainGenerator::new(5, 1, 6).is_err());
        assert!(ChainGenerator::new(6, 1, 6).is_ok());
    }

    #[test]
    fn chains_respect_length_bounds_and_distinctness() {
        let gen = ChainGenerator::new(8, 2, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let chain = gen.generate(&mut rng).unwrap();
            assert!((2..=5).contains(&chain.len()));
            let mut ids: Vec<_> = chain.iter().collect();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), chain.len(), "chain repeats a VNF");
            assert!(ids.iter().all(|id| id.as_usize() < 8));
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let gen = ChainGenerator::new(10, 1, 6).unwrap();
        let a = gen
            .generate_many(50, &mut StdRng::seed_from_u64(9))
            .unwrap();
        let b = gen
            .generate_many(50, &mut StdRng::seed_from_u64(9))
            .unwrap();
        assert_eq!(a, b);
        let c = gen
            .generate_many(50, &mut StdRng::seed_from_u64(10))
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn all_lengths_are_eventually_produced() {
        let gen = ChainGenerator::new(6, 1, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[gen.generate(&mut rng).unwrap().len()] = true;
        }
        assert!(seen[1..=6].iter().all(|&s| s), "lengths missing: {seen:?}");
    }
}
