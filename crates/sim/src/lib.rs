//! Discrete-event simulation of NFV service chains.
//!
//! The paper's evaluation is simulation-driven; this crate is the
//! simulator. It executes the same stochastic system the Jackson-network
//! analytics of `nfv-queueing` model in closed form:
//!
//! * each request emits packets as a Poisson process at rate `λ_r`;
//! * packets traverse the request's chain of service instances in order;
//!   every instance is a single-server FCFS station with exponentially
//!   distributed service times at rate `μ`;
//! * after the last hop the destination delivers the packet with
//!   probability `P_r`; otherwise the packet is retransmitted from the
//!   source (NACK feedback) and re-enters the first station immediately.
//!
//! Because the simulated system satisfies the assumptions of Jackson's
//! theorem exactly, simulated mean latencies converge to the analytic
//! `E[T] = (1/P)·Σ 1/(μ_i − Λ_i)` — the integration tests assert this, and
//! the `validation` benches quantify it. What simulation adds over the
//! closed form is the *distribution*: tail percentiles (the paper's p99
//! statistics) and transient behaviour.
//!
//! # Examples
//!
//! ```
//! use nfv_sim::{SimConfig, Simulator};
//! use rand::SeedableRng;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SimConfig::builder()
//!     .station(100.0)? // one M/M/1 station at μ = 100 pps
//!     .request(50.0, 1.0, vec![0])? // λ = 50, no loss, visits station 0
//!     .target_deliveries(20_000)
//!     .warmup_deliveries(2_000)
//!     .build()?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let report = Simulator::new(config).run(&mut rng);
//! // M/M/1 at rho = 0.5: E[T] = 1/(100-50) = 20 ms.
//! assert!((report.mean_latency() - 0.02).abs() < 0.002);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod events;
mod report;
mod sampler;
mod simulator;
mod station;

pub use config::{RequestSpec, SimConfig, SimConfigBuilder, StationSpec};
pub use error::SimError;
pub use report::SimReport;
pub use sampler::Exponential;
pub use simulator::Simulator;
