//! The schedule result and its Jackson-network evaluation.

use std::fmt;

use nfv_model::{ArrivalRate, DeliveryProbability, ServiceRate};
use nfv_queueing::admission::{AdmissionController, AdmissionReport};
use nfv_queueing::InstanceLoad;
use serde::{Deserialize, Serialize};

use crate::SchedulingError;

/// An assignment of `n` requests to `m` service instances of one VNF — the
/// paper's `z_{r,k}^f` in dense form (`assignment[r] = k`) — together with
/// the request rates, so the schedule can evaluate its own queueing
/// behaviour.
///
/// # Examples
///
/// ```
/// use nfv_model::{ArrivalRate, DeliveryProbability, ServiceRate};
/// use nfv_scheduling::Schedule;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rates = vec![ArrivalRate::new(10.0)?, ArrivalRate::new(20.0)?];
/// let schedule = Schedule::new(rates, vec![0, 1], 2)?;
/// assert_eq!(schedule.instance_rate_sums(), vec![10.0, 20.0]);
/// assert!((schedule.makespan() - 20.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    rates: Vec<ArrivalRate>,
    assignment: Vec<usize>,
    instances: usize,
}

impl Schedule {
    /// Wraps an assignment after validating it.
    ///
    /// # Errors
    ///
    /// * [`SchedulingError::NoRequests`] / [`SchedulingError::NoInstances`]
    ///   for empty inputs,
    /// * [`SchedulingError::InstanceOutOfRange`] if any entry is `≥
    ///   instances`.
    pub fn new(
        rates: Vec<ArrivalRate>,
        assignment: Vec<usize>,
        instances: usize,
    ) -> Result<Self, SchedulingError> {
        if rates.is_empty() || assignment.len() != rates.len() {
            return Err(SchedulingError::NoRequests);
        }
        if instances == 0 {
            return Err(SchedulingError::NoInstances);
        }
        if let Some(&bad) = assignment.iter().find(|&&k| k >= instances) {
            return Err(SchedulingError::InstanceOutOfRange {
                instance: bad,
                instances,
            });
        }
        Ok(Self {
            rates,
            assignment,
            instances,
        })
    }

    /// Number of requests `n`.
    #[must_use]
    pub fn requests(&self) -> usize {
        self.rates.len()
    }

    /// Number of service instances `m`.
    #[must_use]
    pub fn instances(&self) -> usize {
        self.instances
    }

    /// The instance assigned to request `r`.
    ///
    /// # Panics
    ///
    /// Panics if `request` is out of range.
    #[must_use]
    pub fn instance_of(&self, request: usize) -> usize {
        self.assignment[request]
    }

    /// The dense assignment table (`assignment[r] = k`).
    #[must_use]
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// The request arrival rates this schedule was built for.
    #[must_use]
    pub fn rates(&self) -> &[ArrivalRate] {
        &self.rates
    }

    /// Per-instance sums of *external* rates `Σ_r λ_r z_{r,k}` — the
    /// quantity the partitioning algorithms balance.
    #[must_use]
    pub fn instance_rate_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.instances];
        for (r, &k) in self.assignment.iter().enumerate() {
            sums[k] += self.rates[r].value();
        }
        sums
    }

    /// The largest per-instance rate sum (partitioning makespan).
    #[must_use]
    pub fn makespan(&self) -> f64 {
        self.instance_rate_sums().into_iter().fold(0.0, f64::max)
    }

    /// The difference between the largest and smallest per-instance sums;
    /// 0 for a perfectly balanced schedule.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let sums = self.instance_rate_sums();
        let max = sums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = sums.iter().copied().fold(f64::INFINITY, f64::min);
        max - min
    }

    /// The per-instance queueing loads under delivery probability `p`
    /// (every request shares `p`, the paper's Fig. 11–16 setting).
    #[must_use]
    pub fn instance_loads(&self, mu: ServiceRate, p: DeliveryProbability) -> Vec<InstanceLoad> {
        let mut loads: Vec<InstanceLoad> =
            (0..self.instances).map(|_| InstanceLoad::new(mu)).collect();
        for (r, &k) in self.assignment.iter().enumerate() {
            loads[k].add_request(self.rates[r], p);
        }
        loads
    }

    /// Average response time over the `M_f` instances — the paper's
    /// objective Eq. (15) with `W(f,k)` from Eq. (12).
    ///
    /// # Errors
    ///
    /// Returns [`SchedulingError::Queueing`] if any instance is unstable
    /// (`ρ ≥ 1`); use [`Schedule::rejection_report`] to evaluate such
    /// schedules under admission control instead.
    pub fn average_response_time(
        &self,
        mu: ServiceRate,
        p: DeliveryProbability,
    ) -> Result<f64, SchedulingError> {
        let loads = self.instance_loads(mu, p);
        let total: f64 = loads
            .iter()
            .map(InstanceLoad::mean_delivery_response_time)
            .sum::<Result<f64, _>>()?;
        Ok(total / self.instances as f64)
    }

    /// The worst per-instance response time under this schedule.
    ///
    /// # Errors
    ///
    /// Returns [`SchedulingError::Queueing`] if any instance is unstable.
    pub fn max_response_time(
        &self,
        mu: ServiceRate,
        p: DeliveryProbability,
    ) -> Result<f64, SchedulingError> {
        let loads = self.instance_loads(mu, p);
        let mut worst = 0.0f64;
        for load in &loads {
            worst = worst.max(load.mean_delivery_response_time()?);
        }
        Ok(worst)
    }

    /// Replays the schedule through admission control: requests are offered
    /// to their assigned instances in request order, and those that would
    /// destabilize their instance are dropped. Returns the admission report
    /// (whose [`AdmissionReport::rejection_rate`] is the paper's job
    /// rejection rate, Figs. 15–16) and the loads of the surviving traffic.
    #[must_use]
    pub fn rejection_report(
        &self,
        mu: ServiceRate,
        p: DeliveryProbability,
    ) -> (AdmissionReport, Vec<InstanceLoad>) {
        let mut ctrl = AdmissionController::new(mu, self.instances);
        for (r, &k) in self.assignment.iter().enumerate() {
            ctrl.offer(k, self.rates[r], p);
        }
        let (loads, report) = ctrl.into_parts();
        (report, loads)
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule: {} requests on {} instances, makespan {:.3} pps, imbalance {:.3} pps",
            self.requests(),
            self.instances,
            self.makespan(),
            self.imbalance()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates(values: &[f64]) -> Vec<ArrivalRate> {
        values
            .iter()
            .map(|&v| ArrivalRate::new(v).unwrap())
            .collect()
    }

    fn mu(v: f64) -> ServiceRate {
        ServiceRate::new(v).unwrap()
    }

    #[test]
    fn validates_inputs() {
        assert!(Schedule::new(vec![], vec![], 1).is_err());
        assert!(Schedule::new(rates(&[1.0]), vec![0], 0).is_err());
        assert!(Schedule::new(rates(&[1.0]), vec![], 1).is_err());
        assert!(matches!(
            Schedule::new(rates(&[1.0]), vec![3], 2).unwrap_err(),
            SchedulingError::InstanceOutOfRange {
                instance: 3,
                instances: 2
            }
        ));
    }

    #[test]
    fn sums_makespan_imbalance() {
        let s = Schedule::new(rates(&[5.0, 3.0, 2.0]), vec![0, 1, 1], 2).unwrap();
        assert_eq!(s.instance_rate_sums(), vec![5.0, 5.0]);
        assert_eq!(s.makespan(), 5.0);
        assert_eq!(s.imbalance(), 0.0);

        let t = Schedule::new(rates(&[5.0, 3.0, 2.0]), vec![0, 0, 1], 2).unwrap();
        assert_eq!(t.makespan(), 8.0);
        assert_eq!(t.imbalance(), 6.0);
    }

    #[test]
    fn empty_instances_count_in_metrics() {
        let s = Schedule::new(rates(&[5.0]), vec![0], 3).unwrap();
        assert_eq!(s.instance_rate_sums(), vec![5.0, 0.0, 0.0]);
        assert_eq!(s.imbalance(), 5.0);
    }

    #[test]
    fn eq15_average_matches_hand_computation() {
        // Two instances, P = 1: W_k = 1/(μ − Σλ_k).
        let s = Schedule::new(rates(&[10.0, 20.0]), vec![0, 1], 2).unwrap();
        let w = s
            .average_response_time(mu(50.0), DeliveryProbability::PERFECT)
            .unwrap();
        let expected = (1.0 / 40.0 + 1.0 / 30.0) / 2.0;
        assert!((w - expected).abs() < 1e-12);
    }

    #[test]
    fn loss_raises_response_time() {
        let s = Schedule::new(rates(&[10.0, 20.0]), vec![0, 1], 2).unwrap();
        let w1 = s
            .average_response_time(mu(50.0), DeliveryProbability::PERFECT)
            .unwrap();
        let w2 = s
            .average_response_time(mu(50.0), DeliveryProbability::new(0.98).unwrap())
            .unwrap();
        assert!(w2 > w1);
    }

    #[test]
    fn unstable_schedule_errors_but_rejection_report_copes() {
        let s = Schedule::new(rates(&[60.0, 60.0]), vec![0, 0], 1).unwrap();
        assert!(matches!(
            s.average_response_time(mu(100.0), DeliveryProbability::PERFECT),
            Err(SchedulingError::Queueing(_))
        ));
        let (report, loads) = s.rejection_report(mu(100.0), DeliveryProbability::PERFECT);
        assert_eq!(report.rejected(), 1);
        assert!(loads[0].is_stable());
    }

    #[test]
    fn max_response_time_bounds_average() {
        let s = Schedule::new(rates(&[10.0, 30.0]), vec![0, 1], 2).unwrap();
        let avg = s
            .average_response_time(mu(50.0), DeliveryProbability::PERFECT)
            .unwrap();
        let max = s
            .max_response_time(mu(50.0), DeliveryProbability::PERFECT)
            .unwrap();
        assert!(max >= avg);
    }

    #[test]
    fn display_mentions_shape() {
        let s = Schedule::new(rates(&[1.0]), vec![0], 1).unwrap();
        assert!(s.to_string().contains("1 requests on 1 instances"));
    }
}
