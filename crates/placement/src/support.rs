//! Internal helpers shared by the placement algorithms.

use nfv_model::{NodeId, VnfId};

use crate::PlacementProblem;

/// Mutable remaining-capacity tracker, the paper's `RST(v)`.
#[derive(Debug, Clone)]
pub(crate) struct Remaining {
    rst: Vec<f64>,
}

impl Remaining {
    pub(crate) fn new(problem: &PlacementProblem) -> Self {
        Self {
            rst: problem
                .nodes()
                .iter()
                .map(|n| n.capacity().value())
                .collect(),
        }
    }

    /// Remaining capacity of `node`.
    pub(crate) fn of(&self, node: NodeId) -> f64 {
        self.rst[node.as_usize()]
    }

    /// Whether `node` can still host `demand` (with a relative epsilon so
    /// exact fits survive floating-point accumulation).
    pub(crate) fn fits(&self, node: NodeId, demand: f64) -> bool {
        demand <= self.rst[node.as_usize()] * (1.0 + 1e-12) + 1e-12
    }

    /// Consumes `demand` on `node`.
    pub(crate) fn consume(&mut self, node: NodeId, demand: f64) {
        let slot = &mut self.rst[node.as_usize()];
        *slot = (*slot - demand).max(0.0);
    }
}

/// VNF ids sorted by decreasing total demand `D_f^sum` (ties broken by id
/// for determinism) — the "decreasing" order every algorithm here shares.
pub(crate) fn vnfs_by_decreasing_demand(problem: &PlacementProblem) -> Vec<VnfId> {
    let mut order: Vec<VnfId> = problem.vnfs().iter().map(|v| v.id()).collect();
    order.sort_by(|&a, &b| {
        let da = problem.demand_of(a).value();
        let db = problem.demand_of(b).value();
        db.partial_cmp(&da)
            .expect("demands are finite")
            .then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_model::{Capacity, ComputeNode, Demand, ServiceRate, Vnf, VnfKind};

    fn problem(caps: &[f64], demands: &[f64]) -> PlacementProblem {
        let nodes = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| ComputeNode::new(NodeId::new(i as u32), Capacity::new(c).unwrap()))
            .collect();
        let vnfs = demands
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                Vnf::builder(VnfId::new(i as u32), VnfKind::Custom(i as u16))
                    .demand_per_instance(Demand::new(d).unwrap())
                    .service_rate(ServiceRate::new(1.0).unwrap())
                    .build()
                    .unwrap()
            })
            .collect();
        PlacementProblem::new(nodes, vnfs).unwrap()
    }

    #[test]
    fn remaining_tracks_consumption() {
        let p = problem(&[100.0], &[10.0]);
        let mut rem = Remaining::new(&p);
        let n = NodeId::new(0);
        assert_eq!(rem.of(n), 100.0);
        assert!(rem.fits(n, 100.0));
        rem.consume(n, 60.0);
        assert_eq!(rem.of(n), 40.0);
        assert!(!rem.fits(n, 40.1));
        assert!(rem.fits(n, 40.0));
    }

    #[test]
    fn decreasing_order_with_stable_ties() {
        let p = problem(&[100.0], &[10.0, 30.0, 10.0, 20.0]);
        let order = vnfs_by_decreasing_demand(&p);
        let ids: Vec<u32> = order.iter().map(|v| v.index()).collect();
        assert_eq!(ids, vec![1, 3, 0, 2]);
    }
}
