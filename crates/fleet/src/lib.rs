//! A deterministic multi-tenant fleet loop: N independent tenant
//! controllers, sharded over the shared `nfv-parallel` pool, driven by
//! one virtual clock.
//!
//! The paper optimizes a single cluster; a fleet serving many users runs
//! *hundreds* of such optimizations concurrently in one process. This
//! crate multiplexes them without surrendering the repo's core contract:
//! same seed, same results, **bit for bit, at any thread count**.
//!
//! The moving parts:
//!
//! - **Tenants** — each an isolated world: its own scenario, its own
//!   lazy churn stream (seeded via
//!   [`tenant_seed`](nfv_workload::tenancy::tenant_seed)), its own
//!   [`Controller`](nfv_controller::Controller).
//! - **Channels** ([`EventChannel`]) — bounded SPSC-style buffers between
//!   the trace streams and the shards. The serial *pump* phase fills
//!   them (shard order, tenant order, stalling on a full channel); the
//!   parallel *drain* phase empties them. Backpressure is part of the
//!   deterministic schedule, not an accident of timing.
//! - **Shards** ([`Shard`]) — disjoint tenant sets drained concurrently
//!   via `par_map_indexed`, results folded in shard-id order, so thread
//!   count never changes an outcome.
//! - **Epochs** — the virtual clock advances in fixed steps; every event
//!   with `time ≤ boundary` is pumped and drained (possibly over several
//!   backpressure rounds) before the fleet crosses the boundary.
//! - **Handoff** ([`HandoffLayer`]) — every `rebalance_every` epochs the
//!   busiest tenant of the most-loaded shard migrates to the
//!   least-loaded shard as a two-phase retire/add with conservation
//!   accounting (see the `handoff` module docs).
//!
//! Journals merge per shard in shard-id order
//! ([`TelemetryArtifacts::merged`]), so the fleet journal is one
//! byte-identical artifact at 1, 2, or 8 threads.
//!
//! # Chaos & recovery
//!
//! [`run_with_faults`] drives the same loop under an [`FaultPlan`] of
//! injected control-plane faults. At the start of every faulted epoch
//! each installed tenant is checkpointed ([`TenantSlot`] →
//! [`SlotCheckpoint`]: controller snapshot + telemetry cursor +
//! processed count) and every event pumped during the epoch is recorded
//! in a per-tenant replay log. A worker panic mid-drain is contained by
//! a supervised drain ([`nfv_parallel::catch_task`]); the poisoned shard
//! is restored from its checkpoints and caught up by replaying its logs.
//! Channel drops/duplicates, tenant crashes, and injected conservation
//! corruption are repaired at the epoch boundary the same way — restore
//! plus full-epoch replay — so a recoverable faulted run produces a
//! **byte-identical** merged journal, fleet report, and epoch records to
//! the undisturbed run. A tenant whose checkpoint is itself corrupt is
//! retired through the quarantine path (its checkpoint-time counters
//! frozen into the totals, [`FleetError`]-free); a wedged drain
//! surfaces as a typed [`FleetError::PumpStalled`]. Recovery telemetry
//! (`CheckpointTaken`/`FaultInjected`/`ShardRestored`/
//! `TenantQuarantined`) goes to a separate chaos journal so the tenant
//! journal keeps its byte-identity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod handoff;
mod shard;

use nfv_controller::{Controller, ControllerConfig, ControllerReport};
use nfv_metrics::Histogram;
use nfv_parallel::{catch_task, default_threads, derive_seed, par_map_indexed, TaskPanic};
use nfv_telemetry::{
    EventKind, Phase, PhaseProfile, Postmortem, Registry, SpanTree, Stopwatch, Telemetry,
    TelemetryArtifacts, TelemetrySnapshot, TickSeries, FLIGHT_RECORDER_WINDOW,
};
use nfv_workload::churn::{ChurnStream, ChurnTraceBuilder, TimedEvent};
use nfv_workload::tenancy::tenant_seed;
use nfv_workload::{Scenario, ScenarioBuilder, ServiceRatePolicy, TenantId, WorkloadError};

pub use channel::EventChannel;
pub use handoff::{HandoffLayer, MigrationRecord};
pub use shard::{Shard, SlotCheckpoint, TenantSlot};

// Re-exported so fleet callers can build fault plans without a separate
// `nfv-chaos` dependency.
pub use nfv_chaos::{FaultKind, FaultPlan, FaultRates};

/// Why a fleet run refused to start or aborted.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FleetError {
    /// The spec fails a sanity bound.
    InvalidSpec(&'static str),
    /// Building a tenant scenario or trace failed.
    Workload(WorkloadError),
    /// A shard task panicked on the pool.
    Pool(TaskPanic),
    /// A tenant's counters failed the conservation check during handoff
    /// (`phase` is `retire`, `transit`, or `install`).
    ConservationViolated {
        /// The tenant whose accounting broke.
        tenant: TenantId,
        /// Which handoff phase detected it.
        phase: &'static str,
    },
    /// A tenant's channel stopped making progress for an entire epoch
    /// round — nothing pumped, nothing drained, events still buffered —
    /// so the epoch loop would spin forever.
    PumpStalled {
        /// The first tenant (shard order, tenant order) holding
        /// undrained events.
        tenant: TenantId,
        /// The epoch that stalled.
        epoch: u64,
    },
    /// A checkpoint restore failed during crash recovery.
    RestoreFailed {
        /// The tenant whose snapshot did not restore.
        tenant: TenantId,
        /// The epoch the recovery ran in.
        epoch: u64,
    },
    /// The handoff layer chose a tenant the source shard no longer owns —
    /// the ownership view desynced from the shard (e.g. a concurrent
    /// quarantine retired it between selection and retire).
    HandoffDesynced {
        /// The tenant the handoff tried to retire.
        tenant: TenantId,
        /// The shard that was expected to own it.
        shard: usize,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidSpec(reason) => write!(f, "invalid fleet spec: {reason}"),
            Self::Workload(err) => write!(f, "tenant workload: {err}"),
            Self::Pool(err) => write!(f, "shard pool: {err}"),
            Self::ConservationViolated { tenant, phase } => {
                write!(f, "conservation violated for {tenant} at {phase}")
            }
            Self::PumpStalled { tenant, epoch } => {
                write!(f, "pump stalled on {tenant} in epoch {epoch}")
            }
            Self::RestoreFailed { tenant, epoch } => {
                write!(f, "checkpoint restore failed for {tenant} in epoch {epoch}")
            }
            Self::HandoffDesynced { tenant, shard } => {
                write!(f, "handoff desynced: shard {shard} does not own {tenant}")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Workload(err) => Some(err),
            Self::Pool(err) => Some(err),
            _ => None,
        }
    }
}

/// Everything that defines one fleet run. A spec is a pure value: two
/// runs of the same spec produce byte-identical outcomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSpec {
    /// Number of tenants.
    pub tenants: usize,
    /// Number of shards the tenants are partitioned over.
    pub shards: usize,
    /// VNFs per tenant scenario.
    pub vnfs: usize,
    /// Base requests per tenant scenario.
    pub requests: usize,
    /// Per-instance utilization target of the scenario generator.
    pub target_utilization: f64,
    /// Virtual-time horizon of every tenant's trace, seconds.
    pub horizon: f64,
    /// Poisson churn arrival rate per tenant, events/second.
    pub arrival_rate: f64,
    /// Mean exponential holding time, seconds.
    pub mean_holding: f64,
    /// Re-optimization tick period per tenant, seconds.
    pub tick_period: f64,
    /// Virtual seconds per fleet epoch.
    pub epoch: f64,
    /// Bound of each tenant's event channel.
    pub channel_capacity: usize,
    /// Initiate a handoff every this many epochs (`0` disables).
    pub rebalance_every: u64,
    /// Fleet seed; every tenant seed derives from it.
    pub seed: u64,
    /// Whether tenants record telemetry journals.
    pub telemetry: bool,
    /// Whether the run records the observability plane: the causal span
    /// tree, the metrics registry, per-tenant latency percentiles, the
    /// SLO-violation counter, and flight-recorder post-mortems. Purely
    /// observational — results are bit-identical with it on or off.
    pub observability: bool,
    /// Per-tenant latency SLO threshold, seconds: tick samples whose
    /// balanced latency exceeds it count into
    /// [`FleetReport::slo_violations`].
    pub slo_latency: f64,
    /// The controller configuration every tenant runs.
    pub controller: ControllerConfig,
    /// Worker threads for the drain phase (`0` = process default).
    pub threads: usize,
}

impl FleetSpec {
    /// A small smoke-test fleet: 4 tenants on 2 shards, rebalancing
    /// aggressively so the handoff path is exercised even in tests.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            tenants: 4,
            shards: 2,
            vnfs: 3,
            requests: 12,
            target_utilization: 0.6,
            horizon: 40.0,
            arrival_rate: 0.5,
            mean_holding: 10.0,
            tick_period: 20.0,
            epoch: 10.0,
            channel_capacity: 16,
            rebalance_every: 1,
            seed: 11,
            telemetry: true,
            observability: true,
            slo_latency: 0.05,
            controller: ControllerConfig::periodic_reopt(),
            threads: 0,
        }
    }

    /// The smoke spec scaled to `tenants` tenants on `shards` shards.
    #[must_use]
    pub fn sized(tenants: usize, shards: usize) -> Self {
        Self {
            tenants,
            shards,
            ..Self::smoke()
        }
    }

    fn validate(&self) -> Result<(), FleetError> {
        if self.tenants == 0 {
            return Err(FleetError::InvalidSpec("tenants must be >= 1"));
        }
        if self.shards == 0 {
            return Err(FleetError::InvalidSpec("shards must be >= 1"));
        }
        if self.vnfs == 0 || self.requests == 0 {
            return Err(FleetError::InvalidSpec(
                "tenant scenarios must be non-empty",
            ));
        }
        if !(self.horizon.is_finite() && self.horizon > 0.0) {
            return Err(FleetError::InvalidSpec(
                "horizon must be positive and finite",
            ));
        }
        if !(self.epoch.is_finite() && self.epoch > 0.0) {
            return Err(FleetError::InvalidSpec("epoch must be positive and finite"));
        }
        if self.channel_capacity == 0 {
            return Err(FleetError::InvalidSpec("channel capacity must be >= 1"));
        }
        if !(self.slo_latency.is_finite() && self.slo_latency > 0.0) {
            return Err(FleetError::InvalidSpec(
                "slo latency must be positive and finite",
            ));
        }
        Ok(())
    }

    /// Number of epochs the run spans.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        (self.horizon / self.epoch).ceil().max(1.0) as u64
    }
}

/// Fleet-wide counter totals at one epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochRecord {
    /// The epoch index (0-based).
    pub epoch: u64,
    /// Virtual time of the epoch's end.
    pub end_time: f64,
    /// Events processed during this epoch (all shards).
    pub events: u64,
    /// Cumulative fleet admissions at the boundary.
    pub admitted: u64,
    /// Cumulative fleet retry admissions at the boundary.
    pub retry_admitted: u64,
    /// Active requests across the fleet at the boundary.
    pub active: u64,
    /// Cumulative departures at the boundary.
    pub departed: u64,
    /// Cumulative sheds at the boundary.
    pub shed: u64,
}

impl EpochRecord {
    /// Whether the fleet-wide conservation law holds at this boundary.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.admitted + self.retry_admitted == self.active + self.departed + self.shed
    }
}

/// Aggregated results of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Tenants in the fleet.
    pub tenants: usize,
    /// Shards the fleet ran on.
    pub shards: usize,
    /// Epochs executed.
    pub epochs: u64,
    /// Total events processed.
    pub events: u64,
    /// Total admissions across all tenants.
    pub admitted: u64,
    /// Total rejections across all tenants.
    pub rejected: u64,
    /// Total departures across all tenants.
    pub departed: u64,
    /// Total sheds across all tenants.
    pub shed: u64,
    /// Total retry admissions across all tenants.
    pub retry_admitted: u64,
    /// Requests still active at the horizon.
    pub active: u64,
    /// Completed cross-shard migrations.
    pub migrations: u64,
    /// Total state carried across shard boundaries (active requests +
    /// pending retries at retire time, summed over migrations).
    pub migration_cost: u64,
    /// Mean virtual-time latency of a handoff (retire → install),
    /// seconds; `0.0` when no migration happened.
    pub mean_rebalance_latency: f64,
    /// Events processed per shard, shard-id order.
    pub shard_events: Vec<u64>,
    /// Tick samples whose balanced latency exceeded
    /// [`FleetSpec::slo_latency`], fleet-wide (0 with observability
    /// disabled).
    pub slo_violations: u64,
    /// Per-tenant latency percentiles, tenant-id order (empty with
    /// observability disabled).
    pub tenant_latency: Vec<TenantLatencyStats>,
}

/// Per-tenant latency percentiles over the run's tick series, seconds.
/// Derived purely from the deterministic virtual-time series, so the
/// values are bit-identical at any thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantLatencyStats {
    /// The tenant.
    pub tenant: TenantId,
    /// Tick samples the percentiles were computed over.
    pub samples: u64,
    /// Median balanced latency, seconds (0 with no samples).
    pub p50: f64,
    /// 95th-percentile balanced latency, seconds.
    pub p95: f64,
    /// 99th-percentile balanced latency, seconds.
    pub p99: f64,
}

/// Counters of the chaos/recovery machinery for one run. All zeros for
/// an undisturbed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Tenant checkpoints taken at faulted epoch starts.
    pub checkpoints: u64,
    /// Faults that actually fired (a scheduled channel fault whose event
    /// index was never pumped, or a fault on a parked tenant, does not).
    pub faults_injected: u64,
    /// Whole-shard restores after contained worker panics.
    pub shard_restores: u64,
    /// Per-tenant epoch-boundary restores (crashes, channel faults,
    /// detected corruption).
    pub tenant_restores: u64,
    /// Tenants retired through the quarantine path.
    pub tenants_quarantined: u64,
    /// Events replayed from logs to catch restored tenants up.
    pub events_replayed: u64,
}

/// A tenant retired from the fleet because its state could not be
/// recovered (its checkpoint was corrupt). Its last valid checkpoint
/// counters stay frozen in the fleet totals, keeping the fleet-wide
/// conservation law intact.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineRecord {
    /// The retired tenant.
    pub tenant: TenantId,
    /// The epoch whose boundary sweep quarantined it.
    pub epoch: u64,
    /// The fault-kind slug that made recovery impossible.
    pub cause: &'static str,
    /// The checkpoint-time counter report frozen into the totals.
    pub report: ControllerReport,
}

/// Everything a fleet run produces.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The aggregated counters.
    pub report: FleetReport,
    /// Per-epoch fleet totals, epoch order.
    pub epoch_records: Vec<EpochRecord>,
    /// Completed migrations, oldest first.
    pub migrations: Vec<MigrationRecord>,
    /// Final per-tenant reports, tenant-id order (quarantined tenants
    /// report their frozen checkpoint counters).
    pub tenant_reports: Vec<(TenantId, ControllerReport)>,
    /// The merged fleet journal (per-shard, shard-id order).
    pub artifacts: TelemetryArtifacts,
    /// Chaos/recovery counters (all zeros without faults).
    pub recovery: RecoveryReport,
    /// Tenants retired through the quarantine path, oldest first.
    pub quarantines: Vec<QuarantineRecord>,
    /// The separate chaos journal (checkpoints, injections, restores,
    /// quarantines) — kept out of [`artifacts`](Self::artifacts) so the
    /// tenant journal stays byte-identical under recoverable faults.
    pub chaos_artifacts: TelemetryArtifacts,
    /// The causal span tree of the run's wall-clock: fleet run → epoch →
    /// {pump, drain(shard), handoff, checkpoint, restore, quarantine},
    /// plus per-shard controller phase attribution. Structure is
    /// deterministic; durations are wall-clock. Empty with observability
    /// disabled.
    pub spans: SpanTree,
    /// The deterministic metrics registry, merged in shard-id order
    /// (quarantined tenants last). Byte-identical dumps at any thread
    /// count. Empty with observability disabled.
    pub registry: Registry,
    /// Flight-recorder post-mortem windows, one per quarantined tenant
    /// in quarantine order (empty with observability disabled).
    pub postmortems: Vec<Postmortem>,
}

/// Fixed shape of the per-tenant latency histograms (`lo`, `hi`, bins).
const LATENCY_HISTOGRAM: (f64, f64, usize) = (0.0, 0.1, 20);
/// Fixed shape of the per-shard retry-backlog histograms.
const BACKLOG_HISTOGRAM: (f64, f64, usize) = (0.0, 32.0, 16);

/// Accumulates one tenant's controller counters into a positional
/// aggregate, so the registry sees one `controller_*_total` write per
/// counter per *shard* instead of per tenant (the per-tenant version
/// cost 26 map lookups + string allocations per tenant, which dominated
/// the plane's overhead at 256 tenants). The counter list has a fixed
/// order, so positions line up across reports.
fn accumulate_counters(totals: &mut Vec<(&'static str, u64)>, report: &ControllerReport) {
    if totals.is_empty() {
        *totals = report.counters();
        return;
    }
    for (slot, (name, value)) in totals.iter_mut().zip(report.counters()) {
        debug_assert_eq!(slot.0, name, "counter order is fixed");
        slot.1 += value;
    }
}

/// Flushes a [`accumulate_counters`] aggregate into a registry slice.
fn flush_counters(registry: &mut Registry, totals: &[(&'static str, u64)]) {
    for (name, value) in totals {
        registry.counter_add(format!("controller_{name}_total"), *value);
    }
}

/// An empty histogram of one of the fixed shapes above. The shapes are
/// valid compile-time constants, so this never returns `None` in
/// practice; the `Option` just keeps the crate's zero panic-site budget.
fn fixed_histogram((lo, hi, bins): (f64, f64, usize)) -> Option<Histogram> {
    Histogram::new(lo, hi, bins)
}

/// The `q`-quantile of an ascending slice, matching
/// [`nfv_metrics::SampleSet::percentile`] (Hyndman–Fan type 7): rank
/// `q·(n−1)`, linear interpolation between neighbors, 0 when empty.
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let rank = q * (sorted.len() - 1) as f64;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let lo = rank.floor() as usize;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let hi = rank.ceil() as usize;
    #[allow(clippy::cast_precision_loss)]
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Folds one tenant's final state into the fleet registry and returns
/// its latency percentiles: balanced-latency samples into the tenant's
/// latency histogram (built locally and inserted once — per-sample
/// `histogram_record` re-validation dominated the plane's overhead at
/// 256 tenants), retry-backlog samples into the caller's per-shard
/// backlog histogram, SLO breaches into `slo_violations`. Controller
/// counters ride separately through [`accumulate_counters`].
///
/// `scratch` is a caller-owned buffer reused across tenants so the
/// percentile pass allocates nothing per tenant (a
/// [`Summary`](nfv_metrics::Summary) here
/// costs two allocations and a sorted copy per call, which adds up at
/// 256 tenants). It holds the tenant's finite latencies, sorted
/// ascending, on return.
fn observe_tenant(
    registry: &mut Registry,
    backlog: &mut Option<Histogram>,
    scratch: &mut Vec<f64>,
    tenant: TenantId,
    series: &TickSeries,
    slo_latency: f64,
    slo_violations: &mut u64,
) -> TenantLatencyStats {
    let mut latency_hist = fixed_histogram(LATENCY_HISTOGRAM);
    scratch.clear();
    for sample in series.samples() {
        if let Some(hist) = latency_hist.as_mut() {
            hist.push(sample.balanced_latency);
        }
        if let Some(hist) = backlog.as_mut() {
            #[allow(clippy::cast_precision_loss)]
            hist.push(sample.retry_backlog as f64);
        }
        if sample.balanced_latency.is_finite() {
            scratch.push(sample.balanced_latency);
        }
        if sample.balanced_latency > slo_latency {
            *slo_violations += 1;
        }
    }
    if let Some(hist) = latency_hist {
        if hist.count() > 0 {
            // Tenant ids are digits, which never need label escaping, so
            // the key skips `Registry::labeled`'s escape pass.
            registry.histogram_insert(
                format!("tenant_latency_seconds{{tenant=\"{}\"}}", tenant.as_u32()),
                hist,
            );
        }
    }
    scratch.sort_unstable_by(f64::total_cmp);
    TenantLatencyStats {
        tenant,
        samples: scratch.len() as u64,
        p50: percentile_sorted(scratch, 0.5),
        p95: percentile_sorted(scratch, 0.95),
        p99: percentile_sorted(scratch, 0.99),
    }
}

/// Per-epoch chaos bookkeeping threaded through the pump: the epoch's
/// channel-fault targets, per-tenant pump counters (the `nth` a drop or
/// duplicate keys on), and the replay logs of the *true* pumped events —
/// what the controller would have seen with a perfect channel, and what
/// recovery replays.
struct PumpChaos<'a> {
    drop_at: &'a [Option<u64>],
    dup_at: &'a [Option<u64>],
    pumped: &'a mut [u64],
    logs: &'a mut [Vec<TimedEvent>],
}

/// Pulls events with `time ≤ boundary` from each installed tenant's
/// stream into its channel: shard order, tenant order, stopping per
/// tenant at a full channel (the head event parks in `pending`). Parked
/// tenants have no slot and are skipped — their streams stall until
/// re-install. Returns the number of events pumped.
///
/// With a chaos context, every pumped event is logged first; a targeted
/// event is then dropped before the channel or pushed twice (the
/// duplicate is lost if the channel has no room — deterministic either
/// way). A dropped event still counts as pumped: the stream advanced.
fn pump(
    streams: &mut [ChurnStream<'_>],
    pending: &mut [Option<TimedEvent>],
    shards: &mut [Shard],
    boundary: f64,
    mut chaos: Option<&mut PumpChaos<'_>>,
) -> u64 {
    let mut pumped = 0;
    for shard in shards.iter_mut() {
        for slot in shard.slots_mut() {
            let t = slot.tenant().as_usize();
            while !slot.channel_full() {
                let event = match pending[t].take() {
                    Some(event) => event,
                    None => match streams[t].next() {
                        Some(event) => event,
                        None => break,
                    },
                };
                if event.time() > boundary {
                    pending[t] = Some(event);
                    break;
                }
                pumped += 1;
                match chaos.as_deref_mut() {
                    None => slot.push(event),
                    Some(chaos) => {
                        let nth = chaos.pumped[t];
                        chaos.pumped[t] += 1;
                        chaos.logs[t].push(event.clone());
                        if chaos.drop_at[t] == Some(nth) {
                            continue;
                        }
                        let duplicate = (chaos.dup_at[t] == Some(nth)).then(|| event.clone());
                        slot.push(event);
                        if let Some(duplicate) = duplicate {
                            if !slot.channel_full() {
                                slot.push(duplicate);
                            }
                        }
                    }
                }
            }
        }
    }
    pumped
}

/// Sums the fleet-wide counters: every installed tenant, the parked
/// one, and the frozen reports of quarantined tenants — shard order then
/// tenant order (all-integer, so order only matters for determinism of
/// iteration, which is fixed anyway).
fn fleet_totals(
    shards: &[Shard],
    handoff: &HandoffLayer,
    quarantines: &[QuarantineRecord],
    epoch: u64,
    end_time: f64,
) -> EpochRecord {
    let mut record = EpochRecord {
        epoch,
        end_time,
        ..EpochRecord::default()
    };
    let mut add = |r: &ControllerReport| {
        record.admitted += r.admitted;
        record.retry_admitted += r.retry_admitted;
        record.active += r.active;
        record.departed += r.departed;
        record.shed += r.shed;
    };
    for shard in shards {
        for slot in shard.slots() {
            add(&slot.report());
        }
    }
    if let Some(parked) = handoff.parked_report() {
        add(parked);
    }
    for quarantine in quarantines {
        add(&quarantine.report);
    }
    record
}

/// Runs a fleet to its horizon.
///
/// # Errors
///
/// [`FleetError`] for an invalid spec, a workload-generation failure, a
/// shard panic on the pool, or a conservation violation during handoff.
pub fn run(spec: &FleetSpec) -> Result<FleetOutcome, FleetError> {
    run_with_faults(spec, &FaultPlan::none())
}

/// Runs a fleet to its horizon under an injected [`FaultPlan`].
///
/// With the empty plan this is exactly [`run`]. With a plan of
/// *recoverable* faults (see [`FaultRates::recoverable`]) the run
/// produces a byte-identical merged journal, fleet report, and epoch
/// records to the undisturbed run — crash recovery via epoch
/// checkpoints and event replay is transparent. Unrecoverable faults
/// degrade gracefully and typed: a corrupt checkpoint quarantines its
/// tenant (frozen counters, no panic), a wedged drain surfaces as
/// [`FleetError::PumpStalled`].
///
/// # Errors
///
/// Everything [`run`] can return, plus [`FleetError::PumpStalled`] for
/// a wedged channel and [`FleetError::RestoreFailed`] if a checkpoint
/// snapshot does not restore.
pub fn run_with_faults(spec: &FleetSpec, plan: &FaultPlan) -> Result<FleetOutcome, FleetError> {
    spec.validate()?;
    let threads = if spec.threads == 0 {
        default_threads()
    } else {
        spec.threads
    };
    let chaos_on = !plan.is_empty();
    // Observability plane. Span durations are the only wall-clock values
    // and never flow back into a decision; the tree's structure, the
    // registry, the percentiles, and the postmortems all derive from the
    // deterministic virtual-time run.
    let obs = spec.observability;
    let run_watch = obs.then(Stopwatch::start);
    let mut spans = SpanTree::new();
    let root_span = obs.then(|| spans.root("fleet run", 0.0));
    let mut postmortems: Vec<Postmortem> = Vec::new();
    let scenarios: Vec<Scenario> = (0..spec.tenants)
        .map(|t| {
            ScenarioBuilder::new()
                .vnfs(spec.vnfs)
                .requests(spec.requests)
                .service_rate_policy(ServiceRatePolicy::ScaledToLoad {
                    target_utilization: spec.target_utilization,
                })
                .seed(tenant_seed(spec.seed, TenantId::new(t as u32)))
                .build()
                .map_err(FleetError::Workload)
        })
        .collect::<Result<_, _>>()?;
    let mut streams: Vec<ChurnStream<'_>> = Vec::with_capacity(spec.tenants);
    for (t, scenario) in scenarios.iter().enumerate() {
        streams.push(
            ChurnTraceBuilder::new()
                .horizon(spec.horizon)
                .arrival_rate(spec.arrival_rate)
                .mean_holding(spec.mean_holding)
                .tick_period(spec.tick_period)
                .seed(derive_seed(spec.seed, t as u64))
                .stream(scenario)
                .map_err(FleetError::Workload)?,
        );
    }
    let mut pending: Vec<Option<TimedEvent>> = (0..spec.tenants).map(|_| None).collect();
    let mut shards: Vec<Shard> = (0..spec.shards).map(Shard::new).collect();
    for (t, scenario) in scenarios.iter().enumerate() {
        let telemetry = if spec.telemetry {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        shards[t % spec.shards].install(TenantSlot::new(
            TenantId::new(t as u32),
            Controller::new(scenario, spec.controller),
            EventChannel::new(spec.channel_capacity),
            telemetry,
        ));
    }
    let epochs = spec.epochs();
    let mut handoff = HandoffLayer::default();
    let mut epoch_records = Vec::with_capacity(epochs as usize);
    let mut processed_before = 0u64;
    // Chaos state. The chaos journal is separate from the tenant
    // journals so recoverable faults leave the merged fleet journal
    // byte-identical.
    let mut chaos_tel = if spec.telemetry && chaos_on {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let mut recovery = RecoveryReport::default();
    let mut quarantines: Vec<QuarantineRecord> = Vec::new();
    let mut quarantined_telemetry: Vec<TelemetrySnapshot> = Vec::new();
    let mut checkpoints: Vec<Option<SlotCheckpoint>> = (0..spec.tenants).map(|_| None).collect();
    let mut logs: Vec<Vec<TimedEvent>> = (0..spec.tenants).map(|_| Vec::new()).collect();
    let mut epoch_pumped: Vec<u64> = vec![0; spec.tenants];
    for epoch in 0..epochs {
        let epoch_watch = obs.then(Stopwatch::start);
        let epoch_span = root_span.map(|root| spans.child(root, format!("epoch {epoch}"), 0.0));
        let handoff_watch = obs.then(Stopwatch::start);
        handoff.install_due(&mut shards, epoch)?;
        if let (Some(watch), Some(span)) = (handoff_watch, epoch_span) {
            spans.accumulate(span, "handoff", watch.elapsed_seconds());
        }
        let faults = plan.for_epoch(epoch as usize);
        let epoch_faulted = !faults.is_empty();
        let epoch_start = epoch as f64 * spec.epoch;
        let epoch_end = spec.horizon.min((epoch + 1) as f64 * spec.epoch);

        // Decode this epoch's faults into per-tenant/per-shard targets.
        // Faults naming tenants that are parked (in transit) or already
        // quarantined never fire: a parked tenant pumps and drains
        // nothing, and a quarantined one has no slot.
        let mut drop_at: Vec<Option<u64>> = vec![None; spec.tenants];
        let mut dup_at: Vec<Option<u64>> = vec![None; spec.tenants];
        let mut crash: Vec<bool> = vec![false; spec.tenants];
        let mut corrupt_live: Vec<bool> = vec![false; spec.tenants];
        let mut corrupt_cp: Vec<bool> = vec![false; spec.tenants];
        let mut wedge: Vec<bool> = vec![false; spec.tenants];
        let mut panic_pending: Vec<usize> = Vec::new();
        for fault in faults {
            match *fault {
                FaultKind::ShardPanic { shard } if shard < shards.len() => {
                    panic_pending.push(shard);
                }
                FaultKind::TenantCrash { tenant } if (tenant as usize) < spec.tenants => {
                    crash[tenant as usize] = true;
                }
                FaultKind::ChannelDrop { tenant, nth } if (tenant as usize) < spec.tenants => {
                    drop_at[tenant as usize] = Some(nth);
                }
                FaultKind::ChannelDup { tenant, nth } if (tenant as usize) < spec.tenants => {
                    dup_at[tenant as usize] = Some(nth);
                }
                FaultKind::CorruptState { tenant } if (tenant as usize) < spec.tenants => {
                    corrupt_live[tenant as usize] = true;
                }
                FaultKind::CorruptCheckpoint { tenant } if (tenant as usize) < spec.tenants => {
                    corrupt_cp[tenant as usize] = true;
                }
                FaultKind::WedgeDrain { tenant } if (tenant as usize) < spec.tenants => {
                    wedge[tenant as usize] = true;
                }
                _ => {}
            }
        }

        // Checkpoint every installed tenant at the faulted epoch's start
        // (after install_due, so a freshly installed tenant is covered)
        // and reset the epoch's replay logs and pump counters.
        if epoch_faulted {
            let checkpoint_watch = obs.then(Stopwatch::start);
            for (t, log) in logs.iter_mut().enumerate() {
                log.clear();
                epoch_pumped[t] = 0;
            }
            for shard in &mut shards {
                let shard_id = shard.id() as u64;
                let tenants = shard.tenants() as u64;
                for slot in shard.slots_mut() {
                    let t = slot.tenant().as_usize();
                    checkpoints[t] = Some(slot.checkpoint());
                    recovery.checkpoints += 1;
                    if wedge[t] {
                        slot.set_wedged(true);
                        recovery.faults_injected += 1;
                    }
                }
                chaos_tel.emit(epoch_start, epoch, || EventKind::CheckpointTaken {
                    shard: shard_id,
                    tenants,
                });
            }
            for (t, wedged) in wedge.iter().enumerate() {
                if *wedged {
                    let shard = shards
                        .iter()
                        .position(|s| s.slots().iter().any(|x| x.tenant().as_usize() == t));
                    if let Some(shard) = shard {
                        chaos_tel.emit(epoch_start, epoch, || EventKind::FaultInjected {
                            cause: "wedge_drain".into(),
                            shard: shard as u64,
                            tenant: t as u64,
                        });
                    }
                }
            }
            if let (Some(watch), Some(span)) = (checkpoint_watch, epoch_span) {
                spans.accumulate(span, "checkpoint", watch.elapsed_seconds());
            }
        }

        // The final epoch flushes everything, horizon-clamped streams
        // included, so no event is left behind a fractional boundary.
        let boundary = if epoch + 1 == epochs {
            f64::MAX
        } else {
            (epoch + 1) as f64 * spec.epoch
        };
        // Round-grained phase timings batch into these locals and flush
        // into the epoch span once the epoch settles: `accumulate` scans
        // the span's children by label (and the drain labels are
        // formatted strings), so per-round calls were a measurable slice
        // of the plane's overhead at fleet scale.
        let mut pump_seconds = 0.0;
        let mut drain_seconds = vec![0.0; shards.len()];
        loop {
            let pump_watch = obs.then(Stopwatch::start);
            let pumped = {
                let mut ctx = PumpChaos {
                    drop_at: &drop_at,
                    dup_at: &dup_at,
                    pumped: &mut epoch_pumped,
                    logs: &mut logs,
                };
                pump(
                    &mut streams,
                    &mut pending,
                    &mut shards,
                    boundary,
                    epoch_faulted.then_some(&mut ctx),
                )
            };
            if let Some(watch) = pump_watch {
                pump_seconds += watch.elapsed_seconds();
            }
            let buffered: usize = shards.iter().map(Shard::buffered).sum();
            if pumped == 0 && buffered == 0 {
                break;
            }
            let drained = if chaos_on {
                // Supervised drain: each worker's panic is contained by
                // `catch_task`, so the shards (borrowed mutably through
                // the pool) survive the unwind mid-drain.
                let inject: Vec<Option<u64>> = shards
                    .iter()
                    .map(|s| {
                        (panic_pending.contains(&s.id()) && s.buffered() > 0)
                            .then(|| (s.buffered() as u64).div_ceil(2))
                    })
                    .collect();
                let results = par_map_indexed(
                    threads,
                    shards.iter_mut().collect::<Vec<&mut Shard>>(),
                    |i, shard: &mut Shard| {
                        catch_task(i, || {
                            if let Some(limit) = inject[i] {
                                shard.drain_upto(limit);
                                panic!("injected shard-worker panic");
                            }
                            let watch = obs.then(Stopwatch::start);
                            let drained = shard.drain_round();
                            (drained, watch.map_or(0.0, |w| w.elapsed_seconds()))
                        })
                    },
                )
                .map_err(FleetError::Pool)?;
                let mut drained = 0;
                for (i, result) in results.into_iter().enumerate() {
                    match result {
                        Ok((n, seconds)) => {
                            drained += n;
                            drain_seconds[i] += seconds;
                        }
                        Err(_panic) => {
                            // The worker died mid-drain: restore every
                            // tenant of the poisoned shard from its
                            // epoch checkpoint, clear its channels, and
                            // replay the epoch's pumped events so far.
                            let restore_watch = obs.then(Stopwatch::start);
                            panic_pending.retain(|&s| s != i);
                            recovery.faults_injected += 1;
                            let shard = &mut shards[i];
                            let first_tenant = shard
                                .slots()
                                .first()
                                .map_or(u64::MAX, |s| u64::from(s.tenant().as_u32()));
                            chaos_tel.emit(epoch_end, epoch, || EventKind::FaultInjected {
                                cause: "shard_panic".into(),
                                shard: i as u64,
                                tenant: first_tenant,
                            });
                            let mut replayed = 0;
                            let mut delta = 0i64;
                            for slot in shard.slots_mut() {
                                let t = slot.tenant().as_usize();
                                let Some(checkpoint) = checkpoints[t].as_ref() else {
                                    continue;
                                };
                                let before = slot.processed();
                                slot.restore(checkpoint).map_err(|_| {
                                    FleetError::RestoreFailed {
                                        tenant: slot.tenant(),
                                        epoch,
                                    }
                                })?;
                                replayed += slot.replay(&logs[t]);
                                delta += slot.processed() as i64 - before as i64;
                            }
                            shard.adjust_processed(delta);
                            recovery.shard_restores += 1;
                            recovery.events_replayed += replayed;
                            chaos_tel.emit(epoch_end, epoch, || EventKind::ShardRestored {
                                shard: i as u64,
                                replayed,
                            });
                            // Replay is forward progress for the stall
                            // guard: the shard's channels are empty now.
                            drained += replayed;
                            if let (Some(watch), Some(span)) = (restore_watch, epoch_span) {
                                spans.accumulate(span, "restore", watch.elapsed_seconds());
                            }
                        }
                    }
                }
                drained
            } else {
                let results = par_map_indexed(threads, shards, |_, mut shard| {
                    let watch = obs.then(Stopwatch::start);
                    let drained = shard.drain_round();
                    let seconds = watch.map_or(0.0, |w| w.elapsed_seconds());
                    (shard, drained, seconds)
                })
                .map_err(FleetError::Pool)?;
                let mut drained = 0;
                shards = results
                    .into_iter()
                    .map(|(shard, n, seconds)| {
                        drained += n;
                        drain_seconds[shard.id()] += seconds;
                        shard
                    })
                    .collect();
                drained
            };
            if pumped == 0 && drained == 0 {
                // Nothing moved this round but events are still
                // buffered: the epoch loop would spin forever. Surface
                // the first stuck tenant instead.
                let tenant = shards
                    .iter()
                    .flat_map(Shard::slots)
                    .find(|slot| slot.buffered() > 0)
                    .map_or(TenantId::new(0), TenantSlot::tenant);
                return Err(FleetError::PumpStalled { tenant, epoch });
            }
        }
        if let Some(span) = epoch_span {
            spans.accumulate(span, "pump", pump_seconds);
            for (i, seconds) in drain_seconds.iter().enumerate() {
                spans.accumulate(span, &format!("drain shard {i}"), *seconds);
            }
        }

        // Epoch-boundary fault application + recovery sweep: inject the
        // boundary faults, then restore every tenant that crashed, saw a
        // channel fault fire, or fails the conservation invariant —
        // quarantining those whose checkpoint is corrupt.
        if epoch_faulted {
            let sweep_watch = obs.then(Stopwatch::start);
            let mut quarantine_seconds = 0.0;
            let drop_fired = |t: usize| drop_at[t].is_some_and(|nth| epoch_pumped[t] > nth);
            let dup_fired = |t: usize| dup_at[t].is_some_and(|nth| epoch_pumped[t] > nth);
            for (si, shard) in shards.iter_mut().enumerate() {
                let mut delta = 0i64;
                let mut replayed = 0u64;
                let mut restored_any = false;
                let mut to_quarantine: Vec<(TenantId, &'static str)> = Vec::new();
                for slot in shard.slots_mut() {
                    let t = slot.tenant().as_usize();
                    slot.set_wedged(false);
                    if corrupt_live[t] || corrupt_cp[t] {
                        slot.corrupt_conservation();
                        recovery.faults_injected += 1;
                        let cause = if corrupt_cp[t] {
                            "corrupt_checkpoint"
                        } else {
                            "corrupt_state"
                        };
                        chaos_tel.emit(epoch_end, epoch, || EventKind::FaultInjected {
                            cause: cause.into(),
                            shard: si as u64,
                            tenant: t as u64,
                        });
                        if corrupt_cp[t] {
                            if let Some(checkpoint) = checkpoints[t].as_mut() {
                                checkpoint.valid = false;
                            }
                        }
                    }
                    if crash[t] {
                        recovery.faults_injected += 1;
                        chaos_tel.emit(epoch_end, epoch, || EventKind::FaultInjected {
                            cause: "tenant_crash".into(),
                            shard: si as u64,
                            tenant: t as u64,
                        });
                    }
                    if drop_fired(t) {
                        recovery.faults_injected += 1;
                        chaos_tel.emit(epoch_end, epoch, || EventKind::FaultInjected {
                            cause: "channel_drop".into(),
                            shard: si as u64,
                            tenant: t as u64,
                        });
                    }
                    if dup_fired(t) {
                        recovery.faults_injected += 1;
                        chaos_tel.emit(epoch_end, epoch, || EventKind::FaultInjected {
                            cause: "channel_dup".into(),
                            shard: si as u64,
                            tenant: t as u64,
                        });
                    }
                    let report = slot.report();
                    let conserved = report.admitted + report.retry_admitted
                        == report.active + report.departed + report.shed;
                    let needs_recovery = crash[t] || drop_fired(t) || dup_fired(t) || !conserved;
                    if !needs_recovery {
                        continue;
                    }
                    let Some(checkpoint) = checkpoints[t].as_ref() else {
                        continue;
                    };
                    if !checkpoint.valid {
                        to_quarantine.push((slot.tenant(), "corrupt_checkpoint"));
                        continue;
                    }
                    let before = slot.processed();
                    slot.restore(checkpoint)
                        .map_err(|_| FleetError::RestoreFailed {
                            tenant: slot.tenant(),
                            epoch,
                        })?;
                    replayed += slot.replay(&logs[t]);
                    delta += slot.processed() as i64 - before as i64;
                    restored_any = true;
                    recovery.tenant_restores += 1;
                }
                shard.adjust_processed(delta);
                if restored_any {
                    recovery.events_replayed += replayed;
                    chaos_tel.emit(epoch_end, epoch, || EventKind::ShardRestored {
                        shard: si as u64,
                        replayed,
                    });
                }
                let quarantine_watch = obs.then(Stopwatch::start);
                for (tenant, cause) in to_quarantine {
                    let slot = shard.retire(tenant);
                    debug_assert!(slot.is_some(), "quarantined tenant was installed");
                    drop(slot);
                    let t = tenant.as_usize();
                    let Some(checkpoint) = checkpoints[t].take() else {
                        continue;
                    };
                    recovery.tenants_quarantined += 1;
                    chaos_tel.emit(epoch_end, epoch, || EventKind::TenantQuarantined {
                        tenant: u64::from(tenant.as_u32()),
                        cause: cause.into(),
                    });
                    // Flight-recorder dump: the checkpoint's journal tail
                    // and counters, frozen at the moment of quarantine.
                    if obs {
                        postmortems.push(Postmortem::new(
                            u64::from(tenant.as_u32()),
                            epoch,
                            cause,
                            checkpoint.telemetry.recent_events(FLIGHT_RECORDER_WINDOW),
                            checkpoint.report.counters(),
                        ));
                    }
                    quarantined_telemetry.push(checkpoint.telemetry);
                    quarantines.push(QuarantineRecord {
                        tenant,
                        epoch,
                        cause,
                        report: checkpoint.report,
                    });
                }
                if let Some(watch) = quarantine_watch {
                    quarantine_seconds += watch.elapsed_seconds();
                }
            }
            if let (Some(watch), Some(span)) = (sweep_watch, epoch_span) {
                let total = watch.elapsed_seconds();
                spans.accumulate(span, "restore", (total - quarantine_seconds).max(0.0));
                spans.accumulate(span, "quarantine", quarantine_seconds);
            }
        }

        let processed_now: u64 = shards.iter().map(Shard::processed).sum();
        let mut record = fleet_totals(&shards, &handoff, &quarantines, epoch, epoch_end);
        record.events = processed_now - processed_before;
        processed_before = processed_now;
        epoch_records.push(record);
        // Initiate a handoff only when its install epoch still exists.
        if spec.rebalance_every > 0 && (epoch + 1) % spec.rebalance_every == 0 && epoch + 2 < epochs
        {
            let initiate_watch = obs.then(Stopwatch::start);
            handoff.initiate(&mut shards, epoch, spec.epoch)?;
            if let (Some(watch), Some(span)) = (initiate_watch, epoch_span) {
                spans.accumulate(span, "handoff", watch.elapsed_seconds());
            }
        }
        // Set LAST so the epoch span covers every phase child and the
        // `(other)` residual sums exactly to the measured epoch time.
        if let (Some(watch), Some(span)) = (epoch_watch, epoch_span) {
            spans.set_seconds(span, watch.elapsed_seconds());
        }
    }
    debug_assert!(handoff.idle(), "every handoff installs before the run ends");
    let migrations = handoff.records().to_vec();
    // Close every tenant at the horizon and merge journals per shard in
    // shard-id order (tenant order within each shard).
    let finish_watch = obs.then(Stopwatch::start);
    let shard_events: Vec<u64> = shards.iter().map(Shard::processed).collect();
    let mut tenant_reports: Vec<(TenantId, ControllerReport)> = Vec::with_capacity(spec.tenants);
    let mut parts: Vec<TelemetryArtifacts> = Vec::with_capacity(spec.tenants);
    let mut registry = Registry::new();
    let mut slo_violations = 0u64;
    let mut tenant_latency: Vec<TenantLatencyStats> = Vec::new();
    let mut latency_scratch: Vec<f64> = Vec::new();
    for shard in shards {
        let shard_label = shard.id().to_string();
        let mut shard_profile = obs.then(PhaseProfile::new);
        let mut shard_counters: Vec<(&'static str, u64)> = Vec::new();
        let mut shard_backlog = if obs {
            fixed_histogram(BACKLOG_HISTOGRAM)
        } else {
            None
        };
        if obs {
            registry.counter_add(
                Registry::labeled("fleet_shard_events_total", "shard", &shard_label),
                shard.processed(),
            );
        }
        for (tenant, report, artifacts) in shard.finish(spec.horizon) {
            if obs {
                accumulate_counters(&mut shard_counters, &report);
                tenant_latency.push(observe_tenant(
                    &mut registry,
                    &mut shard_backlog,
                    &mut latency_scratch,
                    tenant,
                    &artifacts.series,
                    spec.slo_latency,
                    &mut slo_violations,
                ));
            }
            if let Some(profile) = shard_profile.as_mut() {
                profile.merge(&artifacts.profile);
            }
            tenant_reports.push((tenant, report));
            parts.push(artifacts);
        }
        // This fold is serial and walks the shards in shard-id order, so
        // the registry fills in a deterministic order regardless of how
        // many workers drained the epochs — the dump is byte-identical
        // at any thread count. (`Registry::merge` composes slices built
        // elsewhere; the fleet writes directly to skip the merge copy.)
        if obs {
            flush_counters(&mut registry, &shard_counters);
            if let Some(hist) = shard_backlog {
                if hist.count() > 0 {
                    registry.histogram_insert(
                        Registry::labeled("shard_retry_backlog", "shard", &shard_label),
                        hist,
                    );
                }
            }
        }
        if let (Some(root), Some(profile)) = (root_span, shard_profile.as_ref()) {
            let total: f64 = Phase::ALL
                .iter()
                .map(|p| profile.summary(*p).samples().as_slice().iter().sum::<f64>())
                .sum();
            let node = spans.child(
                root,
                format!("controller phases shard {shard_label}"),
                total,
            );
            spans.graft_profile(node, profile);
        }
    }
    // Quarantined tenants contribute their frozen checkpoint state:
    // counters into the totals, checkpoint-time journal after the live
    // shards' parts (quarantine order, which is deterministic), latency
    // stats into the registry under the "quarantined" shard label.
    let mut quarantine_counters: Vec<(&'static str, u64)> = Vec::new();
    let mut quarantine_backlog = if obs {
        fixed_histogram(BACKLOG_HISTOGRAM)
    } else {
        None
    };
    for (quarantine, telemetry) in quarantines.iter().zip(quarantined_telemetry) {
        tenant_reports.push((quarantine.tenant, quarantine.report.clone()));
        let mut session = Telemetry::disabled();
        session.restore(&telemetry);
        let artifacts = session.finish();
        if obs {
            accumulate_counters(&mut quarantine_counters, &quarantine.report);
            tenant_latency.push(observe_tenant(
                &mut registry,
                &mut quarantine_backlog,
                &mut latency_scratch,
                quarantine.tenant,
                &artifacts.series,
                spec.slo_latency,
                &mut slo_violations,
            ));
        }
        parts.push(artifacts);
    }
    if obs {
        flush_counters(&mut registry, &quarantine_counters);
        if let Some(hist) = quarantine_backlog {
            if hist.count() > 0 {
                registry.histogram_insert(
                    Registry::labeled("shard_retry_backlog", "shard", "quarantined"),
                    hist,
                );
            }
        }
    }
    let artifacts = TelemetryArtifacts::merged(parts);
    tenant_reports.sort_by_key(|(tenant, _)| *tenant);
    let mut report = FleetReport {
        tenants: spec.tenants,
        shards: spec.shards,
        epochs,
        events: shard_events.iter().sum(),
        admitted: 0,
        rejected: 0,
        departed: 0,
        shed: 0,
        retry_admitted: 0,
        active: 0,
        migrations: migrations.len() as u64,
        migration_cost: migrations
            .iter()
            .map(|m| m.carried_active + m.carried_retry)
            .sum(),
        mean_rebalance_latency: if migrations.is_empty() {
            0.0
        } else {
            migrations.iter().map(|m| m.latency).sum::<f64>() / migrations.len() as f64
        },
        shard_events,
        slo_violations,
        tenant_latency: {
            tenant_latency.sort_by_key(|stats| stats.tenant);
            tenant_latency
        },
    };
    for (_, r) in &tenant_reports {
        report.admitted += r.admitted;
        report.rejected += r.rejected;
        report.departed += r.departed;
        report.shed += r.shed;
        report.retry_admitted += r.retry_admitted;
        report.active += r.active;
    }
    if obs {
        registry.counter_add("fleet_slo_violations_total", slo_violations);
        registry.counter_add("fleet_migrations_total", report.migrations);
        registry.gauge_set("fleet_active", report.active as f64);
        registry.gauge_set("fleet_tenants", spec.tenants as f64);
        registry.gauge_set("fleet_shards", spec.shards as f64);
        registry.gauge_set(
            "fleet_mean_rebalance_latency_seconds",
            report.mean_rebalance_latency,
        );
    }
    if let (Some(watch), Some(root)) = (finish_watch, root_span) {
        spans.accumulate(root, "finish", watch.elapsed_seconds());
    }
    if let (Some(watch), Some(root)) = (run_watch, root_span) {
        spans.set_seconds(root, watch.elapsed_seconds());
    }
    Ok(FleetOutcome {
        report,
        epoch_records,
        migrations,
        tenant_reports,
        artifacts,
        recovery,
        quarantines,
        chaos_artifacts: chaos_tel.finish(),
        spans,
        registry,
        postmortems,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fleet_conserves_and_migrates() {
        let outcome = run(&FleetSpec::smoke()).unwrap();
        let report = &outcome.report;
        assert!(report.events > 0);
        assert!(report.admitted > 0);
        assert_eq!(
            report.admitted + report.retry_admitted,
            report.active + report.departed + report.shed,
            "fleet-wide conservation"
        );
        for record in &outcome.epoch_records {
            assert!(record.conserved(), "epoch {} conserves", record.epoch);
        }
        assert_eq!(report.epochs as usize, outcome.epoch_records.len());
        assert_eq!(report.events, report.shard_events.iter().sum::<u64>());
    }

    #[test]
    fn same_spec_runs_are_byte_identical() {
        let spec = FleetSpec::smoke();
        let a = run(&spec).unwrap();
        let b = run(&spec).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.epoch_records, b.epoch_records);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.tenant_reports, b.tenant_reports);
        assert_eq!(
            a.artifacts.journal_jsonl(),
            b.artifacts.journal_jsonl(),
            "merged journals byte-identical"
        );
    }

    #[test]
    fn invalid_specs_are_refused() {
        let mut spec = FleetSpec::smoke();
        spec.tenants = 0;
        assert!(matches!(run(&spec), Err(FleetError::InvalidSpec(_))));
        let mut spec = FleetSpec::smoke();
        spec.epoch = 0.0;
        assert!(matches!(run(&spec), Err(FleetError::InvalidSpec(_))));
        let mut spec = FleetSpec::smoke();
        spec.channel_capacity = 0;
        assert!(matches!(run(&spec), Err(FleetError::InvalidSpec(_))));
    }

    #[test]
    fn rebalancing_moves_tenants_without_changing_tenant_outcomes() {
        // The same fleet with handoff disabled: tenants are independent,
        // so per-tenant reports must be identical — migration moves
        // *where* a tenant runs, never *what* it computes.
        let with = run(&FleetSpec::smoke()).unwrap();
        let without = run(&FleetSpec {
            rebalance_every: 0,
            ..FleetSpec::smoke()
        })
        .unwrap();
        assert!(
            with.report.migrations > 0,
            "smoke spec must exercise handoff"
        );
        assert_eq!(without.report.migrations, 0);
        assert_eq!(with.tenant_reports, without.tenant_reports);
    }
}
