//! Offline stand-in for the `serde` crate.
//!
//! The workspace deliberately carries no serialization *format* crate (see
//! `tests/serde_roundtrip.rs` at the workspace root): `Serialize` and
//! `Deserialize` are used purely as a type-level contract — "this artifact
//! is persistable" — enforced through trait bounds. Because the build
//! environment has no access to crates.io, this shim supplies that contract
//! as marker traits plus a derive that emits the marker impls. If a real
//! format backend is ever needed, swap this vendored crate for upstream
//! serde; every `#[derive(Serialize, Deserialize)]` in the workspace is
//! already in place.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types whose values can be serialized.
pub trait Serialize {}

/// Marker for types whose values can be deserialized.
pub trait Deserialize<'de>: Sized {}

pub mod de {
    //! Deserialization-side traits.

    /// A type deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}

    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    (), bool, char, String,
    u8, u16, u32, u64, u128, usize,
    i8, i16, i32, i64, i128, isize,
    f32, f64
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}

impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
