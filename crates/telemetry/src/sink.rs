//! Pluggable journal sinks.

use std::collections::VecDeque;
use std::io::Write;

use crate::event::{TraceEvent, CSV_HEADER};
use crate::json::{get_u64, parse_object, JsonObject};

/// Schema version stamped at the top of every JSONL/CSV journal file.
/// Bump it when the journal shape changes; the parse helpers reject
/// mismatched files with a typed [`JournalError`] instead of silently
/// misreading drifted schemas.
pub const JOURNAL_SCHEMA_VERSION: u32 = 1;

/// Why a journal file was refused at parse time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The file does not start with a schema-version header.
    MissingHeader,
    /// The file's schema version differs from this build's.
    SchemaMismatch {
        /// The version found in the file.
        found: u32,
        /// The version this build writes ([`JOURNAL_SCHEMA_VERSION`]).
        expected: u32,
    },
    /// A data line failed to parse (1-based line number in the file).
    Malformed {
        /// The offending line number.
        line: usize,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingHeader => write!(f, "journal is missing its schema-version header"),
            Self::SchemaMismatch { found, expected } => {
                write!(f, "journal schema version {found} (expected {expected})")
            }
            Self::Malformed { line } => write!(f, "malformed journal line {line}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// Renders the JSONL header line (`{"schema_version":N}`).
fn jsonl_header() -> String {
    let mut obj = JsonObject::new();
    obj.field_u64("schema_version", u64::from(JOURNAL_SCHEMA_VERSION));
    obj.finish()
}

/// The CSV header comment line (`# schema_version=N`).
fn csv_version_line() -> String {
    format!("# schema_version={JOURNAL_SCHEMA_VERSION}")
}

/// Parses a [`JsonlSink`]-written journal back into its events,
/// verifying the schema-version header first.
///
/// # Errors
///
/// [`JournalError`] for a missing header, a version mismatch, or an
/// unparseable event line.
pub fn parse_jsonl_journal(text: &str) -> Result<Vec<TraceEvent>, JournalError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(JournalError::MissingHeader)?;
    let fields = parse_object(header).map_err(|_| JournalError::MissingHeader)?;
    let found = get_u64(&fields, "schema_version").ok_or(JournalError::MissingHeader)?;
    let found = u32::try_from(found).map_err(|_| JournalError::MissingHeader)?;
    if found != JOURNAL_SCHEMA_VERSION {
        return Err(JournalError::SchemaMismatch {
            found,
            expected: JOURNAL_SCHEMA_VERSION,
        });
    }
    lines
        .enumerate()
        .map(|(i, line)| {
            TraceEvent::from_json(line).map_err(|_| JournalError::Malformed { line: i + 2 })
        })
        .collect()
}

/// Validates a [`CsvSink`]-written journal's schema-version line and
/// column header, returning the data rows.
///
/// # Errors
///
/// [`JournalError`] for a missing/mismatched version line or a wrong
/// column header (reported as `Malformed` on line 2).
pub fn csv_journal_rows(text: &str) -> Result<Vec<&str>, JournalError> {
    let mut lines = text.lines();
    let version = lines.next().ok_or(JournalError::MissingHeader)?;
    let found: u32 = version
        .strip_prefix("# schema_version=")
        .and_then(|v| v.parse().ok())
        .ok_or(JournalError::MissingHeader)?;
    if found != JOURNAL_SCHEMA_VERSION {
        return Err(JournalError::SchemaMismatch {
            found,
            expected: JOURNAL_SCHEMA_VERSION,
        });
    }
    match lines.next() {
        None => Ok(Vec::new()),
        Some(header) if header == CSV_HEADER => Ok(lines.collect()),
        Some(_) => Err(JournalError::Malformed { line: 2 }),
    }
}

/// Receives journal records as they are emitted.
///
/// Sinks are observers: they must not influence the controller (no
/// panics on full buffers, no blocking on virtual time). I/O errors are
/// swallowed after the first failure — a broken pipe must not abort a
/// deterministic run.
pub trait EventSink: Send {
    /// Records one event.
    fn record(&mut self, event: &TraceEvent);
    /// Flushes any buffered output (end of run).
    fn flush(&mut self) {}
}

/// A bounded in-memory ring: keeps the most recent `capacity` events and
/// counts the ones that fell off the front.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted to honor the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the ring into the retained events, oldest first.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into()
    }
}

impl EventSink for RingSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event.clone());
    }
}

/// Writes a `{"schema_version":N}` header line, then each event as one
/// JSON line (`TraceEvent::to_json`).
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    writer: W,
    wrote_header: bool,
    failed: bool,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer; the schema-version header is emitted before the
    /// first event.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            wrote_header: false,
            failed: false,
        }
    }

    /// Whether any write failed (output is then truncated, never torn
    /// mid-line).
    #[must_use]
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Unwraps the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.failed {
            return;
        }
        if !self.wrote_header {
            self.wrote_header = true;
            let header = format!("{}\n", jsonl_header());
            self.failed = self.writer.write_all(header.as_bytes()).is_err();
            if self.failed {
                return;
            }
        }
        let mut line = event.to_json();
        line.push('\n');
        self.failed = self.writer.write_all(line.as_bytes()).is_err();
    }

    fn flush(&mut self) {
        if !self.failed {
            self.failed = self.writer.flush().is_err();
        }
    }
}

/// Writes the fixed-column CSV trace shape: a `# schema_version=N`
/// comment line and `CSV_HEADER` once, then one row per event.
#[derive(Debug)]
pub struct CsvSink<W: Write + Send> {
    writer: W,
    wrote_header: bool,
    failed: bool,
}

impl<W: Write + Send> CsvSink<W> {
    /// Wraps a writer; the header is emitted before the first row.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            wrote_header: false,
            failed: false,
        }
    }

    /// Whether any write failed.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Unwraps the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write + Send> EventSink for CsvSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.failed {
            return;
        }
        if !self.wrote_header {
            self.wrote_header = true;
            let header = format!("{}\n{CSV_HEADER}\n", csv_version_line());
            self.failed = self.writer.write_all(header.as_bytes()).is_err();
            if self.failed {
                return;
            }
        }
        let mut row = event.to_csv_row();
        row.push('\n');
        self.failed = self.writer.write_all(row.as_bytes()).is_err();
    }

    fn flush(&mut self) {
        if !self.failed {
            self.failed = self.writer.flush().is_err();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use nfv_model::RequestId;

    fn event(seq: u64) -> TraceEvent {
        TraceEvent {
            seq,
            time: seq as f64,
            tick: 0,
            kind: EventKind::Admit {
                request: RequestId::new(seq as u32),
                hops: 1,
            },
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_and_counts_drops() {
        let mut ring = RingSink::new(3);
        for i in 0..5 {
            ring.record(&event(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let seqs: Vec<u64> = ring.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(ring.into_events().len(), 3);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut ring = RingSink::new(0);
        ring.record(&event(0));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn jsonl_sink_writes_version_header_then_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&event(0));
        sink.record(&event(1));
        sink.flush();
        assert!(!sink.failed());
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "{\"schema_version\":1}");
        assert_eq!(TraceEvent::from_json(lines[2]).unwrap(), event(1));
    }

    #[test]
    fn csv_sink_writes_version_and_header_once() {
        let mut sink = CsvSink::new(Vec::new());
        sink.record(&event(0));
        sink.record(&event(1));
        sink.flush();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "# schema_version=1");
        assert_eq!(lines[1], CSV_HEADER);
        assert!(lines[2].starts_with("Admit,"));
    }

    #[test]
    fn jsonl_journal_round_trips_through_the_parser() {
        let mut sink = JsonlSink::new(Vec::new());
        for i in 0..4 {
            sink.record(&event(i));
        }
        sink.flush();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let events = parse_jsonl_journal(&text).unwrap();
        assert_eq!(events, (0..4).map(event).collect::<Vec<_>>());
    }

    #[test]
    fn parsers_reject_bumped_schema_versions() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&event(0));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let bumped = text.replace(
            "{\"schema_version\":1}",
            &format!("{{\"schema_version\":{}}}", JOURNAL_SCHEMA_VERSION + 1),
        );
        assert_eq!(
            parse_jsonl_journal(&bumped),
            Err(JournalError::SchemaMismatch {
                found: JOURNAL_SCHEMA_VERSION + 1,
                expected: JOURNAL_SCHEMA_VERSION,
            })
        );
        let mut sink = CsvSink::new(Vec::new());
        sink.record(&event(0));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let rows = csv_journal_rows(&text).unwrap();
        assert_eq!(rows.len(), 1);
        let bumped = text.replace("# schema_version=1", "# schema_version=2");
        assert_eq!(
            csv_journal_rows(&bumped),
            Err(JournalError::SchemaMismatch {
                found: 2,
                expected: JOURNAL_SCHEMA_VERSION,
            })
        );
    }

    #[test]
    fn parsers_reject_missing_headers_and_malformed_lines() {
        assert_eq!(parse_jsonl_journal(""), Err(JournalError::MissingHeader));
        assert_eq!(
            parse_jsonl_journal("{\"other\":1}\n"),
            Err(JournalError::MissingHeader)
        );
        assert_eq!(
            parse_jsonl_journal("{\"schema_version\":1}\nnot json\n"),
            Err(JournalError::Malformed { line: 2 })
        );
        assert_eq!(csv_journal_rows(""), Err(JournalError::MissingHeader));
        assert_eq!(
            csv_journal_rows("# schema_version=1\nWrong,Header\n"),
            Err(JournalError::Malformed { line: 2 })
        );
    }

    /// A writer that fails after `ok` bytes, to exercise the error latch.
    struct Flaky {
        ok: usize,
    }
    impl Write for Flaky {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.ok >= buf.len() {
                self.ok -= buf.len();
                Ok(buf.len())
            } else {
                Err(std::io::Error::other("full"))
            }
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn io_errors_latch_instead_of_panicking() {
        let mut sink = JsonlSink::new(Flaky { ok: 80 });
        for i in 0..10 {
            sink.record(&event(i));
        }
        assert!(sink.failed());
    }
}
