//! Online scheduling: requests arrive one at a time.
//!
//! The paper schedules a known request set offline and leaves dynamic
//! arrivals to future work (§IV.A discusses why VMs should not be added or
//! removed on the fly). This module supplies the standard online
//! counterpart so the offline algorithms can be priced against it: the
//! greedy *least-loaded* dispatcher, which irrevocably assigns each
//! arriving request to the instance with the smallest current rate sum —
//! the classic `(2 − 1/m)`-competitive List Scheduling algorithm (Graham).

use nfv_model::{ArrivalRate, ServiceRate};

use crate::scheduler::check_inputs;
use crate::{Schedule, Scheduler, SchedulingError};

/// Incremental least-loaded dispatcher for streaming use: feed arrivals
/// one at a time, read the assignment immediately.
///
/// # Examples
///
/// ```
/// use nfv_model::ArrivalRate;
/// use nfv_scheduling::OnlineDispatcher;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dispatcher = OnlineDispatcher::new(2)?;
/// assert_eq!(dispatcher.dispatch(ArrivalRate::new(10.0)?), 0);
/// assert_eq!(dispatcher.dispatch(ArrivalRate::new(4.0)?), 1);
/// assert_eq!(dispatcher.dispatch(ArrivalRate::new(3.0)?), 1); // 7 < 10
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineDispatcher {
    sums: Vec<f64>,
    assignment: Vec<usize>,
    rates: Vec<ArrivalRate>,
    /// Per-instance service rate `μ`; `None` keeps the classic Graham
    /// dispatcher, which admits everything regardless of load.
    capacity: Option<f64>,
}

impl OnlineDispatcher {
    /// Creates a dispatcher over `instances` idle instances.
    ///
    /// # Errors
    ///
    /// Returns [`SchedulingError::NoInstances`] for zero instances.
    pub fn new(instances: usize) -> Result<Self, SchedulingError> {
        if instances == 0 {
            return Err(SchedulingError::NoInstances);
        }
        Ok(Self {
            sums: vec![0.0; instances],
            assignment: Vec::new(),
            rates: Vec::new(),
            capacity: None,
        })
    }

    /// Creates a capacity-aware dispatcher: every instance serves at rate
    /// `μ`, and [`try_dispatch`](Self::try_dispatch) refuses any arrival
    /// that would drive its target instance to `ρ ≥ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedulingError::NoInstances`] for zero instances.
    pub fn with_capacity(instances: usize, service: ServiceRate) -> Result<Self, SchedulingError> {
        let mut dispatcher = Self::new(instances)?;
        dispatcher.capacity = Some(service.value());
        Ok(dispatcher)
    }

    /// Number of instances.
    #[must_use]
    pub fn instances(&self) -> usize {
        self.sums.len()
    }

    /// Number of requests dispatched so far.
    #[must_use]
    pub fn dispatched(&self) -> usize {
        self.assignment.len()
    }

    /// Irrevocably assigns the arriving request to the least-loaded
    /// instance (lowest index on ties) and returns that instance.
    pub fn dispatch(&mut self, rate: ArrivalRate) -> usize {
        let k = self
            .sums
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("sums are finite"))
            .map(|(k, _)| k)
            .expect("at least one instance");
        self.sums[k] += rate.value();
        self.assignment.push(k);
        self.rates.push(rate);
        k
    }

    /// Like [`dispatch`](Self::dispatch), but honors the capacity set by
    /// [`with_capacity`](Self::with_capacity): if even the least-loaded
    /// instance would reach `ρ ≥ 1` (`Λ + λ ≥ μ`, the strict admission
    /// bound of Eq. (9)), the arrival is refused and the dispatcher is left
    /// unchanged. Without a capacity this is exactly `dispatch`.
    pub fn try_dispatch(&mut self, rate: ArrivalRate) -> Option<usize> {
        if let Some(mu) = self.capacity {
            let least = self.sums.iter().cloned().fold(f64::INFINITY, f64::min);
            if least + rate.value() >= mu {
                return None;
            }
        }
        Some(self.dispatch(rate))
    }

    /// The per-instance rate sums so far.
    #[must_use]
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// Finalizes the dispatch history into a [`Schedule`].
    ///
    /// # Errors
    ///
    /// Returns [`SchedulingError::NoRequests`] if nothing was dispatched.
    pub fn into_schedule(self) -> Result<Schedule, SchedulingError> {
        let instances = self.sums.len();
        Schedule::new(self.rates, self.assignment, instances)
    }
}

/// The online least-loaded scheduler as a [`Scheduler`]: processes the
/// requests in arrival (index) order with no lookahead or sorting. The
/// comparison floor for the offline algorithms — the "price of not
/// knowing the future".
///
/// # Examples
///
/// ```
/// use nfv_model::ArrivalRate;
/// use nfv_scheduling::{OnlineLeastLoaded, Rckk, Scheduler};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rates: Vec<ArrivalRate> =
///     [9.0, 1.0, 8.0, 2.0].iter().map(|&v| ArrivalRate::new(v)).collect::<Result<_, _>>()?;
/// let online = OnlineLeastLoaded::new().schedule(&rates, 2)?;
/// let offline = Rckk::new().schedule(&rates, 2)?;
/// assert!(offline.makespan() <= online.makespan());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineLeastLoaded;

impl OnlineLeastLoaded {
    /// Creates the online least-loaded scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for OnlineLeastLoaded {
    fn name(&self) -> &'static str {
        "online-least-loaded"
    }

    fn schedule(
        &self,
        rates: &[ArrivalRate],
        instances: usize,
    ) -> Result<Schedule, SchedulingError> {
        check_inputs(rates, instances)?;
        let mut dispatcher = OnlineDispatcher::new(instances)?;
        for &rate in rates {
            dispatcher.dispatch(rate);
        }
        dispatcher.into_schedule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rckk;
    use proptest::prelude::*;

    fn rates(values: &[f64]) -> Vec<ArrivalRate> {
        values
            .iter()
            .map(|&v| ArrivalRate::new(v).unwrap())
            .collect()
    }

    #[test]
    fn dispatches_to_least_loaded_with_low_index_ties() {
        let mut d = OnlineDispatcher::new(3).unwrap();
        assert_eq!(d.dispatch(ArrivalRate::new(5.0).unwrap()), 0);
        assert_eq!(d.dispatch(ArrivalRate::new(5.0).unwrap()), 1);
        assert_eq!(d.dispatch(ArrivalRate::new(5.0).unwrap()), 2);
        assert_eq!(d.dispatch(ArrivalRate::new(1.0).unwrap()), 0);
        assert_eq!(d.sums(), &[6.0, 5.0, 5.0]);
        assert_eq!(d.dispatched(), 4);
    }

    #[test]
    fn schedule_round_trip() {
        let schedule = OnlineLeastLoaded::new()
            .schedule(&rates(&[4.0, 3.0, 2.0]), 2)
            .unwrap();
        assert_eq!(schedule.assignment(), &[0, 1, 1]);
    }

    #[test]
    fn rejects_empty_inputs() {
        assert!(OnlineDispatcher::new(0).is_err());
        assert!(OnlineDispatcher::new(1).unwrap().into_schedule().is_err());
        assert!(OnlineLeastLoaded::new().schedule(&[], 2).is_err());
    }

    #[test]
    fn adversarial_order_hurts_online_but_not_offline() {
        // Small items first, then two big ones: online stacks the bigs on
        // top of half the smalls; RCKK (offline) pairs them apart.
        let input = rates(&[10.0, 10.0, 50.0, 50.0]);
        let online = OnlineLeastLoaded::new().schedule(&input, 2).unwrap();
        let offline = Rckk::new().schedule(&input, 2).unwrap();
        assert_eq!(offline.makespan(), 60.0);
        assert_eq!(online.makespan(), 60.0); // 10,10 split; 50 each — equal here
                                             // A truly adversarial order: equal smalls then one giant.
        let input = rates(&[30.0, 30.0, 60.0]);
        let online = OnlineLeastLoaded::new().schedule(&input, 2).unwrap();
        let offline = Rckk::new().schedule(&input, 2).unwrap();
        assert_eq!(offline.makespan(), 60.0);
        assert_eq!(online.makespan(), 90.0);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(OnlineLeastLoaded::new().name(), "online-least-loaded");
    }

    #[test]
    fn capacity_aware_refuses_overload_and_leaves_state_unchanged() {
        let mu = ServiceRate::new(10.0).unwrap();
        let mut d = OnlineDispatcher::with_capacity(2, mu).unwrap();
        assert_eq!(d.try_dispatch(ArrivalRate::new(6.0).unwrap()), Some(0));
        assert_eq!(d.try_dispatch(ArrivalRate::new(6.0).unwrap()), Some(1));
        // Least-loaded instance holds 6; 6 + 5 >= 10, so refuse.
        let before = d.clone();
        assert_eq!(d.try_dispatch(ArrivalRate::new(5.0).unwrap()), None);
        assert_eq!(d, before);
        // A smaller arrival still fits strictly below mu.
        assert_eq!(d.try_dispatch(ArrivalRate::new(3.9).unwrap()), Some(0));
        assert_eq!(d.dispatched(), 3);
    }

    #[test]
    fn capacity_bound_is_strict() {
        let mu = ServiceRate::new(10.0).unwrap();
        let mut d = OnlineDispatcher::with_capacity(1, mu).unwrap();
        // Exactly mu is rejected: admission requires rho < 1 strictly.
        assert_eq!(d.try_dispatch(ArrivalRate::new(10.0).unwrap()), None);
        assert_eq!(d.try_dispatch(ArrivalRate::new(9.999).unwrap()), Some(0));
    }

    #[test]
    fn without_capacity_try_dispatch_is_dispatch() {
        let mut plain = OnlineDispatcher::new(2).unwrap();
        let mut fallible = OnlineDispatcher::new(2).unwrap();
        for &v in &[9.0, 1.0, 8.0, 2.0, 100.0] {
            let rate = ArrivalRate::new(v).unwrap();
            assert_eq!(fallible.try_dispatch(rate), Some(plain.dispatch(rate)));
        }
        assert_eq!(plain.sums(), fallible.sums());
    }

    proptest! {
        /// Graham's bound: online list scheduling is (2 − 1/m)-competitive
        /// against the fractional lower bound max(total/m, max item).
        #[test]
        fn graham_competitive_ratio_holds(
            values in prop::collection::vec(1.0..100.0f64, 1..50),
            m in 1usize..8,
        ) {
            let input = rates(&values);
            let schedule = OnlineLeastLoaded::new().schedule(&input, m).unwrap();
            let total: f64 = values.iter().sum();
            let max_item = values.iter().copied().fold(0.0, f64::max);
            let lower = (total / m as f64).max(max_item);
            let bound = (2.0 - 1.0 / m as f64) * lower;
            prop_assert!(
                schedule.makespan() <= bound + 1e-9,
                "makespan {} above Graham bound {}",
                schedule.makespan(),
                bound
            );
        }

        /// Offline *complete search* never loses to the online greedy —
        /// unlike RCKK, whose one-pass differencing can occasionally lose
        /// to greedy on adversarial inputs (e.g. {56.6, 55.8, 48.0, 46.2,
        /// 42.7} two ways: KK commits the big pair apart early and pays
        /// for it).
        #[test]
        fn offline_exact_never_loses_to_online(
            values in prop::collection::vec(1.0..100.0f64, 2..11),
            m in 2usize..4,
        ) {
            use crate::Cga;
            let input = rates(&values);
            let online = OnlineLeastLoaded::new().schedule(&input, m).unwrap();
            let exact = Cga::new().with_leaf_budget(500_000).schedule(&input, m).unwrap();
            prop_assert!(exact.makespan() <= online.makespan() + 1e-9);
        }
    }
}
