//! Parametric topology generators.
//!
//! The paper's evaluation (§V.A.2) models the datacenter as a connected
//! graph of 4–50 computing nodes with per-node capacities up to 5000 units,
//! based on SNDlib-style libraries. We substitute parametric generators for
//! the standard datacenter fabrics; placement and scheduling consume only
//! node capacities and pairwise hop distances, both of which these fabrics
//! provide at the same scale:
//!
//! * [`line()`] — a path of compute nodes (worst-case diameter),
//! * [`star`] — all hosts behind a single switch (uniform 2-hop distance),
//! * [`leaf_spine`] — two-tier Clos fabric,
//! * [`fat_tree`] — canonical `k`-ary fat-tree with `k³/4` hosts,
//! * [`three_tier`] — classic core/aggregation/edge tree,
//! * [`random_connected`] — random spanning tree plus extra random edges.
//!
//! Every generator shares the same option surface: a capacity plan for the
//! compute nodes and a per-hop [`LinkDelay`].
//!
//! # Examples
//!
//! ```
//! use nfv_topology::builders;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = builders::fat_tree().arity(4).uniform_capacity(500.0).build()?;
//! assert_eq!(topo.compute_nodes().len(), 16); // k^3/4 hosts
//! # Ok(())
//! # }
//! ```

use nfv_model::{Capacity, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{LinkDelay, Topology, TopologyError, Vertex};

/// How compute-node capacities are assigned by a generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum CapacityPlan {
    /// All nodes share one capacity.
    Uniform(f64),
    /// Explicit per-node capacities; the count must match the host count.
    PerNode(Vec<f64>),
    /// Capacities drawn uniformly from `[lo, hi]` with a fixed seed.
    Range { lo: f64, hi: f64, seed: u64 },
}

impl Default for CapacityPlan {
    fn default() -> Self {
        Self::Uniform(1000.0)
    }
}

impl CapacityPlan {
    fn materialize(&self, hosts: usize) -> Result<Vec<Capacity>, TopologyError> {
        let raw: Vec<f64> = match self {
            Self::Uniform(c) => vec![*c; hosts],
            Self::PerNode(caps) => {
                if caps.len() != hosts {
                    return Err(TopologyError::InvalidParameter {
                        reason: "per-node capacity count must match host count",
                    });
                }
                caps.clone()
            }
            Self::Range { lo, hi, seed } => {
                if !(lo.is_finite() && hi.is_finite() && *lo >= 0.0 && hi >= lo) {
                    return Err(TopologyError::InvalidParameter {
                        reason: "capacity range requires 0 <= lo <= hi",
                    });
                }
                let mut rng = StdRng::seed_from_u64(*seed);
                (0..hosts).map(|_| rng.gen_range(*lo..=*hi)).collect()
            }
        };
        raw.into_iter()
            .map(|c| {
                Capacity::new(c).map_err(|_| TopologyError::InvalidParameter {
                    reason: "capacities must be finite and non-negative",
                })
            })
            .collect()
    }
}

/// Shared generator options (capacity plan + link delay).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct FabricOptions {
    capacity: CapacityPlan,
    delay: LinkDelay,
}

macro_rules! fabric_options_methods {
    () => {
        /// Gives every compute node the same capacity `A_v = units`
        /// (default 1000).
        #[must_use]
        pub fn uniform_capacity(mut self, units: f64) -> Self {
            self.options.capacity = CapacityPlan::Uniform(units);
            self
        }

        /// Assigns explicit per-node capacities; the length must equal the
        /// generated host count or [`build`](Self::build) fails.
        #[must_use]
        pub fn capacities(mut self, units: Vec<f64>) -> Self {
            self.options.capacity = CapacityPlan::PerNode(units);
            self
        }

        /// Draws each node's capacity uniformly from `[lo, hi]` using a
        /// deterministic seed, matching the paper's 1–5000 unit sweep.
        #[must_use]
        pub fn capacity_range(mut self, lo: f64, hi: f64, seed: u64) -> Self {
            self.options.capacity = CapacityPlan::Range { lo, hi, seed };
            self
        }

        /// Sets the per-hop link delay `L` (default zero).
        #[must_use]
        pub fn link_delay(mut self, delay: LinkDelay) -> Self {
            self.options.delay = delay;
            self
        }
    };
}

/// Starts building a path topology `node0 — node1 — … — node(n−1)`.
#[must_use]
pub fn line() -> LineBuilder {
    LineBuilder {
        nodes: 4,
        options: FabricOptions::default(),
    }
}

/// Builder for a path (line) topology; see [`line()`].
#[derive(Debug, Clone)]
pub struct LineBuilder {
    nodes: usize,
    options: FabricOptions,
}

impl LineBuilder {
    /// Sets the number of compute nodes (default 4).
    #[must_use]
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    fabric_options_methods!();

    /// Builds the topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidParameter`] for zero nodes or a
    /// mismatched capacity plan.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.nodes == 0 {
            return Err(TopologyError::InvalidParameter {
                reason: "line needs >= 1 node",
            });
        }
        let vertices: Vec<Vertex> = (0..self.nodes)
            .map(|i| Vertex::compute(NodeId::new(i as u32)))
            .collect();
        let edges: Vec<(usize, usize)> = (1..self.nodes).map(|i| (i - 1, i)).collect();
        let caps = self.options.capacity.materialize(self.nodes)?;
        Topology::from_parts(vertices, edges, caps, self.options.delay)
    }
}

/// Starts building a star topology: `hosts` compute nodes, each linked to a
/// single central switch.
#[must_use]
pub fn star() -> StarBuilder {
    StarBuilder {
        hosts: 4,
        options: FabricOptions::default(),
    }
}

/// Builder for a single-switch star topology; see [`star`].
#[derive(Debug, Clone)]
pub struct StarBuilder {
    hosts: usize,
    options: FabricOptions,
}

impl StarBuilder {
    /// Sets the number of compute nodes (default 4).
    #[must_use]
    pub fn hosts(mut self, hosts: usize) -> Self {
        self.hosts = hosts;
        self
    }

    fabric_options_methods!();

    /// Builds the topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidParameter`] for zero hosts or a
    /// mismatched capacity plan.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.hosts == 0 {
            return Err(TopologyError::InvalidParameter {
                reason: "star needs >= 1 host",
            });
        }
        let mut vertices: Vec<Vertex> = (0..self.hosts)
            .map(|i| Vertex::compute(NodeId::new(i as u32)))
            .collect();
        let hub = vertices.len();
        vertices.push(Vertex::switch());
        let edges: Vec<(usize, usize)> = (0..self.hosts).map(|i| (i, hub)).collect();
        let caps = self.options.capacity.materialize(self.hosts)?;
        Topology::from_parts(vertices, edges, caps, self.options.delay)
    }
}

/// Starts building a two-tier leaf–spine Clos fabric.
#[must_use]
pub fn leaf_spine() -> LeafSpineBuilder {
    LeafSpineBuilder {
        leaves: 2,
        spines: 2,
        hosts_per_leaf: 2,
        options: FabricOptions::default(),
    }
}

/// Builder for a leaf–spine fabric; see [`leaf_spine`].
#[derive(Debug, Clone)]
pub struct LeafSpineBuilder {
    leaves: usize,
    spines: usize,
    hosts_per_leaf: usize,
    options: FabricOptions,
}

impl LeafSpineBuilder {
    /// Sets the number of leaf switches (default 2).
    #[must_use]
    pub fn leaves(mut self, leaves: usize) -> Self {
        self.leaves = leaves;
        self
    }

    /// Sets the number of spine switches (default 2).
    #[must_use]
    pub fn spines(mut self, spines: usize) -> Self {
        self.spines = spines;
        self
    }

    /// Sets the number of compute nodes per leaf (default 2).
    #[must_use]
    pub fn hosts_per_leaf(mut self, hosts: usize) -> Self {
        self.hosts_per_leaf = hosts;
        self
    }

    fabric_options_methods!();

    /// Builds the topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidParameter`] if any tier is empty or
    /// the capacity plan mismatches.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.leaves == 0 || self.spines == 0 || self.hosts_per_leaf == 0 {
            return Err(TopologyError::InvalidParameter {
                reason: "leaf-spine needs >= 1 leaf, spine and host per leaf",
            });
        }
        let hosts = self.leaves * self.hosts_per_leaf;
        let mut vertices: Vec<Vertex> = (0..hosts)
            .map(|i| Vertex::compute(NodeId::new(i as u32)))
            .collect();
        let leaf_base = vertices.len();
        vertices.extend((0..self.leaves).map(|_| Vertex::switch()));
        let spine_base = vertices.len();
        vertices.extend((0..self.spines).map(|_| Vertex::switch()));

        let mut edges = Vec::new();
        for leaf in 0..self.leaves {
            for h in 0..self.hosts_per_leaf {
                edges.push((leaf * self.hosts_per_leaf + h, leaf_base + leaf));
            }
            for spine in 0..self.spines {
                edges.push((leaf_base + leaf, spine_base + spine));
            }
        }
        let caps = self.options.capacity.materialize(hosts)?;
        Topology::from_parts(vertices, edges, caps, self.options.delay)
    }
}

/// Starts building a canonical `k`-ary fat-tree (`k` pods, `k²/4` core
/// switches, `k³/4` hosts).
#[must_use]
pub fn fat_tree() -> FatTreeBuilder {
    FatTreeBuilder {
        arity: 4,
        options: FabricOptions::default(),
    }
}

/// Builder for a fat-tree fabric; see [`fat_tree`].
#[derive(Debug, Clone)]
pub struct FatTreeBuilder {
    arity: usize,
    options: FabricOptions,
}

impl FatTreeBuilder {
    /// Sets the fat-tree arity `k` (must be even and ≥ 2; default 4).
    #[must_use]
    pub fn arity(mut self, k: usize) -> Self {
        self.arity = k;
        self
    }

    fabric_options_methods!();

    /// Builds the topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidParameter`] if `k` is odd or < 2, or
    /// the capacity plan mismatches.
    pub fn build(self) -> Result<Topology, TopologyError> {
        let k = self.arity;
        if k < 2 || !k.is_multiple_of(2) {
            return Err(TopologyError::InvalidParameter {
                reason: "fat-tree arity must be even and >= 2",
            });
        }
        let half = k / 2;
        let hosts = k * half * half; // k^3/4
        let mut vertices: Vec<Vertex> = (0..hosts)
            .map(|i| Vertex::compute(NodeId::new(i as u32)))
            .collect();

        // Per pod: k/2 edge switches, k/2 aggregation switches.
        let edge_base = vertices.len();
        vertices.extend((0..k * half).map(|_| Vertex::switch()));
        let agg_base = vertices.len();
        vertices.extend((0..k * half).map(|_| Vertex::switch()));
        let core_base = vertices.len();
        vertices.extend((0..half * half).map(|_| Vertex::switch()));

        let mut edges = Vec::new();
        for pod in 0..k {
            for e in 0..half {
                let edge_sw = edge_base + pod * half + e;
                // Hosts under this edge switch.
                for h in 0..half {
                    edges.push((pod * half * half + e * half + h, edge_sw));
                }
                // Full mesh edge <-> aggregation within the pod.
                for a in 0..half {
                    edges.push((edge_sw, agg_base + pod * half + a));
                }
            }
            // Aggregation a connects to core switches a*half .. a*half+half-1.
            for a in 0..half {
                for c in 0..half {
                    edges.push((agg_base + pod * half + a, core_base + a * half + c));
                }
            }
        }
        let caps = self.options.capacity.materialize(hosts)?;
        Topology::from_parts(vertices, edges, caps, self.options.delay)
    }
}

/// Starts building a classic three-tier tree: a core switch, `agg`
/// aggregation switches, `edge_per_agg` edge switches under each, and
/// `hosts_per_edge` compute nodes under each edge switch.
#[must_use]
pub fn three_tier() -> ThreeTierBuilder {
    ThreeTierBuilder {
        agg: 2,
        edge_per_agg: 2,
        hosts_per_edge: 2,
        options: FabricOptions::default(),
    }
}

/// Builder for a three-tier tree fabric; see [`three_tier`].
#[derive(Debug, Clone)]
pub struct ThreeTierBuilder {
    agg: usize,
    edge_per_agg: usize,
    hosts_per_edge: usize,
    options: FabricOptions,
}

impl ThreeTierBuilder {
    /// Sets the number of aggregation switches (default 2).
    #[must_use]
    pub fn aggregation(mut self, agg: usize) -> Self {
        self.agg = agg;
        self
    }

    /// Sets the number of edge switches per aggregation switch (default 2).
    #[must_use]
    pub fn edges_per_aggregation(mut self, edge: usize) -> Self {
        self.edge_per_agg = edge;
        self
    }

    /// Sets the number of compute nodes per edge switch (default 2).
    #[must_use]
    pub fn hosts_per_edge(mut self, hosts: usize) -> Self {
        self.hosts_per_edge = hosts;
        self
    }

    fabric_options_methods!();

    /// Builds the topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidParameter`] if any tier is empty or
    /// the capacity plan mismatches.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.agg == 0 || self.edge_per_agg == 0 || self.hosts_per_edge == 0 {
            return Err(TopologyError::InvalidParameter {
                reason: "three-tier tree needs >= 1 switch and host per tier",
            });
        }
        let edges_total = self.agg * self.edge_per_agg;
        let hosts = edges_total * self.hosts_per_edge;
        let mut vertices: Vec<Vertex> = (0..hosts)
            .map(|i| Vertex::compute(NodeId::new(i as u32)))
            .collect();
        let edge_base = vertices.len();
        vertices.extend((0..edges_total).map(|_| Vertex::switch()));
        let agg_base = vertices.len();
        vertices.extend((0..self.agg).map(|_| Vertex::switch()));
        let core = vertices.len();
        vertices.push(Vertex::switch());

        let mut links = Vec::new();
        for a in 0..self.agg {
            links.push((agg_base + a, core));
            for e in 0..self.edge_per_agg {
                let edge_sw = edge_base + a * self.edge_per_agg + e;
                links.push((edge_sw, agg_base + a));
                for h in 0..self.hosts_per_edge {
                    links.push((
                        (a * self.edge_per_agg + e) * self.hosts_per_edge + h,
                        edge_sw,
                    ));
                }
            }
        }
        let caps = self.options.capacity.materialize(hosts)?;
        Topology::from_parts(vertices, links, caps, self.options.delay)
    }
}

/// Starts building a random connected graph over compute nodes: a random
/// spanning tree plus independently sampled extra edges.
#[must_use]
pub fn random_connected() -> RandomBuilder {
    RandomBuilder {
        nodes: 8,
        extra_edge_probability: 0.2,
        seed: 0,
        options: FabricOptions::default(),
    }
}

/// Builder for a random connected topology; see [`random_connected`].
#[derive(Debug, Clone)]
pub struct RandomBuilder {
    nodes: usize,
    extra_edge_probability: f64,
    seed: u64,
    options: FabricOptions,
}

impl RandomBuilder {
    /// Sets the number of compute nodes (default 8).
    #[must_use]
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Probability of each non-tree edge being present (default 0.2).
    #[must_use]
    pub fn extra_edge_probability(mut self, p: f64) -> Self {
        self.extra_edge_probability = p;
        self
    }

    /// Seed for the deterministic edge/capacity sampling (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fabric_options_methods!();

    /// Builds the topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidParameter`] for zero nodes, an edge
    /// probability outside `[0, 1]` or a mismatched capacity plan.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.nodes == 0 {
            return Err(TopologyError::InvalidParameter {
                reason: "random graph needs >= 1 node",
            });
        }
        if !(0.0..=1.0).contains(&self.extra_edge_probability) {
            return Err(TopologyError::InvalidParameter {
                reason: "edge probability must lie in [0, 1]",
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let vertices: Vec<Vertex> = (0..self.nodes)
            .map(|i| Vertex::compute(NodeId::new(i as u32)))
            .collect();

        // Random spanning tree: connect each new vertex to a uniformly chosen
        // earlier one, then sprinkle extra edges.
        let mut edges = Vec::new();
        for i in 1..self.nodes {
            edges.push((rng.gen_range(0..i), i));
        }
        for a in 0..self.nodes {
            for b in (a + 1)..self.nodes {
                let is_tree_edge = edges.contains(&(a, b));
                if !is_tree_edge && rng.gen_bool(self.extra_edge_probability) {
                    edges.push((a, b));
                }
            }
        }
        let caps = self.options.capacity.materialize(self.nodes)?;
        Topology::from_parts(vertices, edges, caps, self.options.delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_has_expected_shape() {
        let topo = line().nodes(5).uniform_capacity(10.0).build().unwrap();
        assert_eq!(topo.compute_nodes().len(), 5);
        assert_eq!(topo.edge_count(), 4);
        assert_eq!(topo.diameter_hops(), 4);
    }

    #[test]
    fn line_rejects_zero_nodes() {
        assert!(line().nodes(0).build().is_err());
    }

    #[test]
    fn star_distance_is_uniform_two_hops() {
        let topo = star().hosts(6).build().unwrap();
        assert_eq!(topo.switch_count(), 1);
        for a in 0..6u32 {
            for b in 0..6u32 {
                let hops = topo.hop_count(NodeId::new(a), NodeId::new(b)).unwrap();
                assert_eq!(hops, if a == b { 0 } else { 2 });
            }
        }
    }

    #[test]
    fn leaf_spine_intra_and_inter_leaf_distances() {
        let topo = leaf_spine()
            .leaves(3)
            .spines(2)
            .hosts_per_leaf(2)
            .build()
            .unwrap();
        assert_eq!(topo.compute_nodes().len(), 6);
        assert_eq!(topo.switch_count(), 5);
        // Same leaf: host - leaf - host.
        assert_eq!(topo.hop_count(NodeId::new(0), NodeId::new(1)).unwrap(), 2);
        // Different leaves: host - leaf - spine - leaf - host.
        assert_eq!(topo.hop_count(NodeId::new(0), NodeId::new(2)).unwrap(), 4);
    }

    #[test]
    fn fat_tree_k4_has_canonical_counts() {
        let topo = fat_tree().arity(4).build().unwrap();
        assert_eq!(topo.compute_nodes().len(), 16);
        // 8 edge + 8 aggregation + 4 core switches.
        assert_eq!(topo.switch_count(), 20);
        assert!(topo.is_connected());
        // Same-edge-switch hosts are 2 hops apart; cross-pod pairs 6 hops.
        assert_eq!(topo.hop_count(NodeId::new(0), NodeId::new(1)).unwrap(), 2);
        assert_eq!(topo.diameter_hops(), 6);
    }

    #[test]
    fn fat_tree_rejects_odd_arity() {
        assert!(fat_tree().arity(3).build().is_err());
        assert!(fat_tree().arity(0).build().is_err());
    }

    #[test]
    fn three_tier_distances_by_tier() {
        let topo = three_tier()
            .aggregation(2)
            .edges_per_aggregation(2)
            .hosts_per_edge(2)
            .build()
            .unwrap();
        assert_eq!(topo.compute_nodes().len(), 8);
        assert_eq!(topo.switch_count(), 7); // 4 edge + 2 agg + 1 core
                                            // Same edge switch: 2 hops; same agg: 4; across core: 6.
        assert_eq!(topo.hop_count(NodeId::new(0), NodeId::new(1)).unwrap(), 2);
        assert_eq!(topo.hop_count(NodeId::new(0), NodeId::new(2)).unwrap(), 4);
        assert_eq!(topo.hop_count(NodeId::new(0), NodeId::new(4)).unwrap(), 6);
        assert_eq!(topo.diameter_hops(), 6);
    }

    #[test]
    fn three_tier_rejects_empty_tiers() {
        assert!(three_tier().aggregation(0).build().is_err());
        assert!(three_tier().hosts_per_edge(0).build().is_err());
    }

    #[test]
    fn random_graph_is_connected_and_deterministic() {
        let a = random_connected().nodes(20).seed(42).build().unwrap();
        let b = random_connected().nodes(20).seed(42).build().unwrap();
        assert!(a.is_connected());
        assert_eq!(a, b);
        let c = random_connected().nodes(20).seed(43).build().unwrap();
        // Different seed gives a different graph with overwhelming probability.
        assert_ne!(a, c);
    }

    #[test]
    fn random_graph_rejects_bad_probability() {
        assert!(random_connected()
            .extra_edge_probability(1.5)
            .build()
            .is_err());
    }

    #[test]
    fn capacity_plans_apply() {
        let topo = line()
            .nodes(3)
            .capacities(vec![1.0, 2.0, 3.0])
            .build()
            .unwrap();
        let caps: Vec<f64> = topo
            .compute_nodes()
            .iter()
            .map(|n| n.capacity().value())
            .collect();
        assert_eq!(caps, vec![1.0, 2.0, 3.0]);

        assert!(line().nodes(3).capacities(vec![1.0]).build().is_err());

        let ranged = line()
            .nodes(10)
            .capacity_range(1.0, 5000.0, 7)
            .build()
            .unwrap();
        assert!(ranged
            .compute_nodes()
            .iter()
            .all(|n| (1.0..=5000.0).contains(&n.capacity().value())));
        let ranged2 = line()
            .nodes(10)
            .capacity_range(1.0, 5000.0, 7)
            .build()
            .unwrap();
        assert_eq!(ranged, ranged2);
    }

    #[test]
    fn capacity_range_rejects_inverted_bounds() {
        assert!(line()
            .nodes(2)
            .capacity_range(10.0, 1.0, 0)
            .build()
            .is_err());
        assert!(line()
            .nodes(2)
            .capacity_range(-1.0, 1.0, 0)
            .build()
            .is_err());
    }

    #[test]
    fn link_delay_propagates_to_queries() {
        let topo = star()
            .hosts(2)
            .link_delay(LinkDelay::from_micros(25.0))
            .build()
            .unwrap();
        let l = topo
            .latency_between(NodeId::new(0), NodeId::new(1))
            .unwrap();
        assert!((l.micros() - 50.0).abs() < 1e-9);
    }
}
